//! Equivalence proptest: the devirtualized [`GovernorKind`] dispatcher
//! must be indistinguishable from the `Box<dyn CpufreqGovernor>` path —
//! same decisions, same mutable-state evolution, same fingerprints — for
//! every baseline governor over random load streams, OPP tables, and
//! (possibly narrowed, mid-stream shifting) policy limits.

use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::load::LoadSample;
use eavs_cpu::opp::OppTable;
use eavs_governors::{by_name, DecisionLut, GovernorKind, LutCache, BASELINE_NAMES};
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// A random but valid ascending OPP table of 2..=12 rungs.
fn random_table(steps_mhz: &[u32]) -> OppTable {
    let mut mhz = 300u32;
    let rows: Vec<(u32, u32)> = steps_mhz
        .iter()
        .map(|&step| {
            mhz += 100 + step % 900;
            (mhz, 800 + mhz / 4)
        })
        .collect();
    OppTable::from_mhz_mv(&rows).expect("ascending by construction")
}

fn fingerprint_of(write: impl FnOnce(&mut Fingerprinter)) -> Option<u128> {
    let mut fp = Fingerprinter::new("kind-equivalence");
    write(&mut fp);
    fp.finish().map(|f| f.0)
}

proptest! {
    /// Lockstep run: decisions, fingerprints (before, during, and after
    /// the stream), and the fed-back current index must agree between
    /// enum and dyn dispatch at every step, even as limits shift.
    #[test]
    fn enum_dispatch_matches_dyn_dispatch(
        steps in proptest::collection::vec(0u32..900, 2..12),
        loads in proptest::collection::vec(0.0f64..1.0, 1..80),
        min in 0usize..12,
        span in 0usize..12,
        shift_at in 0usize..80,
    ) {
        let tbl = random_table(&steps);
        let top = tbl.max_index();
        let limits = PolicyLimits {
            min_index: min.min(top),
            max_index: (min.min(top) + span).min(top),
        };
        // Second window exercises the LUT rebuild on a limits change.
        let shifted = PolicyLimits {
            min_index: 0,
            max_index: (span + 1).min(top),
        };
        for name in BASELINE_NAMES {
            let mut k = GovernorKind::by_name(name).unwrap();
            let mut d = by_name(name).unwrap();
            prop_assert_eq!(k.name(), d.name());
            prop_assert_eq!(k.sampling_interval(), d.sampling_interval());
            prop_assert_eq!(
                fingerprint_of(|fp| k.fingerprint(fp)),
                fingerprint_of(|fp| d.fingerprint(fp)),
                "{} fresh fingerprint diverged", name
            );
            prop_assert_eq!(
                k.initial_index(&tbl, limits),
                d.initial_index(&tbl, limits),
                "{} initial index diverged", name
            );

            let mut lut = LutCache::default();
            let mut cur = limits.min_index;
            for (i, &load) in loads.iter().enumerate() {
                let window = if i < shift_at { limits } else { shifted };
                let s = LoadSample {
                    now: SimTime::from_millis(i as u64 * 10),
                    window: SimDuration::from_millis(10),
                    busy_fraction: load,
                    cur_freq: tbl.freq(cur),
                    cur_index: cur,
                };
                let a = k.decide(&s, lut.get(&tbl, window));
                let b = d.on_sample(&s, &tbl, window);
                prop_assert_eq!(a, b, "{} diverged at step {}", name, i);
                prop_assert_eq!(
                    fingerprint_of(|fp| k.fingerprint(fp)),
                    fingerprint_of(|fp| d.fingerprint(fp)),
                    "{} mid-stream fingerprint diverged at step {}", name, i
                );
                cur = window.clamp(a);
            }
        }
    }

    /// The branchless LUT lookup is bit-identical to the linear table
    /// scan for arbitrary tables, windows, and targets (including
    /// exact-boundary and out-of-range targets).
    #[test]
    fn lut_lookup_equals_linear_scan(
        steps in proptest::collection::vec(0u32..900, 2..12),
        min in 0usize..12,
        span in 0usize..12,
        targets in proptest::collection::vec(-1.0e6f64..4.0e6, 1..40),
    ) {
        let tbl = random_table(&steps);
        let top = tbl.max_index();
        let limits = PolicyLimits {
            min_index: min.min(top),
            max_index: (min.min(top) + span).min(top),
        };
        let lut = DecisionLut::build(&tbl, limits);
        for &t in &targets {
            prop_assert_eq!(
                lut.lookup(t),
                eavs_governors::governor::lowest_index_for_khz(&tbl, limits, t)
            );
        }
        // Exact rung frequencies are the boundary cases that matter.
        for i in 0..=top {
            let f = tbl.freq(i).khz() as f64;
            prop_assert_eq!(
                lut.lookup(f),
                eavs_governors::governor::lowest_index_for_khz(&tbl, limits, f)
            );
        }
    }
}
