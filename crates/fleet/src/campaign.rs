//! Campaign expansion and the sharded run loop.
//!
//! Every per-session decision is drawn by SplitMix on the stable
//! coordinate `(campaign_seed, session_id, decision_domain)` — the same
//! convention as `eavs-faults` — so session `i`'s configuration is a pure
//! function of the spec. No draw consumes shared RNG state, so expansion
//! is order-free: shards can run in any order, on any number of workers,
//! and a resumed campaign re-derives exactly the sessions it skipped.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use eavs_core::governor::{EavsConfig, EavsGovernor};
use eavs_core::predictor::Hybrid;
use eavs_core::report::SessionReport;
use eavs_core::session::{GovernorChoice, SessionBuilder, StreamingSession};
use eavs_cpu::soc::SocModel;

use eavs_net::abr::{BufferBasedAbr, RateBasedAbr};
use eavs_net::bandwidth::BandwidthTrace;
use eavs_net::radio::RadioModel;
use eavs_power::DevicePowerModel;
use eavs_sim::time::SimDuration;
use eavs_trace::content::ContentProfile;
use eavs_video::manifest::Manifest;

use crate::aggregate::FleetAggregate;
use crate::checkpoint;
use crate::spec::{AbrChoice, CampaignSpec, NetworkChoice, TitleSpec};

/// Decision domains for the per-session coordinate draws. Stable wire
/// constants: changing one silently re-shuffles every campaign.
mod domain {
    pub const DEVICE: u64 = 1;
    pub const NETWORK: u64 = 2;
    pub const CONTENT: u64 = 3;
    pub const TITLE: u64 = 4;
    pub const ABR: u64 = 5;
    pub const WORKLOAD: u64 = 6;
    pub const TRACE: u64 = 7;
    pub const ARRIVAL: u64 = 8;
}

/// SplitMix64-style mix of a `(seed, domain, a, b)` coordinate — the same
/// keyed-hash convention `eavs-faults` uses for order-free fault
/// decisions.
fn coordinate_seed(seed: u64, dom: u64, a: u64, b: u64) -> u64 {
    let mut x = seed
        .wrapping_add(dom.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb));
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A uniform draw in [0, 1) from a coordinate.
fn coordinate_f64(seed: u64, dom: u64, session: u64) -> f64 {
    (coordinate_seed(seed, dom, session, 0) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Picks from a weighted mix by a uniform draw in [0, 1).
fn pick<T>(mix: &[(T, f64)], r: f64) -> &T {
    let total: f64 = mix.iter().map(|(_, w)| *w).sum();
    let mut remaining = r * total;
    for (item, w) in mix {
        remaining -= w;
        if remaining < 0.0 {
            return item;
        }
    }
    &mix.last().expect("validated mixes are non-empty").0
}

/// Everything drawn for one session of the population.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionDraw {
    /// The session's id (its coordinate in the campaign).
    pub session_id: u64,
    /// Device.
    pub soc: SocModel,
    /// Network condition.
    pub network: NetworkChoice,
    /// Trace seed (from the campaign's trace pool; unused for constant
    /// networks).
    pub trace_seed: u64,
    /// Decode-statistics profile.
    pub content: ContentProfile,
    /// Title streamed.
    pub title: TitleSpec,
    /// ABR policy.
    pub abr: AbrChoice,
    /// Workload seed (from the campaign's seed pool).
    pub workload_seed: u64,
    /// Arrival offset into the campaign window, seconds.
    pub arrival_s: f64,
    /// Whole-device power model (the spec's, campaign-wide — not a
    /// per-session draw, but carried here so a draw stays a complete
    /// description of its session).
    pub power: DevicePowerModel,
}

/// Expands session `session_id` of the campaign — a pure function of
/// `(spec, session_id)`.
pub fn draw_session(spec: &CampaignSpec, session_id: u64) -> SessionDraw {
    let s = spec.seed;
    SessionDraw {
        session_id,
        soc: *pick(&spec.devices, coordinate_f64(s, domain::DEVICE, session_id)),
        network: *pick(
            &spec.networks,
            coordinate_f64(s, domain::NETWORK, session_id),
        ),
        trace_seed: coordinate_seed(s, domain::TRACE, session_id, 0) % spec.trace_pool,
        content: *pick(
            &spec.contents,
            coordinate_f64(s, domain::CONTENT, session_id),
        ),
        title: *pick(&spec.titles, coordinate_f64(s, domain::TITLE, session_id)),
        abr: *pick(&spec.abrs, coordinate_f64(s, domain::ABR, session_id)),
        // Seeds are 1-based: seed 0 is reserved (SimRng treats it specially
        // in some generators) and 1.. keeps pools disjoint from defaults.
        workload_seed: 1 + coordinate_seed(s, domain::WORKLOAD, session_id, 0) % spec.seed_pool,
        arrival_s: coordinate_f64(s, domain::ARRIVAL, session_id) * spec.arrival_span_s as f64,
        power: spec.power,
    }
}

/// Constructs a governor for a campaign matrix entry: any baseline name,
/// `eavs` (hybrid predictor, default config) or `eavs-panic` (panic
/// recovery enabled).
///
/// # Errors
///
/// Returns a message for unknown names.
pub fn governor_choice(name: &str) -> Result<GovernorChoice, String> {
    match name {
        "eavs" => Ok(GovernorChoice::Eavs(EavsGovernor::new(
            Box::new(Hybrid::default()),
            EavsConfig::default(),
        ))),
        "eavs-panic" => Ok(GovernorChoice::Eavs(EavsGovernor::new(
            Box::new(Hybrid::default()),
            EavsConfig::resilient(),
        ))),
        other => {
            GovernorChoice::kind_by_name(other).ok_or_else(|| format!("unknown governor {other:?}"))
        }
    }
}

/// Builds the runnable session for one draw under one governor.
///
/// The builder is fully fingerprintable, so identical draws (small trace
/// and seed pools make them common) deduplicate through the
/// content-addressed session cache when the runner routes through it.
///
/// # Errors
///
/// Returns a message for unknown governor names.
pub fn builder_for(draw: &SessionDraw, governor: &str) -> Result<SessionBuilder, String> {
    let t = draw.title;
    let duration = SimDuration::from_secs(t.duration_s);
    let manifest = match draw.abr {
        AbrChoice::Fixed => Manifest::single(t.bitrate_kbps, t.width, t.height, duration, t.fps),
        // ABR sessions negotiate over the standard ladder instead.
        AbrChoice::Rate | AbrChoice::Buffer => Manifest::standard_ladder(duration, t.fps),
    };
    let mut builder = StreamingSession::builder(governor_choice(governor)?)
        .soc(draw.soc)
        .content(draw.content)
        .manifest(manifest)
        .power(draw.power)
        .seed(draw.workload_seed);
    builder = match draw.network {
        NetworkChoice::Constant(mbps) => builder
            .network(BandwidthTrace::constant(mbps * 1e6))
            .radio(RadioModel::wifi()),
        NetworkChoice::Profile(profile) => {
            // Traces are memoized per (profile, duration, seed), so a small
            // trace pool shares Arcs across the whole population. 3x the
            // clip length covers rebuffer-stretched sessions, as in the
            // figure harness.
            let trace = profile.generate_shared(duration * 3, draw.trace_seed);
            let radio = match profile {
                eavs_trace::net_gen::NetworkProfile::WifiHome => RadioModel::wifi(),
                eavs_trace::net_gen::NetworkProfile::LteDrive => RadioModel::lte(),
                eavs_trace::net_gen::NetworkProfile::HspaTram => RadioModel::umts_3g(),
            };
            builder.network(trace).radio(radio)
        }
    };
    builder = match draw.abr {
        AbrChoice::Fixed => builder,
        AbrChoice::Rate => builder.abr(Box::new(RateBasedAbr::standard())),
        AbrChoice::Buffer => builder.abr(Box::new(BufferBasedAbr::standard())),
    };
    Ok(builder)
}

/// A shard runner: executes labeled session builders (however it likes —
/// serially, on a pool, through a cache) and returns the reports in input
/// order.
pub type ShardRunner<'a> = dyn Fn(Vec<(String, SessionBuilder)>) -> Vec<Arc<SessionReport>> + 'a;

/// Knobs for one [`run_campaign`] invocation.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Checkpoint file: loaded (and validated against the spec) when it
    /// exists, rewritten as shards complete.
    pub checkpoint: Option<PathBuf>,
    /// Shards between checkpoint writes (0 behaves as 1). The final
    /// checkpoint after the last shard is always written.
    pub checkpoint_every: u64,
    /// Stop (with a checkpoint) once this many shards are done — the
    /// deterministic "kill" half of the CI kill/resume test.
    pub halt_after_shards: Option<u64>,
    /// Cooperative cancel flag, observed at shard boundaries only: the
    /// in-flight shard always completes and is checkpointed, so a
    /// cancelled campaign resumes (or re-submits) to byte-identical
    /// final output. The daemon's `DELETE /campaigns/{id}` sets this.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Warm-start prior: every session is seeded with
    /// `prior.session_prior(title, content)` before it runs
    /// (`eavsctl fleet --prior FILE`). `None` — and any title/content
    /// pair the store has never seen — runs cold; an empty projection is
    /// the tag-0 no-op, so a warmed campaign over unknown titles is
    /// byte-identical to an unwarmed one.
    pub prior: Option<Arc<crate::prior::PriorStore>>,
}

impl RunOptions {
    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::SeqCst))
    }
}

/// How a [`run_campaign`] invocation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CampaignStatus {
    /// All shards folded; the aggregate is final.
    Complete,
    /// Halted at `halt_after_shards`; resume from the checkpoint.
    Halted,
    /// Cancelled through [`RunOptions::cancel`] at a shard boundary;
    /// the checkpoint (if any) holds every completed shard.
    Cancelled,
}

/// The result of one [`run_campaign`] invocation.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// The merged aggregate (final when `status` is `Complete`).
    pub aggregate: FleetAggregate,
    /// Whether the campaign finished or halted at the shard limit.
    pub status: CampaignStatus,
    /// Session-runs (sessions × governors) executed by this invocation —
    /// resumed shards are not re-run and not counted.
    pub session_runs: u64,
    /// Largest per-shard resident footprint seen: the shard's reports
    /// plus its partial aggregate. Stays flat as the population grows.
    pub peak_shard_bytes: u64,
    /// Session-runs answered by injecting a recorded decision timeline
    /// (differential replay) rather than recomputing every governor
    /// decision. A subset of `session_runs`.
    pub replayed: u64,
    /// Session-runs executed through the batched struct-of-arrays
    /// kernel. A subset of `session_runs`; zero unless the runner
    /// enables batching (`EAVS_BATCH`).
    pub batched: u64,
    /// Wall-clock seconds spent in the shard loop.
    pub wall_s: f64,
}

/// The folded output of one shard execution: exactly what a worker ships
/// back to a coordinator.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    /// The shard's partial aggregate (`shards_done` stays 0 — the cursor
    /// belongs to whoever folds partials in order).
    pub partial: FleetAggregate,
    /// Session-runs (sessions × governors) this shard executed.
    pub session_runs: u64,
    /// Resident footprint of the shard: its reports plus the partial.
    pub shard_bytes: u64,
}

/// Expands and executes one shard of the campaign, folding its reports
/// into a fresh partial aggregate. A pure function of `(spec, shard)` up
/// to the runner, so shards can execute in any order on any worker and
/// still merge to identical bits — this is the unit of work the daemon's
/// shard-claim protocol hands out.
///
/// # Errors
///
/// Returns a message for an out-of-range shard index, an unknown
/// governor, or a runner that returns the wrong number of reports.
pub fn run_shard(
    spec: &CampaignSpec,
    shard: u64,
    runner: &ShardRunner,
) -> Result<ShardOutcome, String> {
    run_shard_warm(spec, shard, None, runner)
}

/// [`run_shard`] with a warm-start prior: each session's builder is
/// seeded with the store's projection for its (title, content) draw.
/// `None` (or a store that has never seen the pair) runs the shard cold.
pub fn run_shard_warm(
    spec: &CampaignSpec,
    shard: u64,
    prior: Option<&crate::prior::PriorStore>,
    runner: &ShardRunner,
) -> Result<ShardOutcome, String> {
    if shard >= spec.num_shards() {
        return Err(format!(
            "shard {shard} out of range (campaign has {} shards)",
            spec.num_shards()
        ));
    }
    let (start, end) = spec.shard_range(shard);
    let draws: Vec<SessionDraw> = (start..end).map(|id| draw_session(spec, id)).collect();
    let mut jobs = Vec::with_capacity(draws.len() * spec.governors.len());
    for draw in &draws {
        for gov in &spec.governors {
            let mut builder = builder_for(draw, gov)?;
            if let Some(store) = prior {
                builder =
                    builder.prior(store.session_prior(&draw.title.key(), draw.content.name()));
            }
            jobs.push((
                format!("fleet {} s{} {gov}", spec.name, draw.session_id),
                builder,
            ));
        }
    }
    let expected = jobs.len();
    let reports = runner(jobs);
    if reports.len() != expected {
        return Err(format!(
            "shard {shard}: runner returned {} reports for {expected} jobs",
            reports.len()
        ));
    }

    // Fold into a fresh per-shard partial — the same path the
    // associativity proptest exercises, so the campaign provably cannot
    // depend on shard order.
    let mut partial = FleetAggregate::new(spec);
    let mut iter = reports.iter();
    for draw in &draws {
        partial.observe_arrival(draw.arrival_s);
        for gov_index in 0..spec.governors.len() {
            let report = iter.next().expect("length checked above");
            partial.observe(gov_index, report);
            // Decode cost is a property of the stream, not the governor:
            // every lane replays the same frames, so folding one lane
            // into the fleet prior captures the workload without
            // multi-counting sessions.
            if gov_index == 0 {
                partial.observe_prior(
                    &draw.title.key(),
                    draw.content.name(),
                    &report.frame_cycles,
                );
            }
        }
    }
    let shard_bytes =
        reports.iter().map(|r| r.approx_bytes()).sum::<u64>() + partial.approx_bytes();
    Ok(ShardOutcome {
        partial,
        session_runs: expected as u64,
        shard_bytes,
    })
}

/// Runs (or resumes) a campaign: expands each shard's sessions, executes
/// them through `runner`, folds the reports into a per-shard partial and
/// merges that into the running aggregate.
///
/// # Errors
///
/// Returns a message on an invalid spec, an incompatible or corrupt
/// checkpoint, checkpoint I/O failure, or a runner that returns the wrong
/// number of reports.
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &RunOptions,
    runner: &ShardRunner,
) -> Result<CampaignOutcome, String> {
    spec.validate()?;
    let fingerprint = spec.fingerprint();
    let mut aggregate = match &opts.checkpoint {
        Some(path) => match checkpoint::load(path)? {
            Some(saved) => {
                if saved.campaign != fingerprint.0 {
                    return Err(format!(
                        "checkpoint {} belongs to a different campaign (spec changed?)",
                        path.display()
                    ));
                }
                saved
            }
            None => FleetAggregate::new(spec),
        },
        None => FleetAggregate::new(spec),
    };

    let total_shards = spec.num_shards();
    let every = opts.checkpoint_every.max(1);
    let started = Instant::now();
    let mut session_runs = 0u64;
    let mut peak_shard_bytes = 0u64;
    let mut status = CampaignStatus::Complete;
    // The replay/batch counters are process-wide; attribute the delta
    // across the shard loop to this invocation.
    let replayed_before = eavs_core::session::replayed_sessions();
    let batched_before = eavs_core::batch::batch_stats().sessions;

    while aggregate.shards_done < total_shards {
        if opts
            .halt_after_shards
            .is_some_and(|h| aggregate.shards_done >= h)
        {
            status = CampaignStatus::Halted;
            break;
        }
        if opts.cancelled() {
            status = CampaignStatus::Cancelled;
            break;
        }
        let shard = aggregate.shards_done;
        let out = run_shard_warm(spec, shard, opts.prior.as_deref(), runner)?;
        session_runs += out.session_runs;
        peak_shard_bytes = peak_shard_bytes.max(out.shard_bytes);
        aggregate.merge(&out.partial);
        aggregate.shards_done = shard + 1;

        if let Some(path) = &opts.checkpoint {
            let last = aggregate.shards_done == total_shards;
            let stopping = opts
                .halt_after_shards
                .is_some_and(|h| aggregate.shards_done >= h)
                || opts.cancelled();
            if aggregate.shards_done % every == 0 || last || stopping {
                checkpoint::save(path, &aggregate)?;
            }
        }
    }

    Ok(CampaignOutcome {
        aggregate,
        status,
        session_runs,
        peak_shard_bytes,
        replayed: eavs_core::session::replayed_sessions() - replayed_before,
        batched: eavs_core::batch::batch_stats().sessions - batched_before,
        wall_s: started.elapsed().as_secs_f64(),
    })
}

/// A serial shard runner: builds and runs each session in order on the
/// calling thread, with no cache. The reference implementation tests
/// compare parallel/cached runners against.
pub fn serial_runner(jobs: Vec<(String, SessionBuilder)>) -> Vec<Arc<SessionReport>> {
    jobs.into_iter()
        .map(|(_, builder)| Arc::new(builder.run()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_and_stable() {
        let spec = CampaignSpec::smoke();
        let a = draw_session(&spec, 17);
        let b = draw_session(&spec, 17);
        assert_eq!(a, b);
        // Different ids land on different coordinates (overwhelmingly).
        let c = draw_session(&spec, 18);
        assert!(a != c || a.session_id != c.session_id);
        // Pools are respected.
        for id in 0..200 {
            let d = draw_session(&spec, id);
            assert!(d.trace_seed < spec.trace_pool);
            assert!((1..=spec.seed_pool).contains(&d.workload_seed));
            assert!(d.arrival_s >= 0.0 && d.arrival_s < spec.arrival_span_s as f64);
        }
    }

    #[test]
    fn draws_cover_the_mixes() {
        let spec = CampaignSpec::smoke();
        let mut socs = std::collections::BTreeSet::new();
        let mut nets = std::collections::BTreeSet::new();
        for id in 0..300 {
            let d = draw_session(&spec, id);
            socs.insert(d.soc.name());
            nets.insert(d.network.name());
        }
        assert_eq!(socs.len(), spec.devices.len(), "all SoCs drawn");
        assert_eq!(nets.len(), spec.networks.len(), "all networks drawn");
    }

    #[test]
    fn governor_choice_covers_matrix_names() {
        for name in [
            "performance",
            "powersave",
            "ondemand",
            "interactive",
            "schedutil",
            "eavs",
            "eavs-panic",
        ] {
            governor_choice(name).unwrap();
        }
        assert!(governor_choice("warp").is_err());
    }

    #[test]
    fn builders_are_fingerprintable_for_dedup() {
        let spec = CampaignSpec::smoke();
        let draw = draw_session(&spec, 3);
        let a = builder_for(&draw, "eavs").unwrap().fingerprint();
        let b = builder_for(&draw, "eavs").unwrap().fingerprint();
        assert!(a.is_some(), "campaign sessions must be cacheable");
        assert_eq!(a, b, "identical draws must deduplicate");
        let other = builder_for(&draw, "ondemand").unwrap().fingerprint();
        assert_ne!(a, other);
    }

    #[test]
    fn tiny_campaign_runs_to_completion() {
        let mut spec = CampaignSpec::smoke();
        spec.sessions = 5;
        spec.shard_size = 2;
        let out = run_campaign(&spec, &RunOptions::default(), &serial_runner).unwrap();
        assert_eq!(out.status, CampaignStatus::Complete);
        assert_eq!(out.aggregate.sessions_done, 5);
        assert_eq!(out.aggregate.shards_done, 3);
        assert_eq!(out.session_runs, 5 * spec.governors.len() as u64);
        for lane in &out.aggregate.govs {
            assert_eq!(lane.sessions, 5);
            assert!(lane.cpu_j_sum.value() > 0.0);
        }
        assert!(out.peak_shard_bytes > 0);
    }

    #[test]
    fn empty_prior_warm_start_is_byte_identical_to_cold() {
        let mut spec = CampaignSpec::smoke();
        spec.sessions = 4;
        spec.shard_size = 2;
        let cold = run_campaign(&spec, &RunOptions::default(), &serial_runner).unwrap();
        let warmed = run_campaign(
            &spec,
            &RunOptions {
                prior: Some(Arc::new(crate::prior::PriorStore::new())),
                ..RunOptions::default()
            },
            &serial_runner,
        )
        .unwrap();
        // An empty store projects the tag-0 no-op prior for every draw.
        assert_eq!(
            crate::checkpoint::encode(&cold.aggregate),
            crate::checkpoint::encode(&warmed.aggregate)
        );
    }

    #[test]
    fn trained_prior_changes_the_eavs_lane_but_not_the_workload() {
        let mut spec = CampaignSpec::smoke();
        spec.sessions = 4;
        spec.shard_size = 2;
        let cold = run_campaign(&spec, &RunOptions::default(), &serial_runner).unwrap();
        let warmed = run_campaign(
            &spec,
            &RunOptions {
                prior: Some(Arc::new(cold.aggregate.prior.clone())),
                ..RunOptions::default()
            },
            &serial_runner,
        )
        .unwrap();
        // Decode cost is governor- and predictor-independent, so the
        // re-observed prior must round-trip exactly even though the
        // warmed EAVS lane made different frequency decisions.
        assert_eq!(warmed.aggregate.prior, cold.aggregate.prior);
        let eavs = spec.governors.iter().position(|g| g == "eavs").unwrap();
        assert_ne!(
            warmed.aggregate.govs[eavs].cpu_j_sum.raw(),
            cold.aggregate.govs[eavs].cpu_j_sum.raw(),
            "a trained prior must actually change early frequency decisions"
        );
    }

    #[test]
    fn one_session_campaign_prior_equals_the_direct_run_statistics() {
        // The campaign path must add nothing to (and lose nothing from)
        // the per-session decode statistics: a 1-session campaign's
        // emitted prior is exactly that session's `frame_cycles`.
        let mut spec = CampaignSpec::smoke();
        spec.sessions = 1;
        spec.shard_size = 1;
        let out = run_campaign(&spec, &RunOptions::default(), &serial_runner).unwrap();
        let draw = draw_session(&spec, 0);
        let report = builder_for(&draw, &spec.governors[0]).unwrap().run();
        assert!(report.frame_cycles.total_frames() > 0);
        assert_eq!(out.aggregate.prior.len(), 1);
        assert_eq!(
            out.aggregate.prior.get(&draw.title.key(), draw.content.name()),
            Some(&report.frame_cycles)
        );
    }

    #[test]
    fn run_shard_partials_fold_to_the_campaign_aggregate() {
        let mut spec = CampaignSpec::smoke();
        spec.sessions = 6;
        spec.shard_size = 2;
        let whole = run_campaign(&spec, &RunOptions::default(), &serial_runner).unwrap();
        // Merge the standalone shard partials out of order: the fold is
        // order-free, so a coordinator can accept them from any worker.
        let mut folded = FleetAggregate::new(&spec);
        for shard in [2u64, 0, 1] {
            let out = run_shard(&spec, shard, &serial_runner).unwrap();
            assert_eq!(out.partial.shards_done, 0, "cursor belongs to the folder");
            assert_eq!(out.session_runs, 2 * spec.governors.len() as u64);
            folded.merge(&out.partial);
        }
        folded.shards_done = 3;
        assert_eq!(folded, whole.aggregate);
        assert!(run_shard(&spec, 3, &serial_runner).is_err(), "out of range");
    }

    #[test]
    fn cancel_stops_at_a_shard_boundary_with_a_resumable_checkpoint() {
        let mut spec = CampaignSpec::smoke();
        spec.sessions = 6;
        spec.shard_size = 2;
        let reference = run_campaign(&spec, &RunOptions::default(), &serial_runner).unwrap();

        let dir = std::env::temp_dir().join(format!("eavs-cancel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("cancel.ckpt");
        let flag = Arc::new(AtomicBool::new(false));
        // The runner flips the flag mid-shard: the shard must still
        // complete and checkpoint before the loop observes the cancel.
        let cancel_in_shard = flag.clone();
        let cancelling_runner = move |jobs: Vec<(String, SessionBuilder)>| {
            cancel_in_shard.store(true, Ordering::SeqCst);
            serial_runner(jobs)
        };
        let opts = RunOptions {
            checkpoint: Some(ckpt.clone()),
            cancel: Some(flag.clone()),
            ..RunOptions::default()
        };
        let cancelled = run_campaign(&spec, &opts, &cancelling_runner).unwrap();
        assert_eq!(cancelled.status, CampaignStatus::Cancelled);
        assert_eq!(cancelled.aggregate.shards_done, 1);

        // Clearing the flag resumes from the checkpoint to bytes
        // identical to the uncancelled run.
        flag.store(false, Ordering::SeqCst);
        let resumed = run_campaign(&spec, &opts, &serial_runner).unwrap();
        assert_eq!(resumed.status, CampaignStatus::Complete);
        assert_eq!(
            checkpoint::encode(&resumed.aggregate),
            checkpoint::encode(&reference.aggregate)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancel_before_the_first_shard_runs_nothing() {
        let spec = CampaignSpec::smoke();
        let opts = RunOptions {
            cancel: Some(Arc::new(AtomicBool::new(true))),
            ..RunOptions::default()
        };
        let out = run_campaign(&spec, &opts, &serial_runner).unwrap();
        assert_eq!(out.status, CampaignStatus::Cancelled);
        assert_eq!(out.session_runs, 0);
        assert_eq!(out.aggregate.shards_done, 0);
    }

    #[test]
    fn shard_size_does_not_change_the_aggregate() {
        let mut spec = CampaignSpec::smoke();
        spec.sessions = 6;
        spec.shard_size = 6;
        let whole = run_campaign(&spec, &RunOptions::default(), &serial_runner).unwrap();
        let mut sharded_spec = spec.clone();
        sharded_spec.shard_size = 2;
        let sharded = run_campaign(&sharded_spec, &RunOptions::default(), &serial_runner).unwrap();
        // Shard size is part of the campaign fingerprint (it defines the
        // checkpoint grid), so compare the statistics lane by lane.
        assert_eq!(whole.aggregate.govs, sharded.aggregate.govs);
        assert_eq!(whole.aggregate.arrivals, sharded.aggregate.arrivals);
    }
}
