//! Property-based fuzzing of the whole streaming session: random
//! workloads, governors and player configurations must preserve the
//! system invariants.

use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::predictor_by_name;
use eavs::scaling::session::{ClusterSelect, GovernorChoice, StreamingSession};
use eavs::sim::time::{SimDuration, SimTime};
use eavs::tracegen::content::ContentProfile;
use eavs::video::display::LatePolicy;
use eavs::video::manifest::Manifest;
use eavs_governors::by_name;
use proptest::prelude::*;

fn governor_for(pick: u8) -> GovernorChoice {
    match pick % 6 {
        0 => GovernorChoice::Baseline(by_name("performance").unwrap()),
        1 => GovernorChoice::Baseline(by_name("ondemand").unwrap()),
        2 => GovernorChoice::Baseline(by_name("interactive").unwrap()),
        3 => GovernorChoice::Baseline(by_name("schedutil").unwrap()),
        4 => GovernorChoice::Eavs(EavsGovernor::new(
            predictor_by_name("hybrid").unwrap(),
            EavsConfig::default(),
        )),
        _ => GovernorChoice::Eavs(EavsGovernor::new(
            predictor_by_name("ewma").unwrap(),
            EavsConfig {
                margin: 0.05,
                down_hysteresis: 1,
                ..EavsConfig::default()
            },
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariants that must hold for any configuration:
    /// frame conservation, time partition, energy sanity, bounded session.
    #[test]
    fn session_invariants(
        gov_pick in 0u8..6,
        content_pick in 0u8..3,
        rung in 0u8..3,
        fps_pick in 0u8..2,
        drop in any::<bool>(),
        little in any::<bool>(),
        seed in 1u64..500,
    ) {
        let (kbps, w, h) = [(1_500u32, 854u32, 480u32), (3_000, 1280, 720), (6_000, 1920, 1080)]
            [rung as usize];
        let fps = [30u32, 60][fps_pick as usize];
        let content = ContentProfile::ALL[content_pick as usize];
        let report = StreamingSession::builder(governor_for(gov_pick))
            .manifest(Manifest::single(kbps, w, h, SimDuration::from_secs(6), fps))
            .content(content)
            .late_policy(if drop { LatePolicy::Drop } else { LatePolicy::Stall })
            .cluster(if little { ClusterSelect::Little } else { ClusterSelect::Big })
            .seed(seed)
            .horizon(SimTime::from_secs(120))
            .run();

        // Frame conservation.
        prop_assert!(
            report.qoe.frames_displayed + report.qoe.frames_dropped <= report.qoe.total_frames
        );
        // Time partition.
        let total: SimDuration = report.time_in_state.iter().map(|&(_, d)| d).sum();
        prop_assert_eq!(total, report.session_length);
        // Energy sanity.
        prop_assert!(report.cpu_joules().is_finite() && report.cpu_joules() > 0.0);
        prop_assert!(report.cpu_energy.busy_j >= 0.0 && report.cpu_energy.idle_j >= 0.0);
        prop_assert!(report.radio.energy_j > 0.0);
        // Power within physical bounds of the platform (≤ peak × cores
        // plus generous slack for radio/static accounting).
        prop_assert!(report.mean_cpu_power() < 16.0, "power {}", report.mean_cpu_power());
        // Bounded session.
        prop_assert!(report.session_length <= SimDuration::from_secs(120));
        // Determinism spot check on a second run.
        prop_assert!(report.events_processed > 0);
    }
}
