//! Regenerates experiment `f19_energy_breakdown` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f19_energy_breakdown")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
