//! The discrete-event simulation engine.
//!
//! A simulation couples a user-defined *world* (all mutable model state)
//! with an [`EventQueue`]. The world implements [`World`] and receives each
//! popped event together with a [`Scheduler`] through which it can schedule
//! or cancel further events and request that the run stop.
//!
//! ```
//! use eavs_sim::engine::{Simulation, Scheduler, World};
//! use eavs_sim::time::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick }
//!
//! struct Counter { ticks: u32 }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, sched: &mut Scheduler<Ev>, _ev: Ev) {
//!         self.ticks += 1;
//!         if self.ticks < 5 {
//!             sched.schedule_in(SimDuration::from_millis(10), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { ticks: 0 });
//! sim.scheduler().schedule_at(SimTime::ZERO, Ev::Tick);
//! sim.run();
//! assert_eq!(sim.world().ticks, 5);
//! assert_eq!(sim.now(), SimTime::from_millis(40));
//! ```

use std::fmt;

use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// Model state driven by the simulation loop.
pub trait World {
    /// The event type the world exchanges with the scheduler.
    type Event;

    /// Handles one event at the scheduler's current time.
    fn handle(&mut self, sched: &mut Scheduler<Self::Event>, event: Self::Event);
}

/// A pre-dispatch observer: invoked with each popped event immediately
/// before the world's handler runs, at the event's own timestamp.
///
/// Taps observe; they get no scheduler access and cannot influence the
/// run. Attaching or removing a tap must never change simulation
/// outcomes — this is the engine-level hook the observability layer
/// (`eavs-obs`) hangs session timelines on.
pub type DispatchTap<E> = Box<dyn FnMut(SimTime, &E) + Send>;

/// The clock plus pending-event queue, handed to event handlers.
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
    stop_requested: bool,
    processed: u64,
    tap: Option<DispatchTap<E>>,
}

impl<E: fmt::Debug> fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("queue", &self.queue)
            .field("stop_requested", &self.stop_requested)
            .field("processed", &self.processed)
            .field("tap", &self.tap.as_ref().map(|_| "FnMut(..)"))
            .finish()
    }
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            stop_requested: false,
            processed: 0,
            tap: None,
        }
    }

    /// Installs a dispatch tap, replacing any existing one.
    pub fn set_tap(&mut self, tap: DispatchTap<E>) {
        self.tap = Some(tap);
    }

    /// Removes the dispatch tap, returning it if one was installed.
    pub fn clear_tap(&mut self) -> Option<DispatchTap<E>> {
        self.tap.take()
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        self.queue.push(at, event)
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.push(self.now + delay, event)
    }

    /// Cancels a pending event. Returns `false` if it already fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Requests that the run loop return after the current handler.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }

    /// Number of events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Time of the next pending event.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Whether a handler has requested the run loop stop. Cleared at the
    /// start of every [`Simulation::run_until`] call; incremental drivers
    /// built on [`Simulation::step_until`] observe it through the
    /// [`StepOutcome`] instead.
    pub fn stop_requested(&self) -> bool {
        self.stop_requested
    }
}

/// Outcome of a [`Simulation::run_until`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The event queue drained before the horizon.
    QueueEmpty,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// A handler called [`Scheduler::stop`].
    Stopped,
}

/// Outcome of a single [`Simulation::step_until`] call.
///
/// `Progressed` means exactly one event was handled and the run may
/// continue; the three terminal variants mirror [`RunOutcome`] so
/// `run_until` is precisely a loop over `step_until`. External drivers
/// (the batched shard runner) interleave many simulations by calling
/// `step_until` round-robin and retiring a lane on its first terminal
/// outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// One event was handled; more work may remain.
    Progressed,
    /// The event queue drained before the horizon.
    QueueEmpty,
    /// The next event lies past the horizon; the clock was advanced to it.
    HorizonReached,
    /// The handler of the event just dispatched called [`Scheduler::stop`].
    Stopped,
}

impl StepOutcome {
    /// Folds a terminal step outcome into the equivalent run outcome.
    ///
    /// # Panics
    ///
    /// Panics on [`StepOutcome::Progressed`], which is not terminal.
    pub fn into_run_outcome(self) -> RunOutcome {
        match self {
            StepOutcome::Progressed => panic!("Progressed is not a terminal outcome"),
            StepOutcome::QueueEmpty => RunOutcome::QueueEmpty,
            StepOutcome::HorizonReached => RunOutcome::HorizonReached,
            StepOutcome::Stopped => RunOutcome::Stopped,
        }
    }
}

/// A discrete-event simulation: a [`World`] plus its [`Scheduler`].
#[derive(Debug)]
pub struct Simulation<W: World> {
    world: W,
    sched: Scheduler<W::Event>,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation at time zero with an empty queue.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// The scheduler, for seeding initial events or inspecting the queue.
    pub fn scheduler(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    /// Handles a single event if one is pending. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.queue.pop() {
            Some((time, event)) => {
                debug_assert!(time >= self.sched.now, "event queue went backwards");
                self.sched.now = time;
                self.sched.processed += 1;
                if let Some(tap) = self.sched.tap.as_mut() {
                    tap(time, &event);
                }
                self.world.handle(&mut self.sched, event);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue is empty or a handler calls stop.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Runs until `horizon` (inclusive of events *at* the horizon), the
    /// queue drains, or a handler calls stop. The clock is advanced to
    /// `horizon` when it is reached with no earlier events, so that
    /// time-integrated accounting can use `now()` afterwards.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.sched.stop_requested = false;
        loop {
            match self.step_until(horizon) {
                StepOutcome::Progressed => {}
                terminal => return terminal.into_run_outcome(),
            }
        }
    }

    /// Advances the simulation by at most one event, honouring `horizon`
    /// exactly as [`Simulation::run_until`] does: an event *at* the
    /// horizon is dispatched, the first event *past* it advances the
    /// clock to the horizon and terminates. Unlike `run_until`, a prior
    /// stop request is not cleared — callers that resume after
    /// [`StepOutcome::Stopped`] reset it via [`Scheduler::stop`]'s
    /// counterpart semantics in `run_until`, or simply treat the lane as
    /// retired (the session kernel does the latter).
    pub fn step_until(&mut self, horizon: SimTime) -> StepOutcome {
        match self.sched.queue.peek_time() {
            None => StepOutcome::QueueEmpty,
            Some(t) if t > horizon => {
                self.sched.now = horizon.max(self.sched.now);
                StepOutcome::HorizonReached
            }
            Some(_) => {
                self.step();
                if self.sched.stop_requested {
                    StepOutcome::Stopped
                } else {
                    StepOutcome::Progressed
                }
            }
        }
    }

    /// Runs for `span` of simulated time past the current clock.
    pub fn run_for(&mut self, span: SimDuration) -> RunOutcome {
        let horizon = self.sched.now + span;
        self.run_until(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Ev {
        Tick,
        Boom,
    }

    struct Recorder {
        log: Vec<(SimTime, Ev)>,
        cancel_target: Option<EventId>,
        stop_after: Option<usize>,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder {
                log: Vec::new(),
                cancel_target: None,
                stop_after: None,
            }
        }
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
            self.log.push((sched.now(), ev));
            if let Some(id) = self.cancel_target.take() {
                sched.cancel(id);
            }
            if let Some(n) = self.stop_after {
                if self.log.len() >= n {
                    sched.stop();
                }
            }
        }
    }

    #[test]
    fn runs_events_in_order_and_advances_clock() {
        let mut sim = Simulation::new(Recorder::new());
        sim.scheduler()
            .schedule_at(SimTime::from_millis(20), Ev::Boom);
        sim.scheduler()
            .schedule_at(SimTime::from_millis(10), Ev::Tick);
        assert_eq!(sim.run(), RunOutcome::QueueEmpty);
        assert_eq!(
            sim.world().log,
            vec![
                (SimTime::from_millis(10), Ev::Tick),
                (SimTime::from_millis(20), Ev::Boom)
            ]
        );
        assert_eq!(sim.now(), SimTime::from_millis(20));
    }

    #[test]
    fn run_until_respects_horizon_and_advances_clock_to_it() {
        let mut sim = Simulation::new(Recorder::new());
        sim.scheduler().schedule_at(SimTime::from_secs(1), Ev::Tick);
        sim.scheduler().schedule_at(SimTime::from_secs(5), Ev::Boom);
        let out = sim.run_until(SimTime::from_secs(2));
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(sim.world().log.len(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        // The remaining event still fires on a later run.
        assert_eq!(sim.run(), RunOutcome::QueueEmpty);
        assert_eq!(sim.world().log.len(), 2);
    }

    #[test]
    fn events_at_horizon_inclusive() {
        let mut sim = Simulation::new(Recorder::new());
        sim.scheduler().schedule_at(SimTime::from_secs(2), Ev::Tick);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.world().log.len(), 1);
    }

    #[test]
    fn stop_requested_mid_run() {
        let mut sim = Simulation::new(Recorder::new());
        sim.world_mut().stop_after = Some(2);
        for i in 1..=5 {
            sim.scheduler().schedule_at(SimTime::from_secs(i), Ev::Tick);
        }
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(sim.world().log.len(), 2);
        assert_eq!(sim.scheduler().pending(), 3);
    }

    #[test]
    fn handler_can_cancel_future_event() {
        let mut sim = Simulation::new(Recorder::new());
        sim.scheduler().schedule_at(SimTime::from_secs(1), Ev::Tick);
        let doomed = sim.scheduler().schedule_at(SimTime::from_secs(2), Ev::Boom);
        sim.world_mut().cancel_target = Some(doomed);
        sim.run();
        assert_eq!(sim.world().log, vec![(SimTime::from_secs(1), Ev::Tick)]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, sched: &mut Scheduler<()>, _: ()) {
                sched.schedule_at(SimTime::ZERO, ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.scheduler().schedule_at(SimTime::from_secs(1), ());
        sim.run();
    }

    #[test]
    fn run_for_is_relative() {
        let mut sim = Simulation::new(Recorder::new());
        sim.scheduler().schedule_at(SimTime::from_secs(1), Ev::Tick);
        sim.scheduler().schedule_at(SimTime::from_secs(3), Ev::Tick);
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.now(), SimTime::from_secs(2));
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.world().log.len(), 2);
    }

    #[test]
    fn tap_sees_every_dispatch_before_the_handler() {
        use std::sync::{Arc, Mutex};
        let mut sim = Simulation::new(Recorder::new());
        let seen: Arc<Mutex<Vec<(SimTime, Ev)>>> = Arc::new(Mutex::new(Vec::new()));
        let tap_log = Arc::clone(&seen);
        sim.scheduler().set_tap(Box::new(move |at, ev: &Ev| {
            tap_log.lock().unwrap().push((at, *ev));
        }));
        sim.scheduler().schedule_at(SimTime::from_secs(2), Ev::Boom);
        sim.scheduler().schedule_at(SimTime::from_secs(1), Ev::Tick);
        sim.run();
        let tapped = seen.lock().unwrap().clone();
        // The tap saw the same ordered stream the world handled.
        assert_eq!(tapped, sim.world().log);
        assert_eq!(tapped.len(), 2);
        // Removing the tap returns it and stops observation.
        assert!(sim.scheduler().clear_tap().is_some());
        sim.scheduler().schedule_at(SimTime::from_secs(3), Ev::Tick);
        sim.run();
        assert_eq!(seen.lock().unwrap().len(), 2);
        assert_eq!(sim.world().log.len(), 3);
    }

    #[test]
    fn step_until_matches_run_until_event_for_event() {
        let mut stepped = Simulation::new(Recorder::new());
        let mut ran = Simulation::new(Recorder::new());
        for sim in [&mut stepped, &mut ran] {
            sim.scheduler().schedule_at(SimTime::from_secs(1), Ev::Tick);
            sim.scheduler().schedule_at(SimTime::from_secs(2), Ev::Boom);
            sim.scheduler().schedule_at(SimTime::from_secs(5), Ev::Tick);
        }
        let horizon = SimTime::from_secs(3);
        let run = ran.run_until(horizon);
        let mut last = StepOutcome::Progressed;
        while last == StepOutcome::Progressed {
            last = stepped.step_until(horizon);
        }
        assert_eq!(last.into_run_outcome(), run);
        assert_eq!(stepped.world().log, ran.world().log);
        assert_eq!(stepped.now(), ran.now());
        assert_eq!(
            stepped.scheduler().events_processed(),
            ran.scheduler().events_processed()
        );
    }

    #[test]
    fn step_until_reports_stop_and_queue_empty() {
        let mut sim = Simulation::new(Recorder::new());
        sim.world_mut().stop_after = Some(1);
        sim.scheduler().schedule_at(SimTime::from_secs(1), Ev::Tick);
        sim.scheduler().schedule_at(SimTime::from_secs(2), Ev::Tick);
        assert_eq!(sim.step_until(SimTime::MAX), StepOutcome::Stopped);
        assert!(sim.scheduler().stop_requested());
        // A drained queue reports QueueEmpty without advancing the clock.
        let mut empty = Simulation::new(Recorder::new());
        assert_eq!(
            empty.step_until(SimTime::from_secs(9)),
            StepOutcome::QueueEmpty
        );
        assert_eq!(empty.now(), SimTime::ZERO);
    }

    #[test]
    fn events_processed_counter() {
        let mut sim = Simulation::new(Recorder::new());
        for i in 0..10 {
            sim.scheduler()
                .schedule_at(SimTime::from_millis(i), Ev::Tick);
        }
        sim.run();
        assert_eq!(sim.scheduler().events_processed(), 10);
    }
}
