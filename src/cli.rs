//! Command-line interface for `eavsctl`.
//!
//! Argument parsing is separated from execution so it is unit-testable;
//! the `eavsctl` binary is a thin wrapper around [`parse`] + [`execute`].

use eavs_core::governor::{EavsConfig, EavsGovernor};
use eavs_core::predictor::predictor_by_name;
use eavs_core::report::SessionReport;
use eavs_core::session::{ClusterSelect, GovernorChoice, StreamingSession};
use eavs_cpu::soc::SocModel;
use eavs_faults::{FaultPlan, RandomFaults};
use eavs_governors::by_name;
use eavs_net::abr::{AbrAlgorithm, BufferBasedAbr, FixedAbr, RateBasedAbr};
use eavs_net::bandwidth::BandwidthTrace;
use eavs_net::download::RetryPolicy;
use eavs_net::radio::RadioModel;
use eavs_power::DevicePowerModel;
use eavs_sim::time::SimDuration;
use eavs_trace::content::ContentProfile;
use eavs_trace::net_gen::NetworkProfile;
use eavs_video::manifest::Manifest;

/// A parsed `eavsctl` invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Run one session and print the report.
    Run(RunArgs),
    /// Run the same workload under several governors and print a table.
    Compare(RunArgs, Vec<String>),
    /// Run (or resume) a population campaign and print the fleet table.
    Fleet(FleetArgs),
    /// Run one traced session and dump its event timeline.
    Trace(TraceArgs),
    /// Submit a campaign to a resident `eavsd` over HTTP.
    Submit(SubmitArgs),
    /// Show daemon campaign progress (all campaigns, or one by id).
    Status(StatusArgs),
    /// Cancel a running daemon campaign at the next shard boundary.
    Cancel(RemoteArgs),
    /// Talk to the daemon itself: health, metrics, shutdown.
    Daemon(DaemonArgs),
    /// Print the available names (governors, predictors, SoCs, …).
    List,
    /// Print usage.
    Help,
}

/// Parameters of a `submit` invocation: the spec-shaping subset of the
/// fleet flags plus daemon-client options.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SubmitArgs {
    /// Spec shape: campaign preset + overrides (checkpointing stays on
    /// the daemon side, so only the spec-shaping fleet flags apply).
    pub fleet: FleetArgs,
    /// Daemon address override (`host:port`); defaults to
    /// `EAVS_DAEMON_ADDR`, then `127.0.0.1:7026`.
    pub addr: Option<String>,
    /// Poll until the campaign completes and print the fleet table.
    pub wait: bool,
}

/// Parameters of a `status` invocation.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct StatusArgs {
    /// Campaign id; `None` lists every resident campaign.
    pub id: Option<String>,
    /// Daemon address override.
    pub addr: Option<String>,
}

/// A daemon-client invocation addressing one campaign id.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RemoteArgs {
    /// Campaign id (32 hex digits, as returned by `submit`).
    pub id: String,
    /// Daemon address override.
    pub addr: Option<String>,
}

/// Parameters of a `daemon` invocation.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct DaemonArgs {
    /// `status` (default), `metrics` or `shutdown`.
    pub action: String,
    /// Daemon address override.
    pub addr: Option<String>,
}

/// Parameters of a `trace` invocation: one session plus dump options.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceArgs {
    /// The session to trace (all `run` flags apply).
    pub run: RunArgs,
    /// Write the dump here instead of stdout.
    pub out: Option<String>,
    /// Emit Chrome trace-event JSON (Perfetto-loadable) instead of JSONL.
    pub chrome: bool,
    /// Ring-buffer capacity; older events are dropped beyond this.
    pub events: usize,
}

impl Default for TraceArgs {
    fn default() -> Self {
        TraceArgs {
            run: RunArgs::default(),
            out: None,
            chrome: false,
            events: 65_536,
        }
    }
}

/// Parameters of a `fleet` campaign invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetArgs {
    /// Preset name: `smoke` or `global`.
    pub campaign: String,
    /// Population size override.
    pub sessions: Option<u64>,
    /// Campaign seed override (rekeys every per-session draw).
    pub seed: Option<u64>,
    /// Shard size override.
    pub shard_size: Option<u64>,
    /// Governor-lane override (comma-separated on the command line).
    pub governors: Option<Vec<String>>,
    /// Checkpoint path for kill/resume.
    pub checkpoint: Option<String>,
    /// Shards between checkpoint writes.
    pub checkpoint_every: u64,
    /// Deterministic kill: stop after this many shards.
    pub halt_after_shards: Option<u64>,
    /// Also write the population table as CSV here.
    pub out: Option<String>,
    /// Also write Prometheus text-exposition metrics here.
    pub metrics_out: Option<String>,
    /// Batched-kernel lane width (`--batch N`; equivalent to setting
    /// `EAVS_BATCH=N` in the environment).
    pub batch: Option<usize>,
    /// Whole-device power model override: `none`, `phone` or
    /// `phone:<brightness>` (defaults to the preset's, which is `none`).
    pub power: Option<String>,
    /// Write the campaign's trained workload prior (`eavs-prior/v1`) here.
    pub emit_prior: Option<String>,
    /// Warm-start every session from a previously trained prior file.
    pub prior: Option<String>,
}

impl Default for FleetArgs {
    fn default() -> Self {
        FleetArgs {
            campaign: "smoke".to_owned(),
            sessions: None,
            seed: None,
            shard_size: None,
            governors: None,
            checkpoint: None,
            checkpoint_every: 1,
            halt_after_shards: None,
            out: None,
            metrics_out: None,
            batch: None,
            power: None,
            emit_prior: None,
            prior: None,
        }
    }
}

/// Workload and scheme parameters shared by `run` and `compare`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunArgs {
    /// Governor name (`eavs` or a baseline).
    pub governor: String,
    /// Predictor for EAVS.
    pub predictor: String,
    /// Content profile name.
    pub content: String,
    /// SoC preset name.
    pub soc: String,
    /// `big` or `little`.
    pub cluster: String,
    /// Bitrate in kbps.
    pub bitrate_kbps: u32,
    /// Luma width.
    pub width: u32,
    /// Luma height.
    pub height: u32,
    /// Frames per second.
    pub fps: u32,
    /// Stream length in seconds.
    pub duration_s: u64,
    /// Network: `constant:<mbps>` or a preset name.
    pub network: String,
    /// Radio model: `wifi`, `lte` or `3g`.
    pub radio: String,
    /// ABR: `fixed`, `rate` or `buffer` (uses the standard ladder).
    pub abr: Option<String>,
    /// Workload seed.
    pub seed: u64,
    /// EAVS margin override (fraction).
    pub margin: Option<f64>,
    /// Drive EAVS through the simulated sysfs.
    pub sysfs: bool,
    /// Late-frame policy: `stall` (default) or `drop`.
    pub late_policy: String,
    /// Fault plan: `none`, `storm`, `light:<seed>` or `heavy:<seed>`.
    pub faults: String,
    /// Whole-device power model: `none`, `phone` or `phone:<brightness>`.
    pub power: String,
    /// Retry policy: `default`, `balanced`, or `<timeout_ms>,<retries>,<base_ms>`.
    pub retry: Option<String>,
    /// Enable EAVS panic recovery (re-race to max on breach/rebuffer).
    pub panic_recovery: bool,
    /// Collect a per-phase time breakdown and print it with the report.
    pub profile: bool,
    /// Seed the predictor from a trained prior file (`eavs-prior/v1`).
    pub prior: Option<String>,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            governor: "eavs".to_owned(),
            predictor: "hybrid".to_owned(),
            content: "film".to_owned(),
            soc: "flagship2016".to_owned(),
            cluster: "big".to_owned(),
            bitrate_kbps: 6_000,
            width: 1920,
            height: 1080,
            fps: 30,
            duration_s: 60,
            network: "constant:20".to_owned(),
            radio: "wifi".to_owned(),
            abr: None,
            seed: 42,
            margin: None,
            sysfs: false,
            late_policy: "stall".to_owned(),
            faults: "none".to_owned(),
            power: "none".to_owned(),
            retry: None,
            panic_recovery: false,
            profile: false,
            prior: None,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
eavsctl — energy-aware video frequency scaling simulator

USAGE:
  eavsctl run [OPTIONS]              run one streaming session
  eavsctl compare g1,g2,.. [OPTIONS] same workload under several governors
  eavsctl fleet [FLEET OPTIONS]      run a population campaign (F26-style)
  eavsctl trace [OPTIONS] [TRACE OPTIONS]
                                     run one traced session, dump the timeline
  eavsctl submit [SUBMIT OPTIONS]    submit a campaign to a resident eavsd
  eavsctl status [ID] [--addr A]     daemon campaign progress (all, or one id)
  eavsctl cancel ID [--addr A]       cancel a daemon campaign (checkpoint kept)
  eavsctl daemon [status|metrics|shutdown] [--addr A]
                                     talk to the daemon itself
  eavsctl list                       print available names
  eavsctl help                       this text

OPTIONS (with defaults):
  --governor eavs         eavs | performance | powersave | userspace |
                          ondemand | conservative | interactive | schedutil
  --predictor hybrid      last | ewma | window-max | size-regression |
                          hybrid | oracle
  --content film          animation | film | sport
  --soc flagship2016      biglittle2013 | flagship2016 | midrange
  --cluster big           big | little | auto (eavs only)
  --bitrate 6000          kbps
  --width 1920 --height 1080 --fps 30
  --duration 60           seconds
  --network constant:20   constant:<mbps> | wifi_home | lte_drive | hspa_tram
  --radio wifi            wifi | lte | 3g
  --abr <none>            fixed | rate | buffer (switches to the 5-rung ladder)
  --seed 42
  --margin <default>      EAVS safety margin, e.g. 0.15
  --sysfs                 drive EAVS through the simulated cpufreq sysfs
  --late-policy stall     stall | drop (what happens to late frames)
  --faults none           none | storm | light:<seed> | heavy:<seed>
                          (deterministic fault injection; see DESIGN.md §11)
  --power none            none | phone | phone:<brightness 0..1> — whole-device
                          energy co-model (RRC radio + display + decoder);
                          accounting is post-hoc and never perturbs the session
                          (EAVS_POWER_TAIL_MS overrides the radio tail timer)
  --retry <none>          balanced | <timeout_ms>,<retries>,<base_ms>
                          (download watchdog + exponential backoff)
  --prior PATH            seed the predictor from a fleet-trained prior
                          file (eavs-prior/v1, see fleet --emit-prior);
                          keys off bitrate/resolution/fps + content, and
                          an unknown key degrades to the cold baseline
  --panic                 enable EAVS panic recovery (re-race to max OPP
                          on prediction breach or rebuffer; eavs only)
  --profile               print a per-phase (download/decode/display/governor)
                          simulated-time and wall-time breakdown

TRACE OPTIONS (all run OPTIONS also apply):
  --out PATH              write the dump to PATH instead of stdout
  --chrome                Chrome trace-event JSON (load in Perfetto /
                          chrome://tracing) instead of JSONL
  --events 65536          ring-buffer capacity; oldest events drop beyond it

FLEET OPTIONS (defaults come from the chosen preset):
  --campaign smoke        smoke | global — preset device/network/content mix
  --sessions N            population size override
  --seed N                campaign seed (rekeys every per-session draw)
  --shard-size N          sessions folded per shard (memory stays O(shard))
  --governors a,b,..      governor lanes, e.g. ondemand,eavs
  --checkpoint PATH       load/save a resumable checkpoint at PATH
  --checkpoint-every 1    shards between checkpoint writes
  --halt-after-shards N   stop (with checkpoint) after N shards — the
                          deterministic 'kill' half of kill/resume
  --out PATH              also write the population table as CSV
  --metrics-out PATH      also write Prometheus text-exposition metrics
                          (shard progress, cache hit rate, per-governor
                          energy/QoE histograms, fault counters)
  --batch N               run shards through the batched SoA session
                          kernel, N lanes per worker (same as EAVS_BATCH=N;
                          results stay byte-identical)
  --power none            attach a whole-device power model to every
                          session of the population (same spec as run)
  --emit-prior PATH       after the campaign, write the aggregated
                          workload prior (eavs-prior/v1) — byte-identical
                          for any EAVS_JOBS / shard schedule
  --prior PATH            warm-start every session of the population from
                          a previously emitted prior file

SUBMIT OPTIONS (spec-shaping fleet flags plus daemon-client options):
  --campaign smoke        smoke | global (same presets as fleet)
  --sessions/--seed/--shard-size/--governors/--power
                          spec overrides, exactly as in fleet — the same
                          flags produce the same campaign id and the same
                          result bytes, daemon or not
  --addr HOST:PORT        daemon address (default: $EAVS_DAEMON_ADDR,
                          then 127.0.0.1:7026)
  --wait                  poll until complete and print the fleet table
  --out PATH              with --wait: also write the table as CSV
                          (byte-identical to `eavsctl fleet --out`)

EXAMPLES:
  eavsctl run --governor eavs --network lte_drive --abr buffer
  eavsctl run --faults heavy:7 --retry balanced --panic
      fault injection with watchdog retries and EAVS panic recovery
  eavsctl run --power phone:0.8 --radio lte --network lte_drive
      whole-device energy breakdown (radio RRC + display + decoder)
  eavsctl compare ondemand,schedutil,eavs --duration 30
  eavsctl trace --seed 7 --duration 10 --out /tmp/session.jsonl
  eavsctl trace --chrome --out /tmp/session.trace.json
      open the Chrome dump in https://ui.perfetto.dev
  eavsctl fleet --campaign smoke --out /tmp/f26_smoke.csv
  eavsctl fleet --campaign smoke --metrics-out /tmp/f26.prom
  eavsctl fleet --campaign global --checkpoint /tmp/global.ckpt
      kill it any time; rerun the same command to resume where it stopped
  eavsctl fleet --campaign smoke --emit-prior /tmp/fleet.prior
  eavsctl run --prior /tmp/fleet.prior --content sport
      train a workload prior on the fleet, then seed a cold session's
      predictor from the population posterior
  eavsd --state-dir /tmp/eavsd --addr 127.0.0.1:7026 &
  eavsctl submit --campaign smoke --wait --out /tmp/f26.csv
      same table and CSV bytes as `eavsctl fleet`, served over HTTP
  eavsctl submit --campaign global && eavsctl status
      fire-and-forget; poll later (or: curl 127.0.0.1:7026/campaigns)
  eavsd --worker 127.0.0.1:7026 &
      scale out: extra shard workers, any count — results stay
      byte-identical (claims are leased, partials folded in shard order)
  eavsctl daemon metrics | grep eavs_fleet_shards_done
      fleet Prometheus page (text/plain; version=0.0.4) for all campaigns
";

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a human-readable message on unknown commands, unknown flags or
/// malformed values.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = match it.next() {
        None => return Ok(Command::Help),
        Some(c) => c.as_str(),
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "run" => {
            let rest: Vec<String> = it.cloned().collect();
            Ok(Command::Run(parse_run_args(&rest)?))
        }
        "fleet" => {
            let rest: Vec<String> = it.cloned().collect();
            Ok(Command::Fleet(parse_fleet_args(&rest)?))
        }
        "trace" => {
            let rest: Vec<String> = it.cloned().collect();
            Ok(Command::Trace(parse_trace_args(&rest)?))
        }
        "submit" => {
            let rest: Vec<String> = it.cloned().collect();
            Ok(Command::Submit(parse_submit_args(&rest)?))
        }
        "status" => {
            let rest: Vec<String> = it.cloned().collect();
            Ok(Command::Status(parse_status_args(&rest)?))
        }
        "cancel" => {
            let rest: Vec<String> = it.cloned().collect();
            Ok(Command::Cancel(parse_remote_args(&rest, "cancel")?))
        }
        "daemon" => {
            let rest: Vec<String> = it.cloned().collect();
            Ok(Command::Daemon(parse_daemon_args(&rest)?))
        }
        "compare" => {
            let governors: Vec<String> = it
                .next()
                .ok_or("compare needs a comma-separated governor list")?
                .split(',')
                .map(str::to_owned)
                .collect();
            if governors.is_empty() {
                return Err("compare needs at least one governor".to_owned());
            }
            let rest: Vec<String> = it.cloned().collect();
            Ok(Command::Compare(parse_run_args(&rest)?, governors))
        }
        other => Err(format!("unknown command {other:?}; try `eavsctl help`")),
    }
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("--{name} needs a value"))
        };
        match flag.as_str() {
            "--governor" => out.governor = value("governor")?.clone(),
            "--predictor" => out.predictor = value("predictor")?.clone(),
            "--content" => out.content = value("content")?.clone(),
            "--soc" => out.soc = value("soc")?.clone(),
            "--cluster" => out.cluster = value("cluster")?.clone(),
            "--bitrate" => out.bitrate_kbps = parse_num(value("bitrate")?, "bitrate")?,
            "--width" => out.width = parse_num(value("width")?, "width")?,
            "--height" => out.height = parse_num(value("height")?, "height")?,
            "--fps" => out.fps = parse_num(value("fps")?, "fps")?,
            "--duration" => out.duration_s = parse_num(value("duration")?, "duration")?,
            "--network" => out.network = value("network")?.clone(),
            "--radio" => out.radio = value("radio")?.clone(),
            "--abr" => out.abr = Some(value("abr")?.clone()),
            "--seed" => out.seed = parse_num(value("seed")?, "seed")?,
            "--margin" => {
                let raw = value("margin")?;
                out.margin = Some(
                    raw.parse::<f64>()
                        .map_err(|_| format!("bad margin {raw:?}"))?,
                );
            }
            "--sysfs" => out.sysfs = true,
            "--profile" => out.profile = true,
            "--late-policy" => out.late_policy = value("late-policy")?.clone(),
            "--faults" => out.faults = value("faults")?.clone(),
            "--power" => out.power = value("power")?.clone(),
            "--retry" => out.retry = Some(value("retry")?.clone()),
            "--prior" => out.prior = Some(value("prior")?.clone()),
            "--panic" => out.panic_recovery = true,
            other => return Err(format!("unknown flag {other:?}; try `eavsctl help`")),
        }
    }
    Ok(out)
}

fn parse_fleet_args(args: &[String]) -> Result<FleetArgs, String> {
    let mut out = FleetArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("--{name} needs a value"))
        };
        match flag.as_str() {
            "--campaign" => out.campaign = value("campaign")?.clone(),
            "--sessions" => out.sessions = Some(parse_num(value("sessions")?, "sessions")?),
            "--seed" => out.seed = Some(parse_num(value("seed")?, "seed")?),
            "--shard-size" => {
                out.shard_size = Some(parse_num(value("shard-size")?, "shard-size")?);
            }
            "--governors" => {
                out.governors = Some(value("governors")?.split(',').map(str::to_owned).collect());
            }
            "--checkpoint" => out.checkpoint = Some(value("checkpoint")?.clone()),
            "--checkpoint-every" => {
                out.checkpoint_every = parse_num(value("checkpoint-every")?, "checkpoint-every")?;
            }
            "--halt-after-shards" => {
                out.halt_after_shards =
                    Some(parse_num(value("halt-after-shards")?, "halt-after-shards")?);
            }
            "--out" => out.out = Some(value("out")?.clone()),
            "--metrics-out" => out.metrics_out = Some(value("metrics-out")?.clone()),
            "--batch" => out.batch = Some(parse_num(value("batch")?, "batch")?),
            "--power" => out.power = Some(value("power")?.clone()),
            "--emit-prior" => out.emit_prior = Some(value("emit-prior")?.clone()),
            "--prior" => out.prior = Some(value("prior")?.clone()),
            other => return Err(format!("unknown flag {other:?}; try `eavsctl help`")),
        }
    }
    Ok(out)
}

fn parse_submit_args(args: &[String]) -> Result<SubmitArgs, String> {
    let mut out = SubmitArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("--{name} needs a value"))
        };
        match flag.as_str() {
            "--campaign" => out.fleet.campaign = value("campaign")?.clone(),
            "--sessions" => out.fleet.sessions = Some(parse_num(value("sessions")?, "sessions")?),
            "--seed" => out.fleet.seed = Some(parse_num(value("seed")?, "seed")?),
            "--shard-size" => {
                out.fleet.shard_size = Some(parse_num(value("shard-size")?, "shard-size")?);
            }
            "--governors" => {
                out.fleet.governors =
                    Some(value("governors")?.split(',').map(str::to_owned).collect());
            }
            "--power" => out.fleet.power = Some(value("power")?.clone()),
            "--out" => out.fleet.out = Some(value("out")?.clone()),
            "--addr" => out.addr = Some(value("addr")?.clone()),
            "--wait" => out.wait = true,
            other => return Err(format!("unknown flag {other:?}; try `eavsctl help`")),
        }
    }
    if out.fleet.out.is_some() && !out.wait {
        return Err("--out needs --wait (the CSV is rendered from the final result)".to_owned());
    }
    Ok(out)
}

fn parse_status_args(args: &[String]) -> Result<StatusArgs, String> {
    let mut out = StatusArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                out.addr = Some(it.next().ok_or("--addr needs a value")?.clone());
            }
            other if !other.starts_with("--") && out.id.is_none() => {
                out.id = Some(other.to_owned());
            }
            other => return Err(format!("unknown flag {other:?}; try `eavsctl help`")),
        }
    }
    Ok(out)
}

fn parse_remote_args(args: &[String], verb: &str) -> Result<RemoteArgs, String> {
    let mut out = RemoteArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                out.addr = Some(it.next().ok_or("--addr needs a value")?.clone());
            }
            other if !other.starts_with("--") && out.id.is_empty() => {
                out.id = other.to_owned();
            }
            other => return Err(format!("unknown flag {other:?}; try `eavsctl help`")),
        }
    }
    if out.id.is_empty() {
        return Err(format!("{verb} needs a campaign id (see `eavsctl status`)"));
    }
    Ok(out)
}

fn parse_daemon_args(args: &[String]) -> Result<DaemonArgs, String> {
    let mut out = DaemonArgs {
        action: "status".to_owned(),
        addr: None,
    };
    let mut action_given = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                out.addr = Some(it.next().ok_or("--addr needs a value")?.clone());
            }
            action @ ("status" | "metrics" | "shutdown") if !action_given => {
                out.action = action.to_owned();
                action_given = true;
            }
            other => {
                return Err(format!(
                    "unknown daemon action or flag {other:?}: want status, metrics or shutdown"
                ))
            }
        }
    }
    Ok(out)
}

/// Splits the trace-specific flags off and parses the rest as `run`
/// flags, so `trace` accepts every workload option `run` does.
fn parse_trace_args(args: &[String]) -> Result<TraceArgs, String> {
    let mut out = TraceArgs::default();
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("--{name} needs a value"))
        };
        match flag.as_str() {
            "--out" => out.out = Some(value("out")?.clone()),
            "--chrome" => out.chrome = true,
            "--events" => {
                out.events = parse_num::<usize>(value("events")?, "events")?.max(1);
            }
            _ => rest.push(flag.clone()),
        }
    }
    out.run = parse_run_args(&rest)?;
    Ok(out)
}

/// Applies `args` overrides to its preset and runs (or resumes) the
/// campaign on the pooled, cached shard runner.
///
/// # Errors
///
/// Returns a message for unknown presets/governors, invalid specs, or
/// checkpoint problems.
pub fn run_fleet(args: &FleetArgs) -> Result<String, String> {
    let spec = build_fleet_spec(args)?;
    let warm_start = args
        .prior
        .as_ref()
        .map(|p| eavs_fleet::prior::load(std::path::Path::new(p)))
        .transpose()?;
    let opts = eavs_fleet::RunOptions {
        checkpoint: args.checkpoint.as_ref().map(std::path::PathBuf::from),
        checkpoint_every: args.checkpoint_every,
        halt_after_shards: args.halt_after_shards,
        prior: warm_start.map(std::sync::Arc::new),
        ..eavs_fleet::RunOptions::default()
    };
    if let Some(width) = args.batch {
        // The executor reads EAVS_BATCH once; setting it before the
        // first session runs routes every shard through the SoA kernel.
        std::env::set_var("EAVS_BATCH", width.to_string());
    }
    let outcome = eavs_bench::fleet::run_campaign(&spec, &opts)?;
    let table = outcome.aggregate.table(&spec);
    let mut out = table.render();
    out.push_str(&format!(
        "{}/{} shards done; {} session-runs this invocation ({:.0} runs/sec); \
         {} replayed, {} batched; peak shard {:.1} KiB\n",
        outcome.aggregate.shards_done,
        spec.num_shards(),
        outcome.session_runs,
        outcome.session_runs as f64 / outcome.wall_s.max(1e-9),
        outcome.replayed,
        outcome.batched,
        outcome.peak_shard_bytes as f64 / 1024.0,
    ));
    if outcome.status == eavs_fleet::CampaignStatus::Halted {
        out.push_str("halted at --halt-after-shards; rerun with the same --checkpoint to resume\n");
    }
    if let Some(path) = &args.out {
        write_output_file(path, &table.to_csv())?;
        out.push_str(&format!("[csv written to {path}]\n"));
    }
    if let Some(path) = &args.metrics_out {
        write_output_file(path, &fleet_metrics_page(&outcome, &spec))?;
        out.push_str(&format!("[metrics written to {path}]\n"));
    }
    if let Some(path) = &args.emit_prior {
        // The prior rides the aggregate, so it is byte-identical however
        // the shards were scheduled (EAVS_JOBS) — CI `cmp`s these files.
        eavs_fleet::prior::save(std::path::Path::new(path), &outcome.aggregate.prior)?;
        out.push_str(&format!(
            "[prior written to {path}: {} catalog entries, {} frames]\n",
            outcome.aggregate.prior.len(),
            outcome.aggregate.prior.total_frames(),
        ));
    }
    Ok(out)
}

/// Builds the campaign spec a `fleet` or `submit` invocation describes:
/// the chosen preset with the spec-shaping overrides applied. The same
/// spec from either path has the same fingerprint — which is the whole
/// point: `submit` to a daemon and a local `fleet` run of the same
/// flags land on the same campaign id and, being bit-exact, the same
/// result bytes.
///
/// # Errors
///
/// Returns a message for unknown presets or power-model specs.
pub fn build_fleet_spec(args: &FleetArgs) -> Result<eavs_fleet::CampaignSpec, String> {
    let mut spec = eavs_fleet::CampaignSpec::preset(&args.campaign).ok_or(format!(
        "unknown campaign {:?}; presets: smoke global",
        args.campaign
    ))?;
    if let Some(n) = args.sessions {
        spec.sessions = n;
    }
    if let Some(s) = args.seed {
        spec.seed = s;
    }
    if let Some(s) = args.shard_size {
        spec.shard_size = s;
    }
    if let Some(govs) = &args.governors {
        spec.governors = govs.clone();
    }
    if let Some(power) = &args.power {
        spec.power = build_power(power)?.unwrap_or_default();
    }
    Ok(spec)
}

/// Resolves the daemon address: explicit `--addr`, else the
/// `EAVS_DAEMON_ADDR` knob, else the loopback default.
fn resolve_daemon_addr(flag: &Option<String>) -> String {
    flag.clone()
        .or_else(eavs_bench::executor::daemon_addr)
        .unwrap_or_else(|| "127.0.0.1:7026".to_owned())
}

/// One HTTP exchange with the daemon, with connection errors folded
/// into a actionable message.
fn daemon_request(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    eavs_daemon::http::client::request_text(addr, method, path, body)
        .map_err(|e| format!("cannot reach eavsd at {addr}: {e} (is `eavsd` running?)"))
}

/// Submits the campaign spec to a resident daemon; with `--wait`, polls
/// progress until the campaign finishes and prints the same fleet table
/// (and optional CSV) a local `eavsctl fleet` run would print — the
/// bytes are identical, that is the contract under test in CI.
///
/// # Errors
///
/// Returns a message when the daemon is unreachable, rejects the spec,
/// or the campaign fails/cancels while waiting.
pub fn run_submit(args: &SubmitArgs) -> Result<String, String> {
    let spec = build_fleet_spec(&args.fleet)?;
    let addr = resolve_daemon_addr(&args.addr);
    let body = eavs_daemon::codec::encode_spec(&spec);
    let (status, response) = daemon_request(&addr, "POST", "/campaigns", &body)?;
    if status != 200 {
        return Err(format!("submit rejected ({status}): {response}"));
    }
    let v = eavs_daemon::json::parse(&response).map_err(|e| format!("submit response: {e}"))?;
    let id = v
        .get("id")
        .and_then(eavs_daemon::json::Value::as_str)
        .ok_or("submit response: missing id")?
        .to_owned();
    let resumed = v.get("resumed").and_then(eavs_daemon::json::Value::as_bool) == Some(true);
    let mut out = format!(
        "campaign {id} {} on {addr}\n",
        if resumed { "resumed" } else { "submitted" },
    );
    if !args.wait {
        out.push_str(&format!("poll it with: eavsctl status {id} --addr {addr}\n"));
        return Ok(out);
    }
    loop {
        let (status, body) = daemon_request(&addr, "GET", &format!("/campaigns/{id}"), "")?;
        if status != 200 {
            return Err(format!("status poll failed ({status}): {body}"));
        }
        let v = eavs_daemon::json::parse(&body).map_err(|e| format!("progress body: {e}"))?;
        match v.get("phase").and_then(eavs_daemon::json::Value::as_str) {
            Some("complete") => break,
            Some("running") => std::thread::sleep(std::time::Duration::from_millis(50)),
            Some(other) => return Err(format!("campaign {id} ended {other}: {body}")),
            None => return Err(format!("progress body without phase: {body}")),
        }
    }
    let (status, text) = daemon_request(&addr, "GET", &format!("/campaigns/{id}/result"), "")?;
    if status != 200 {
        return Err(format!("result fetch failed ({status}): {text}"));
    }
    let aggregate = eavs_fleet::checkpoint::decode(&text)?;
    let table = aggregate.table(&spec);
    out.push_str(&table.render());
    out.push_str(&format!(
        "{}/{} shards done (served by {addr})\n",
        aggregate.shards_done,
        spec.num_shards(),
    ));
    if let Some(path) = &args.fleet.out {
        write_output_file(path, &table.to_csv())?;
        out.push_str(&format!("[csv written to {path}]\n"));
    }
    Ok(out)
}

/// `eavsctl status [id]`: the daemon's progress JSON, raw.
///
/// # Errors
///
/// Returns a message when the daemon is unreachable or the id unknown.
pub fn run_status(args: &StatusArgs) -> Result<String, String> {
    let addr = resolve_daemon_addr(&args.addr);
    let path = match &args.id {
        Some(id) => format!("/campaigns/{id}"),
        None => "/campaigns".to_owned(),
    };
    let (status, body) = daemon_request(&addr, "GET", &path, "")?;
    if status != 200 {
        return Err(format!("status failed ({status}): {body}"));
    }
    Ok(format!("{body}\n"))
}

/// `eavsctl cancel <id>`: stop a campaign at its next shard boundary.
/// The checkpoint survives, so resubmitting the same spec resumes it.
///
/// # Errors
///
/// Returns a message when the daemon is unreachable or the id unknown.
pub fn run_cancel(args: &RemoteArgs) -> Result<String, String> {
    let addr = resolve_daemon_addr(&args.addr);
    let (status, body) = daemon_request(&addr, "DELETE", &format!("/campaigns/{}", args.id), "")?;
    if status != 200 {
        return Err(format!("cancel failed ({status}): {body}"));
    }
    Ok(format!("{body}\n"))
}

/// `eavsctl daemon status|metrics|shutdown`.
///
/// # Errors
///
/// Returns a message when the daemon is unreachable.
pub fn run_daemon_ctl(args: &DaemonArgs) -> Result<String, String> {
    let addr = resolve_daemon_addr(&args.addr);
    match args.action.as_str() {
        "status" => {
            let (status, health) = daemon_request(&addr, "GET", "/healthz", "")?;
            if status != 200 {
                return Err(format!("healthz failed ({status}): {health}"));
            }
            let (status, list) = daemon_request(&addr, "GET", "/campaigns", "")?;
            if status != 200 {
                return Err(format!("campaign list failed ({status}): {list}"));
            }
            Ok(format!("eavsd at {addr}: {}campaigns: {list}\n", health))
        }
        "metrics" => {
            let (status, page) = daemon_request(&addr, "GET", "/metrics", "")?;
            if status != 200 {
                return Err(format!("metrics failed ({status}): {page}"));
            }
            Ok(page)
        }
        "shutdown" => {
            let (status, body) = daemon_request(&addr, "POST", "/shutdown", "")?;
            if status != 200 {
                return Err(format!("shutdown failed ({status}): {body}"));
            }
            Ok(format!("eavsd at {addr} stopping: {body}\n"))
        }
        other => Err(format!(
            "unknown daemon action {other:?}: want status, metrics or shutdown"
        )),
    }
}

/// Renders the campaign's Prometheus page plus the invocation execution
/// counters (replayed/batched session-runs) and the process-local
/// session-cache counters (hits/misses/bytes/evictions), which live in
/// the bench harness rather than the campaign aggregate.
fn fleet_metrics_page(
    outcome: &eavs_fleet::CampaignOutcome,
    spec: &eavs_fleet::CampaignSpec,
) -> String {
    let mut w = eavs_obs::PromWriter::new();
    eavs_fleet::prom::write_into(&mut w, &outcome.aggregate, spec);
    eavs_fleet::prom::write_outcome_into(&mut w, outcome, spec);
    let cache = eavs_bench::cache::stats();
    w.help(
        "eavs_session_cache_hits_total",
        "Sessions served from the content-addressed cache.",
    )
    .type_("eavs_session_cache_hits_total", "counter")
    .sample("eavs_session_cache_hits_total", &[], cache.hits as f64);
    w.help(
        "eavs_session_cache_misses_total",
        "Sessions simulated and then cached.",
    )
    .type_("eavs_session_cache_misses_total", "counter")
    .sample("eavs_session_cache_misses_total", &[], cache.misses as f64);
    w.help(
        "eavs_session_cache_uncacheable_total",
        "Sessions that ran uncached (unfingerprintable or observed).",
    )
    .type_("eavs_session_cache_uncacheable_total", "counter")
    .sample(
        "eavs_session_cache_uncacheable_total",
        &[],
        cache.uncacheable as f64,
    );
    w.help(
        "eavs_session_cache_resident_bytes",
        "Approximate resident bytes of the cached reports.",
    )
    .type_("eavs_session_cache_resident_bytes", "gauge")
    .sample("eavs_session_cache_resident_bytes", &[], cache.bytes as f64);
    w.help(
        "eavs_session_cache_evictions_total",
        "Reports evicted to keep the cache under its byte cap.",
    )
    .type_("eavs_session_cache_evictions_total", "counter")
    .sample(
        "eavs_session_cache_evictions_total",
        &[],
        cache.evictions as f64,
    );
    w.help(
        "eavs_session_cache_hit_ratio",
        "Fraction of cacheable lookups served from the cache.",
    )
    .type_("eavs_session_cache_hit_ratio", "gauge")
    .sample("eavs_session_cache_hit_ratio", &[], cache.hit_rate());
    w.finish()
}

fn parse_num<T: std::str::FromStr>(raw: &str, name: &str) -> Result<T, String> {
    raw.parse::<T>()
        .map_err(|_| format!("bad value {raw:?} for --{name}"))
}

fn build_governor(args: &RunArgs, name: &str) -> Result<GovernorChoice, String> {
    if name == "eavs" {
        let predictor = predictor_by_name(&args.predictor)
            .ok_or(format!("unknown predictor {:?}", args.predictor))?;
        let mut config = EavsConfig::default();
        if let Some(m) = args.margin {
            if !(0.0..=2.0).contains(&m) {
                return Err(format!("margin {m} outside [0, 2]"));
            }
            config.margin = m;
        }
        config.panic_recovery = args.panic_recovery;
        Ok(GovernorChoice::Eavs(EavsGovernor::new(predictor, config)))
    } else if args.panic_recovery {
        Err("--panic requires --governor eavs".to_owned())
    } else {
        by_name(name)
            .map(GovernorChoice::Baseline)
            .ok_or(format!("unknown governor {name:?}"))
    }
}

fn build_faults(spec: &str) -> Result<Option<FaultPlan>, String> {
    if spec == "none" {
        return Ok(None);
    }
    if spec == "storm" {
        return Ok(Some(FaultPlan::standard_storm()));
    }
    let randomized = if let Some(seed) = spec.strip_prefix("light:") {
        RandomFaults::light(parse_num(seed, "faults")?)
    } else if let Some(seed) = spec.strip_prefix("heavy:") {
        RandomFaults::heavy(parse_num(seed, "faults")?)
    } else {
        return Err(format!("unknown fault plan {spec:?}"));
    };
    Ok(Some(FaultPlan {
        randomized: Some(randomized),
        ..FaultPlan::default()
    }))
}

/// Builds the whole-device power model from its CLI spec: `none`,
/// `phone` or `phone:<brightness>`. `EAVS_POWER_TAIL_MS` (a registered
/// warn-once env knob) overrides the modeled radio's RRC tail timer —
/// the knob behind the F29 sensitivity sweep.
fn build_power(spec: &str) -> Result<Option<DevicePowerModel>, String> {
    let mut model = if spec == "none" {
        return Ok(None);
    } else if spec == "phone" {
        DevicePowerModel::phone()
    } else if let Some(brightness) = spec.strip_prefix("phone:") {
        let b: f64 = brightness
            .parse()
            .map_err(|_| format!("bad brightness {brightness:?}"))?;
        if !(0.0..=1.0).contains(&b) {
            return Err(format!("brightness {b} outside [0, 1]"));
        }
        DevicePowerModel::phone_with_brightness(b)
    } else {
        return Err(format!(
            "unknown power model {spec:?}: want none, phone or phone:<brightness>"
        ));
    };
    if let (Some(ms), Some(radio)) = (eavs_bench::executor::power_tail_ms(), &mut model.radio) {
        *radio = radio.with_tail_timer(SimDuration::from_millis(ms));
    }
    Ok(Some(model))
}

fn build_retry(spec: &str) -> Result<RetryPolicy, String> {
    if spec == "balanced" {
        return Ok(RetryPolicy::with_timeout(SimDuration::from_secs(2)));
    }
    let parts: Vec<&str> = spec.split(',').collect();
    let [timeout_ms, retries, base_ms] = parts.as_slice() else {
        return Err(format!(
            "bad retry {spec:?}: want `balanced` or <timeout_ms>,<retries>,<base_ms>"
        ));
    };
    Ok(RetryPolicy {
        timeout: Some(SimDuration::from_millis(parse_num(timeout_ms, "retry")?)),
        max_retries: parse_num(retries, "retry")?,
        backoff_base: SimDuration::from_millis(parse_num(base_ms, "retry")?),
        ..RetryPolicy::default()
    })
}

fn build_soc(name: &str) -> Result<SocModel, String> {
    SocModel::ALL
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or(format!("unknown soc {name:?}"))
}

fn build_content(name: &str) -> Result<ContentProfile, String> {
    ContentProfile::ALL
        .into_iter()
        .find(|c| c.name() == name)
        .ok_or(format!("unknown content {name:?}"))
}

fn build_network(spec: &str, duration: SimDuration, seed: u64) -> Result<BandwidthTrace, String> {
    if let Some(mbps) = spec.strip_prefix("constant:") {
        let mbps: f64 = mbps
            .parse()
            .map_err(|_| format!("bad constant rate {mbps:?}"))?;
        if mbps <= 0.0 {
            return Err("constant rate must be positive".to_owned());
        }
        return Ok(BandwidthTrace::constant(mbps * 1e6));
    }
    NetworkProfile::ALL
        .into_iter()
        .find(|p| p.name() == spec)
        .map(|p| p.generate(duration * 3, seed))
        .ok_or(format!("unknown network {spec:?}"))
}

fn build_radio(name: &str) -> Result<RadioModel, String> {
    Ok(match name {
        "wifi" => RadioModel::wifi(),
        "lte" => RadioModel::lte(),
        "3g" | "umts" => RadioModel::umts_3g(),
        other => return Err(format!("unknown radio {other:?}")),
    })
}

fn build_abr(name: &str) -> Result<Box<dyn AbrAlgorithm>, String> {
    Ok(match name {
        "fixed" => Box::new(FixedAbr::new(usize::MAX)), // top rung
        "rate" => Box::new(RateBasedAbr::standard()),
        "buffer" => Box::new(BufferBasedAbr::standard()),
        other => return Err(format!("unknown abr {other:?}")),
    })
}

/// Runs one session described by `args` under governor `name`.
///
/// # Errors
///
/// Returns a message for unknown names or invalid values.
pub fn run_session(args: &RunArgs, governor_name: &str) -> Result<SessionReport, String> {
    Ok(build_session(args, governor_name)?.run())
}

/// Builds (without running) the session described by `args`, so callers
/// can attach observers — `trace` hangs a ring sink off the same
/// builder `run` uses, guaranteeing both see the identical workload.
fn build_session(
    args: &RunArgs,
    governor_name: &str,
) -> Result<eavs_core::session::SessionBuilder, String> {
    let duration = SimDuration::from_secs(args.duration_s.max(1));
    let manifest = match &args.abr {
        Some(_) => Manifest::standard_ladder(duration, args.fps.max(1)),
        None => Manifest::single(
            args.bitrate_kbps.max(1),
            args.width.max(16),
            args.height.max(16),
            duration,
            args.fps.max(1),
        ),
    };
    let mut builder = StreamingSession::builder(build_governor(args, governor_name)?)
        .soc(build_soc(&args.soc)?)
        .content(build_content(&args.content)?)
        .manifest(manifest)
        .network(build_network(&args.network, duration, args.seed)?)
        .radio(build_radio(&args.radio)?)
        .seed(args.seed)
        .drive_via_sysfs(args.sysfs)
        .cluster(match args.cluster.as_str() {
            "big" => ClusterSelect::Big,
            "little" => ClusterSelect::Little,
            "auto" => {
                if governor_name != "eavs" {
                    return Err("--cluster auto requires --governor eavs".to_owned());
                }
                ClusterSelect::Auto
            }
            other => return Err(format!("unknown cluster {other:?}")),
        });
    builder = builder.late_policy(match args.late_policy.as_str() {
        "stall" => eavs_video::display::LatePolicy::Stall,
        "drop" => eavs_video::display::LatePolicy::Drop,
        other => return Err(format!("unknown late policy {other:?}")),
    });
    if let Some(abr) = &args.abr {
        builder = builder.abr(build_abr(abr)?);
    }
    if let Some(plan) = build_faults(&args.faults)? {
        builder = builder.faults(plan);
    }
    if let Some(model) = build_power(&args.power)? {
        builder = builder.power(model);
    }
    if let Some(retry) = &args.retry {
        builder = builder.retry(build_retry(retry)?);
    }
    if args.profile {
        builder = builder.profile(true);
    }
    if let Some(path) = &args.prior {
        let store = eavs_fleet::prior::load(std::path::Path::new(path))?;
        // Project the store onto this workload's encode key — the same
        // key `TitleSpec::key()` produces fleet-side — so clips trained
        // in a campaign seed the matching single-session run. An absent
        // key projects the empty prior: byte-identical to a cold run.
        let key = format!(
            "{}kbps-{}x{}@{}",
            args.bitrate_kbps.max(1),
            args.width.max(16),
            args.height.max(16),
            args.fps.max(1),
        );
        builder = builder.prior(store.session_prior(&key, &args.content));
    }
    Ok(builder)
}

/// Runs one traced session and renders its timeline: JSONL by default,
/// Chrome trace-event JSON with `--chrome`. Without `--out` the dump
/// itself is the command output, so shell pipelines (and the CI
/// determinism gate's `cmp`) see the raw bytes.
///
/// # Errors
///
/// Propagates session-construction errors and dump-file I/O failures.
pub fn run_trace(args: &TraceArgs) -> Result<String, String> {
    let ring = eavs_obs::shared(eavs_obs::RingSink::new(args.events));
    let sink: eavs_obs::SharedSink = ring.clone();
    let report = build_session(&args.run, &args.run.governor)?
        .trace(sink)
        .run();
    let ring = ring.lock().expect("trace sink poisoned");
    let body = if args.chrome {
        ring.to_chrome_trace(&format!("eavsctl {}", report.governor))
    } else {
        ring.to_jsonl()
    };
    match &args.out {
        Some(path) => {
            write_output_file(path, &body)?;
            Ok(format!(
                "{} events recorded ({} dropped, ring {}); {} written to {path}\n",
                ring.total_recorded(),
                ring.dropped(),
                args.events,
                if args.chrome { "chrome trace" } else { "jsonl" },
            ))
        }
        None => Ok(body),
    }
}

/// Writes `contents` to `path`, creating parent directories as needed.
fn write_output_file(path: &str, contents: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path:?}: {e}"))
}

/// Executes a parsed command, writing human output to the returned string.
///
/// # Errors
///
/// Propagates session-construction errors.
pub fn execute(command: Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(USAGE.to_owned()),
        Command::Fleet(args) => run_fleet(&args),
        Command::Trace(args) => run_trace(&args),
        Command::Submit(args) => run_submit(&args),
        Command::Status(args) => run_status(&args),
        Command::Cancel(args) => run_cancel(&args),
        Command::Daemon(args) => run_daemon_ctl(&args),
        Command::List => {
            let mut out = String::new();
            out.push_str("governors: eavs performance powersave userspace ondemand conservative interactive schedutil\n");
            out.push_str("predictors: last ewma window-max size-regression hybrid oracle\n");
            out.push_str("contents: animation film sport\n");
            out.push_str("socs: biglittle2013 flagship2016 midrange\n");
            out.push_str("networks: constant:<mbps> wifi_home lte_drive hspa_tram\n");
            out.push_str("radios: wifi lte 3g\n");
            out.push_str("abr: fixed rate buffer\n");
            out.push_str("faults: none storm light:<seed> heavy:<seed>\n");
            out.push_str("power: none phone phone:<brightness>\n");
            Ok(out)
        }
        Command::Run(args) => {
            let report = run_session(&args, &args.governor.clone())?;
            let mut out = format!("{report}\n");
            if args.faults != "none" {
                out.push_str(&format!(
                    "  faults: {} retries ({} timeouts, {} corrupt, {} abandoned), {} decode spikes, {} decoder stalls, {} panic races\n",
                    report.download_retries,
                    report.download_timeouts,
                    report.corrupt_downloads,
                    report.segments_abandoned,
                    report.decode_spikes,
                    report.decode_stalls,
                    report.panic_races,
                ));
            }
            if args.power != "none" {
                out.push_str(&format!(
                    "  device power: radio {:.2} J ({} promotions, tail {:.1} s), display {:.2} J, decoder {:.2} J, device total {:.2} J\n",
                    report.power.radio_j,
                    report.power.radio_promotions,
                    report.power.radio_tail_time.as_secs_f64(),
                    report.power.display_j,
                    report.power.decoder_j,
                    report.power.total_j(),
                ));
            }
            if let Some(profile) = &report.profile {
                out.push_str(&format!("  profile: {}\n", profile.to_json()));
            }
            Ok(out)
        }
        Command::Compare(args, governors) => {
            let mut out = String::new();
            for name in &governors {
                let report = run_session(&args, name)?;
                out.push_str(&report.summary());
                out.push('\n');
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn run_defaults() {
        let cmd = parse(&argv("run")).unwrap();
        match cmd {
            Command::Run(args) => assert_eq!(args, RunArgs::default()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn run_with_flags() {
        let cmd = parse(&argv(
            "run --governor ondemand --content sport --bitrate 3000 --fps 60 --seed 7 --sysfs",
        ))
        .unwrap();
        let Command::Run(args) = cmd else {
            panic!("not a run")
        };
        assert_eq!(args.governor, "ondemand");
        assert_eq!(args.content, "sport");
        assert_eq!(args.bitrate_kbps, 3000);
        assert_eq!(args.fps, 60);
        assert_eq!(args.seed, 7);
        assert!(args.sysfs);
    }

    #[test]
    fn compare_parses_governor_list() {
        let cmd = parse(&argv("compare ondemand,eavs --duration 5")).unwrap();
        let Command::Compare(args, governors) = cmd else {
            panic!("not a compare")
        };
        assert_eq!(governors, vec!["ondemand", "eavs"]);
        assert_eq!(args.duration_s, 5);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&argv("launch"))
            .unwrap_err()
            .contains("unknown command"));
        assert!(parse(&argv("run --bitrate nope"))
            .unwrap_err()
            .contains("bad value"));
        assert!(parse(&argv("run --margin"))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&argv("run --frobnicate 1"))
            .unwrap_err()
            .contains("unknown flag"));
    }

    #[test]
    fn execute_list_and_help() {
        let list = execute(Command::List).unwrap();
        assert!(list.contains("eavs"));
        assert!(list.contains("lte_drive"));
        let help = execute(Command::Help).unwrap();
        assert!(help.contains("USAGE"));
    }

    #[test]
    fn run_session_end_to_end() {
        let args = RunArgs {
            duration_s: 4,
            bitrate_kbps: 1_500,
            width: 854,
            height: 480,
            ..RunArgs::default()
        };
        let report = run_session(&args, "eavs").unwrap();
        assert_eq!(report.qoe.frames_displayed, report.qoe.total_frames);
        // Unknown names error out cleanly.
        assert!(run_session(&args, "warp").is_err());
        let bad = RunArgs {
            soc: "quantum".to_owned(),
            ..args.clone()
        };
        assert!(run_session(&bad, "eavs").is_err());
    }

    #[test]
    fn compare_executes_multiple() {
        let args = RunArgs {
            duration_s: 4,
            bitrate_kbps: 1_500,
            width: 854,
            height: 480,
            ..RunArgs::default()
        };
        let out = execute(Command::Compare(
            args,
            vec!["powersave".into(), "eavs".into()],
        ))
        .unwrap();
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("powersave"));
        assert!(out.contains("eavs/hybrid"));
    }

    #[test]
    fn cluster_auto_requires_eavs() {
        let args = RunArgs {
            cluster: "auto".to_owned(),
            duration_s: 4,
            bitrate_kbps: 1_500,
            width: 854,
            height: 480,
            ..RunArgs::default()
        };
        assert!(run_session(&args, "ondemand")
            .unwrap_err()
            .contains("requires --governor eavs"));
        let report = run_session(&args, "eavs").unwrap();
        assert_eq!(&*report.cluster, "auto");
    }

    #[test]
    fn late_policy_flag() {
        let cmd = parse(&argv("run --late-policy drop --duration 4")).unwrap();
        let Command::Run(args) = cmd else { panic!() };
        assert_eq!(args.late_policy, "drop");
        let bad = RunArgs {
            late_policy: "freeze".to_owned(),
            ..RunArgs::default()
        };
        assert!(run_session(&bad, "eavs")
            .unwrap_err()
            .contains("late policy"));
    }

    #[test]
    fn faults_flag_parses_and_injects() {
        let cmd = parse(&argv(
            "run --faults storm --retry balanced --panic --duration 4",
        ))
        .unwrap();
        let Command::Run(args) = cmd else { panic!() };
        assert_eq!(args.faults, "storm");
        assert_eq!(args.retry.as_deref(), Some("balanced"));
        assert!(args.panic_recovery);

        // A light randomized plan on a short clip injects at least one
        // fault counter or none — but must run to completion either way.
        let args = RunArgs {
            duration_s: 8,
            faults: "heavy:7".to_owned(),
            retry: Some("balanced".to_owned()),
            panic_recovery: true,
            ..RunArgs::default()
        };
        let report = run_session(&args, "eavs").unwrap();
        assert!(
            report.download_retries > 0
                || report.decode_spikes > 0
                || report.decode_stalls > 0
                || report.segments_abandoned > 0,
            "heavy faults on 8 s should trip at least one counter"
        );
    }

    #[test]
    fn faults_flag_rejects_garbage() {
        let args = RunArgs {
            faults: "hurricane".to_owned(),
            ..RunArgs::default()
        };
        assert!(run_session(&args, "eavs")
            .unwrap_err()
            .contains("unknown fault plan"));
        let args = RunArgs {
            retry: Some("1,2".to_owned()),
            ..RunArgs::default()
        };
        assert!(run_session(&args, "eavs")
            .unwrap_err()
            .contains("bad retry"));
        let args = RunArgs {
            panic_recovery: true,
            ..RunArgs::default()
        };
        assert!(run_session(&args, "ondemand")
            .unwrap_err()
            .contains("requires --governor eavs"));
    }

    #[test]
    fn power_flag_parses_and_accounts() {
        let cmd = parse(&argv("run --power phone:0.8 --duration 4")).unwrap();
        let Command::Run(args) = cmd else { panic!() };
        assert_eq!(args.power, "phone:0.8");

        let args = RunArgs {
            duration_s: 4,
            bitrate_kbps: 1_500,
            width: 854,
            height: 480,
            power: "phone:0.8".to_owned(),
            ..RunArgs::default()
        };
        let powered = run_session(&args, "eavs").unwrap();
        assert!(powered.power.total_j() > 0.0);
        assert!(powered.power.radio_promotions > 0);
        // The co-model is accounting-only: the identical session without
        // it decodes the same frames for the same CPU energy.
        let plain = run_session(
            &RunArgs {
                power: "none".to_owned(),
                ..args.clone()
            },
            "eavs",
        )
        .unwrap();
        assert_eq!(plain.cpu_joules().to_bits(), powered.cpu_joules().to_bits());
        assert_eq!(plain.frames_decoded, powered.frames_decoded);
        assert_eq!(plain.power.total_j(), 0.0);

        let out = execute(Command::Run(args)).unwrap();
        assert!(out.contains("device power:"), "{out}");
    }

    #[test]
    fn power_flag_rejects_garbage() {
        let bad = |spec: &str| RunArgs {
            power: spec.to_owned(),
            ..RunArgs::default()
        };
        assert!(run_session(&bad("nuclear"), "eavs")
            .unwrap_err()
            .contains("unknown power model"));
        assert!(run_session(&bad("phone:dim"), "eavs")
            .unwrap_err()
            .contains("bad brightness"));
        assert!(run_session(&bad("phone:1.5"), "eavs")
            .unwrap_err()
            .contains("outside [0, 1]"));
    }

    #[test]
    fn retry_triple_parses() {
        let args = RunArgs {
            duration_s: 4,
            faults: "storm".to_owned(),
            retry: Some("2000,4,250".to_owned()),
            ..RunArgs::default()
        };
        // Storm faults sit mostly past 4 s, but the run must succeed.
        let report = run_session(&args, "eavs").unwrap();
        assert!(report.frames_decoded > 0);
    }

    #[test]
    fn execute_run_appends_fault_line() {
        let args = RunArgs {
            duration_s: 8,
            faults: "heavy:7".to_owned(),
            retry: Some("balanced".to_owned()),
            ..RunArgs::default()
        };
        let out = execute(Command::Run(args)).unwrap();
        assert!(out.contains("faults:"), "{out}");
    }

    #[test]
    fn fleet_parses_flags() {
        let cmd = parse(&argv(
            "fleet --campaign smoke --sessions 40 --seed 9 --shard-size 10 \
             --governors ondemand,eavs --checkpoint /tmp/x.ckpt --checkpoint-every 2 \
             --halt-after-shards 3 --out /tmp/x.csv --power phone \
             --emit-prior /tmp/x.prior --prior /tmp/warm.prior",
        ))
        .unwrap();
        let Command::Fleet(args) = cmd else {
            panic!("not a fleet")
        };
        assert_eq!(args.campaign, "smoke");
        assert_eq!(args.sessions, Some(40));
        assert_eq!(args.seed, Some(9));
        assert_eq!(args.shard_size, Some(10));
        assert_eq!(
            args.governors,
            Some(vec!["ondemand".to_owned(), "eavs".to_owned()])
        );
        assert_eq!(args.checkpoint.as_deref(), Some("/tmp/x.ckpt"));
        assert_eq!(args.checkpoint_every, 2);
        assert_eq!(args.halt_after_shards, Some(3));
        assert_eq!(args.out.as_deref(), Some("/tmp/x.csv"));
        assert_eq!(args.power.as_deref(), Some("phone"));
        assert_eq!(args.emit_prior.as_deref(), Some("/tmp/x.prior"));
        assert_eq!(args.prior.as_deref(), Some("/tmp/warm.prior"));

        assert_eq!(
            parse(&argv("fleet")).unwrap(),
            Command::Fleet(FleetArgs::default())
        );
        assert!(parse(&argv("fleet --sessions nope"))
            .unwrap_err()
            .contains("bad value"));
        assert!(parse(&argv("fleet --frobnicate"))
            .unwrap_err()
            .contains("unknown flag"));
    }

    #[test]
    fn fleet_executes_tiny_campaign() {
        let args = FleetArgs {
            sessions: Some(4),
            shard_size: Some(2),
            governors: Some(vec!["eavs".to_owned()]),
            ..FleetArgs::default()
        };
        let out = run_fleet(&args).unwrap();
        assert!(out.contains("2/2 shards done"), "{out}");
        assert!(out.contains("eavs"), "{out}");

        let bad = FleetArgs {
            campaign: "galactic".to_owned(),
            ..FleetArgs::default()
        };
        assert!(run_fleet(&bad).unwrap_err().contains("unknown campaign"));
        let bad = FleetArgs {
            power: Some("nuclear".to_owned()),
            ..args.clone()
        };
        assert!(run_fleet(&bad).unwrap_err().contains("unknown power model"));
        let bad = FleetArgs {
            governors: Some(vec!["warp".to_owned()]),
            ..args
        };
        assert!(run_fleet(&bad).unwrap_err().contains("unknown governor"));
    }

    #[test]
    fn submit_status_cancel_daemon_parse() {
        let cmd = parse(&argv(
            "submit --campaign smoke --sessions 40 --governors ondemand,eavs \
             --addr 127.0.0.1:9 --wait --out /tmp/f.csv",
        ))
        .unwrap();
        let Command::Submit(args) = cmd else {
            panic!("not a submit")
        };
        assert_eq!(args.fleet.campaign, "smoke");
        assert_eq!(args.fleet.sessions, Some(40));
        assert_eq!(args.addr.as_deref(), Some("127.0.0.1:9"));
        assert!(args.wait);
        assert_eq!(args.fleet.out.as_deref(), Some("/tmp/f.csv"));
        assert!(parse(&argv("submit --out /tmp/f.csv"))
            .unwrap_err()
            .contains("--out needs --wait"));
        assert!(parse(&argv("submit --checkpoint x"))
            .unwrap_err()
            .contains("unknown flag"));

        assert_eq!(
            parse(&argv("status")).unwrap(),
            Command::Status(StatusArgs::default())
        );
        let Command::Status(args) = parse(&argv("status abc123 --addr h:1")).unwrap() else {
            panic!("not a status")
        };
        assert_eq!(args.id.as_deref(), Some("abc123"));
        assert_eq!(args.addr.as_deref(), Some("h:1"));

        let Command::Cancel(args) = parse(&argv("cancel abc123")).unwrap() else {
            panic!("not a cancel")
        };
        assert_eq!(args.id, "abc123");
        assert!(parse(&argv("cancel"))
            .unwrap_err()
            .contains("needs a campaign id"));

        let Command::Daemon(args) = parse(&argv("daemon")).unwrap() else {
            panic!("not a daemon")
        };
        assert_eq!(args.action, "status");
        let Command::Daemon(args) = parse(&argv("daemon shutdown --addr h:2")).unwrap() else {
            panic!("not a daemon")
        };
        assert_eq!(args.action, "shutdown");
        assert_eq!(args.addr.as_deref(), Some("h:2"));
        assert!(parse(&argv("daemon explode"))
            .unwrap_err()
            .contains("unknown daemon action"));
    }

    #[test]
    fn daemon_clients_error_usefully_when_unreachable() {
        // Port 1 on loopback refuses connections; every client verb
        // must surface the address and a hint instead of a bare error.
        let addr = Some("127.0.0.1:1".to_owned());
        let e = run_status(&StatusArgs {
            id: None,
            addr: addr.clone(),
        })
        .unwrap_err();
        assert!(e.contains("cannot reach eavsd at 127.0.0.1:1"), "{e}");
        assert!(e.contains("is `eavsd` running?"), "{e}");
        assert!(run_cancel(&RemoteArgs {
            id: "f00".to_owned(),
            addr: addr.clone(),
        })
        .is_err());
        assert!(run_daemon_ctl(&DaemonArgs {
            action: "metrics".to_owned(),
            addr: addr.clone(),
        })
        .is_err());
        assert!(run_submit(&SubmitArgs {
            addr,
            ..SubmitArgs::default()
        })
        .is_err());
    }

    #[test]
    fn fleet_and_submit_build_the_same_spec() {
        let fleet = FleetArgs {
            sessions: Some(64),
            seed: Some(9),
            governors: Some(vec!["ondemand".to_owned(), "eavs".to_owned()]),
            power: Some("phone:0.5".to_owned()),
            ..FleetArgs::default()
        };
        let a = build_fleet_spec(&fleet).unwrap();
        let b = build_fleet_spec(&fleet).unwrap();
        assert_eq!(a.fingerprint().0, b.fingerprint().0);
        // The daemon wire codec preserves the fingerprint, so submit
        // lands on the same campaign id as a local fleet run.
        let wire = eavs_daemon::codec::encode_spec(&a);
        let decoded = eavs_daemon::codec::decode_spec(&wire).unwrap();
        assert_eq!(decoded.fingerprint().0, a.fingerprint().0);
    }

    #[test]
    fn help_documents_resilience_and_fleet() {
        for needle in [
            "--faults",
            "--retry",
            "--panic",
            "fleet",
            "EXAMPLES",
            "trace",
            "--chrome",
            "--profile",
            "--metrics-out",
            "--power",
            "submit",
            "--wait",
            "eavsd --worker",
            "EAVS_DAEMON_ADDR",
        ] {
            assert!(USAGE.contains(needle), "USAGE must mention {needle}");
        }
    }

    #[test]
    fn trace_parses_mixed_run_and_trace_flags() {
        let cmd = parse(&argv(
            "trace --governor ondemand --out /tmp/t.jsonl --duration 5 --chrome --events 128",
        ))
        .unwrap();
        let Command::Trace(args) = cmd else {
            panic!("not a trace")
        };
        assert_eq!(args.run.governor, "ondemand");
        assert_eq!(args.run.duration_s, 5);
        assert_eq!(args.out.as_deref(), Some("/tmp/t.jsonl"));
        assert!(args.chrome);
        assert_eq!(args.events, 128);

        assert_eq!(
            parse(&argv("trace")).unwrap(),
            Command::Trace(TraceArgs::default())
        );
        assert!(parse(&argv("trace --frobnicate 1"))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse(&argv("trace --events nope"))
            .unwrap_err()
            .contains("bad value"));
    }

    #[test]
    fn trace_dumps_deterministic_jsonl_to_stdout() {
        let args = TraceArgs {
            run: RunArgs {
                duration_s: 4,
                bitrate_kbps: 1_500,
                width: 854,
                height: 480,
                ..RunArgs::default()
            },
            ..TraceArgs::default()
        };
        let a = run_trace(&args).unwrap();
        let b = run_trace(&args).unwrap();
        assert_eq!(a, b, "same seed must dump byte-identical JSONL");
        let first = a.lines().next().unwrap();
        assert!(first.starts_with("{\"seq\":0,"), "{first}");
        assert!(a.contains("\"ev\":\"playback_start\""));
        assert!(a.contains("\"ev\":\"governor_decision\""));
    }

    #[test]
    fn trace_chrome_dump_is_json_array() {
        let args = TraceArgs {
            run: RunArgs {
                duration_s: 4,
                bitrate_kbps: 1_500,
                width: 854,
                height: 480,
                ..RunArgs::default()
            },
            chrome: true,
            ..TraceArgs::default()
        };
        let dump = run_trace(&args).unwrap();
        assert!(dump.starts_with('['), "{dump}");
        assert!(dump.trim_end().ends_with(']'), "{dump}");
        assert!(dump.contains("\"ph\":\"M\""));
        assert!(dump.contains("cpu_freq_khz"));
    }

    #[test]
    fn run_profile_appends_phase_breakdown() {
        let args = RunArgs {
            duration_s: 4,
            bitrate_kbps: 1_500,
            width: 854,
            height: 480,
            profile: true,
            ..RunArgs::default()
        };
        let out = execute(Command::Run(args)).unwrap();
        assert!(out.contains("profile:"), "{out}");
        assert!(out.contains("\"download\""), "{out}");
        assert!(out.contains("\"governor\""), "{out}");
    }

    #[test]
    fn fleet_metrics_out_writes_prometheus_page() {
        let dir = std::env::temp_dir().join("eavs_cli_metrics_test");
        let path = dir.join("f26.prom");
        let args = FleetArgs {
            sessions: Some(4),
            shard_size: Some(2),
            governors: Some(vec!["eavs".to_owned()]),
            metrics_out: Some(path.to_string_lossy().into_owned()),
            ..FleetArgs::default()
        };
        let out = run_fleet(&args).unwrap();
        assert!(out.contains("[metrics written to"), "{out}");
        let page = std::fs::read_to_string(&path).unwrap();
        assert!(page.contains("# TYPE eavs_fleet_cpu_joules histogram"));
        assert!(page.contains("eavs_fleet_shards_done"));
        assert!(page.contains("eavs_session_cache_hits_total"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_emits_a_prior_and_run_seeds_from_it() {
        let dir = std::env::temp_dir().join("eavs_cli_prior_test");
        let path = dir.join("fleet.prior");
        let path_s = path.to_string_lossy().into_owned();
        let args = FleetArgs {
            sessions: Some(4),
            shard_size: Some(2),
            governors: Some(vec!["eavs".to_owned()]),
            emit_prior: Some(path_s.clone()),
            ..FleetArgs::default()
        };
        let out = run_fleet(&args).unwrap();
        assert!(out.contains("[prior written to"), "{out}");
        let store = eavs_fleet::prior::load(&path).unwrap();
        assert!(store.len() > 0);
        assert!(store.total_frames() > 0);

        // The emitted file warm-starts another campaign.
        let warm = FleetArgs {
            emit_prior: None,
            prior: Some(path_s.clone()),
            ..args.clone()
        };
        assert!(run_fleet(&warm).unwrap().contains("2/2 shards done"));

        // A run whose encode the fleet never saw projects the empty
        // prior — identical to the cold session, bit for bit.
        let run = RunArgs {
            duration_s: 4,
            bitrate_kbps: 1_234,
            width: 640,
            height: 360,
            ..RunArgs::default()
        };
        let cold = run_session(&run, "eavs").unwrap();
        let seeded = run_session(
            &RunArgs {
                prior: Some(path_s),
                ..run
            },
            "eavs",
        )
        .unwrap();
        assert_eq!(cold.cpu_joules().to_bits(), seeded.cpu_joules().to_bits());
        assert_eq!(cold.frames_decoded, seeded.frames_decoded);

        // Missing prior files fail with a useful message.
        let bad = RunArgs {
            prior: Some("/nonexistent/x.prior".to_owned()),
            ..RunArgs::default()
        };
        assert!(run_session(&bad, "eavs")
            .unwrap_err()
            .contains("cannot read prior"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abr_switches_to_ladder() {
        let args = RunArgs {
            duration_s: 6,
            abr: Some("buffer".to_owned()),
            ..RunArgs::default()
        };
        let report = run_session(&args, "eavs").unwrap();
        assert!(report.segments_downloaded >= 3);
    }
}
