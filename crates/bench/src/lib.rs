//! # eavs-bench — the experiment harness
//!
//! One module per experiment family; one binary per table/figure (see
//! `src/bin/`), each printing the paper-style rows and writing CSV under
//! `results/`. `run_all` regenerates everything. Criterion microbenches
//! (`benches/`) cover the governor-overhead figure (F14) and simulator
//! performance.
//!
//! | experiment | function |
//! |---|---|
//! | T1 | [`motivation::t1_opp_table`] |
//! | F1 | [`motivation::f1_power_curve`] |
//! | F2 | [`motivation::f2_freq_timeline`] |
//! | F3 | [`motivation::f3_workload_variability`] |
//! | F4 | [`prediction::f4_prediction`] |
//! | F5 | [`comparison::f5_energy_by_governor`] |
//! | F6 | [`comparison::f6_deadline_misses`] |
//! | F7 | [`sweeps::f7_bitrate_sweep`] |
//! | F8 | [`sweeps::f8_framerate_sweep`] |
//! | F9 | [`network::f9_network_abr`] |
//! | F10 | [`sweeps::f10_margin_sweep`] |
//! | F11 | [`timeline::f11_buffer_timeline`] |
//! | F12 | [`timeline::f12_residency`] |
//! | F13 | [`sweeps::f13_ablations`] |
//! | F15 | [`extensions::f15_thermal`] |
//! | F16 | [`extensions::f16_background`] |
//! | F17 | [`extensions::f17_cluster_placement`] |
//! | F18 | [`extensions::f18_queue_depth`] |
//! | F19 | [`extensions::f19_energy_breakdown`] |
//! | F20 | [`extensions::f20_auto_placement`] |
//! | F21 | [`extensions::f21_late_policy`] |
//! | F22 | [`extensions::f22_static_pinning`] |
//! | F23 | [`extensions::f23_baseline_tuning`] |
//! | F24 | [`robustness::f24_fault_storm`] |
//! | F25 | [`robustness::f25_retry_sensitivity`] |
//! | F26 | [`fleet::f26_fleet_population`] |
//! | F27 | `src/bin/f27_fleet_scaling.rs` |
//! | F28 | [`device_power::f28_device_breakdown`] |
//! | F29 | [`device_power::f29_radio_tail_sweep`] |
//! | F30 | [`prior::f30_prior_coldstart`] |
//! | F31 | [`prior::f31_prior_staleness`] |
//! | T2 | [`comparison::t2_summary`] |
//! | T3 | [`extensions::t3_confidence`] |
//! | T4 | [`extensions::t4_soc_matrix`] |
//! | F14 | `benches/governor_overhead.rs` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod comparison;
pub mod device_power;
pub mod dispatch;
pub mod executor;
pub mod extensions;
pub mod fleet;
pub mod harness;
pub mod motivation;
pub mod network;
pub mod prediction;
pub mod prior;
pub mod robustness;
pub mod sweeps;
pub mod timeline;

/// A registered experiment: its id and the function regenerating its table.
pub type Experiment = (&'static str, fn() -> eavs_metrics::table::Table);

/// Every table-producing experiment, as `(id, function)` pairs in
/// presentation order — the backing list for `run_all`.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("t1_opp_table", motivation::t1_opp_table),
        ("f1_power_curve", motivation::f1_power_curve),
        ("f2_freq_timeline", motivation::f2_freq_timeline),
        (
            "f3_workload_variability",
            motivation::f3_workload_variability,
        ),
        ("f4_prediction", prediction::f4_prediction),
        ("f5_energy_by_governor", comparison::f5_energy_by_governor),
        ("f6_deadline_misses", comparison::f6_deadline_misses),
        ("f7_bitrate_sweep", sweeps::f7_bitrate_sweep),
        ("f8_framerate_sweep", sweeps::f8_framerate_sweep),
        ("f9_network_abr", network::f9_network_abr),
        ("f10_margin_sweep", sweeps::f10_margin_sweep),
        ("f11_buffer_timeline", timeline::f11_buffer_timeline),
        ("f12_residency", timeline::f12_residency),
        ("f13_ablations", sweeps::f13_ablations),
        ("f15_thermal", extensions::f15_thermal),
        ("f16_background", extensions::f16_background),
        ("f17_cluster_placement", extensions::f17_cluster_placement),
        ("f18_queue_depth", extensions::f18_queue_depth),
        ("f19_energy_breakdown", extensions::f19_energy_breakdown),
        ("f20_auto_placement", extensions::f20_auto_placement),
        ("f21_late_policy", extensions::f21_late_policy),
        ("f22_static_pinning", extensions::f22_static_pinning),
        ("f23_baseline_tuning", extensions::f23_baseline_tuning),
        ("f24_fault_storm", robustness::f24_fault_storm),
        ("f25_retry_sensitivity", robustness::f25_retry_sensitivity),
        ("f28_device_breakdown", device_power::f28_device_breakdown),
        ("f29_radio_tail_sweep", device_power::f29_radio_tail_sweep),
        ("f30_prior_coldstart", prior::f30_prior_coldstart),
        ("f31_prior_staleness", prior::f31_prior_staleness),
        ("t2_summary", comparison::t2_summary),
        ("t3_confidence", extensions::t3_confidence),
        ("t4_soc_matrix", extensions::t4_soc_matrix),
    ]
}
