//! Simulation clock types.
//!
//! All simulation time is kept in integer nanoseconds so that event ordering
//! is exact and runs are reproducible bit-for-bit. Two newtypes are provided:
//!
//! * [`SimTime`] — an absolute instant on the simulation clock.
//! * [`SimDuration`] — a span between two instants.
//!
//! The arithmetic mirrors `std::time::{Instant, Duration}`: instants subtract
//! to durations, durations add to instants, and durations form a monoid.
//!
//! ```
//! use eavs_sim::time::{SimTime, SimDuration};
//!
//! let t0 = SimTime::ZERO;
//! let t1 = t0 + SimDuration::from_millis(16);
//! assert_eq!(t1 - t0, SimDuration::from_micros(16_000));
//! assert!(t1 > t0);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. It can only
/// move forward; subtracting a later time from an earlier one panics in debug
/// builds (see [`SimTime::checked_duration_since`] for the fallible variant).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(secs).as_nanos())
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float (lossy for very large times).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration since an earlier instant, or `None` if `earlier` is actually
    /// later than `self`.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Duration since an earlier instant, clamping to zero if `earlier` is
    /// later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Adds a duration, returning `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or larger than ~584 years.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let nanos = secs * NANOS_PER_SEC as f64;
        assert!(
            nanos <= u64::MAX as f64,
            "duration {secs} s overflows the simulation clock"
        );
        SimDuration(nanos.round() as u64)
    }

    /// The duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamped at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Addition saturating at [`SimDuration::MAX`].
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Multiplies by a float factor, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN, or on overflow.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        let nanos = self.0 as f64 * factor;
        assert!(nanos <= u64::MAX as f64, "duration multiply overflow");
        SimDuration(nanos.round() as u64)
    }

    /// Divides by a float factor, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is not strictly positive.
    pub fn div_f64(self, divisor: f64) -> SimDuration {
        assert!(
            divisor.is_finite() && divisor > 0.0,
            "duration divisor must be positive, got {divisor}"
        );
        SimDuration((self.0 as f64 / divisor).round() as u64)
    }

    /// The ratio of this duration to another, as a float.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        assert!(!other.is_zero(), "cannot take ratio to a zero duration");
        self.0 as f64 / other.0 as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation clock underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracting a later SimTime from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", format_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_nanos(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({})", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_nanos(self.0))
    }
}

/// Formats a nanosecond count with a human-friendly unit.
fn format_nanos(nanos: u64) -> String {
    if nanos == u64::MAX {
        return "inf".to_owned();
    }
    if nanos >= NANOS_PER_SEC {
        format!("{:.6}s", nanos as f64 / NANOS_PER_SEC as f64)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(
            SimTime::from_secs(2),
            SimTime::from_nanos(2 * NANOS_PER_SEC)
        );
        assert_eq!(SimTime::from_millis(5), SimTime::from_micros(5_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn instant_duration_arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(6);
        assert_eq!(t + d, SimTime::from_millis(16));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_millis(4));
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
        assert_eq!(
            SimTime::ZERO.checked_duration_since(SimTime::from_nanos(1)),
            None
        );
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_secs(3)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "subtracting a later SimTime")]
    fn subtracting_later_from_earlier_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn float_conversions_round_trip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-12);
        let t = SimTime::from_secs_f64(2.5);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mul_div_ratio() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(250));
        assert_eq!(d.div_f64(4.0), SimDuration::from_millis(25));
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 2, SimDuration::from_millis(50));
        assert!((SimDuration::from_secs(1).ratio(SimDuration::from_secs(4)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(7).to_string(), "7ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(4).to_string(), "4.000000s");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
