//! Session result reporting.

use eavs_cpu::cluster::CpuEnergyBreakdown;
use eavs_cpu::freq::Frequency;
use eavs_cpu::soc::SocModel;
use eavs_metrics::timeseries::StepSeries;
use eavs_net::radio::RadioReport;
use eavs_power::DevicePowerReport;
use eavs_sim::time::SimDuration;
use eavs_trace::content::ContentProfile;
use eavs_video::qoe::QoeReport;
use std::fmt;
use std::sync::Arc;

/// Everything measured over one streaming session.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// Governor name (plus predictor for EAVS, e.g. `eavs/hybrid`).
    pub governor: String,
    /// SoC preset used.
    pub soc: SocModel,
    /// Name of the cluster that hosted the player (`big` presets use the
    /// SoC name; LITTLE placements get a `-little` suffix, automatic
    /// placement reports `auto`). Shared, cheaply clonable.
    pub cluster: Arc<str>,
    /// Content profile streamed.
    pub content: ContentProfile,
    /// CPU energy breakdown.
    pub cpu_energy: CpuEnergyBreakdown,
    /// Radio time/energy breakdown.
    pub radio: RadioReport,
    /// Whole-device power co-model counters (radio RRC, display,
    /// decoder). All-zero under the default zero-power no-op model.
    pub power: DevicePowerReport,
    /// Playback quality metrics.
    pub qoe: QoeReport,
    /// Wall-clock session length (start → last frame displayed).
    pub session_length: SimDuration,
    /// Time-weighted mean CPU frequency over the session.
    pub mean_freq: Frequency,
    /// Number of frequency transitions.
    pub transitions: u64,
    /// Wall-clock time at each OPP.
    pub time_in_state: Vec<(Frequency, SimDuration)>,
    /// Frequency timeline (only when series recording was enabled).
    pub freq_series: Option<StepSeries>,
    /// Buffer-level timeline in seconds (only when recording was enabled).
    pub buffer_series: Option<StepSeries>,
    /// Frames decoded.
    pub frames_decoded: u64,
    /// Segments downloaded.
    pub segments_downloaded: u64,
    /// Simulator events processed.
    pub events_processed: u64,
    /// Peak die temperature (only when the thermal model was enabled).
    pub peak_temp_c: Option<f64>,
    /// Background bursts completed on the secondary core.
    pub background_jobs: u64,
    /// Cluster migrations performed (automatic placement only).
    pub migrations: u64,
    /// Segment downloads re-attempted after a timeout or corruption.
    pub download_retries: u64,
    /// Downloads aborted by the retry watchdog.
    pub download_timeouts: u64,
    /// Downloads that completed but failed integrity (fault injection).
    pub corrupt_downloads: u64,
    /// Segments given up on after exhausting the retry budget.
    pub segments_abandoned: u64,
    /// Frames discarded undecoded by drop-mode catch-up.
    pub frames_skipped: u64,
    /// Frames still upstream of the decoder when the session ended.
    pub frames_pending: u64,
    /// Decode jobs whose cycle cost was spiked by fault injection.
    pub decode_spikes: u64,
    /// Transient decoder stalls injected.
    pub decode_stalls: u64,
    /// EAVS panic re-races triggered (prediction breaches + rebuffers;
    /// zero unless panic recovery is enabled).
    pub panic_races: u64,
    /// Per-frame-type actual decode-cost summary (bit-exact mergeable;
    /// the raw material fleet campaigns fold into workload priors).
    pub frame_cycles: crate::framestats::FrameCycleStats,
    /// Per-phase simulated/wall time breakdown (only when profiling was
    /// requested via the session builder; wall times are host-dependent
    /// and never enter fingerprints, traces, or CSVs).
    pub profile: Option<eavs_obs::PhaseProfile>,
}

impl SessionReport {
    /// Total CPU energy in joules (the paper's headline metric).
    pub fn cpu_joules(&self) -> f64 {
        self.cpu_energy.total()
    }

    /// Whole-device-relevant energy: CPU + radio, plus the co-model's
    /// components when one is attached (zero under the no-op default).
    pub fn total_joules(&self) -> f64 {
        self.cpu_joules() + self.radio.energy_j + self.power.total_j()
    }

    /// Mean CPU power over the session, watts.
    pub fn mean_cpu_power(&self) -> f64 {
        self.cpu_joules() / self.session_length.as_secs_f64()
    }

    /// CPU energy per displayed frame, millijoules.
    pub fn mj_per_frame(&self) -> f64 {
        if self.qoe.frames_displayed == 0 {
            return 0.0;
        }
        self.cpu_joules() * 1000.0 / self.qoe.frames_displayed as f64
    }

    /// Approximate heap + inline footprint of this report in bytes.
    ///
    /// Used by the session cache and the fleet campaign runner to account
    /// resident memory (cache size, peak shard footprint) with one shared
    /// yardstick.
    pub fn approx_bytes(&self) -> u64 {
        let mut bytes = std::mem::size_of::<SessionReport>();
        bytes += self.governor.len() + self.cluster.len();
        bytes += std::mem::size_of_val(self.time_in_state.as_slice());
        // A StepSeries point is (time, value): 16 bytes.
        for series in self.freq_series.iter().chain(self.buffer_series.iter()) {
            bytes += series.len() * 16;
        }
        bytes += crate::framestats::FrameCycleStats::approx_heap_bytes();
        bytes as u64
    }

    /// One-line summary for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "{:<16} cpu {:7.2} J ({:5.3} W)  radio {:7.2} J  miss {:6.3}%  rebuf {}  mean {}  trans {}",
            self.governor,
            self.cpu_joules(),
            self.mean_cpu_power(),
            self.radio.energy_j,
            self.qoe.deadline_miss_rate() * 100.0,
            self.qoe.rebuffer_events,
            self.mean_freq,
            self.transitions,
        )
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "session: {} on {} ({})",
            self.governor, self.soc, self.content
        )?;
        writeln!(
            f,
            "  energy: cpu {:.2} J (busy {:.2} / idle {:.2} / static {:.2} / trans {:.3}), radio {:.2} J",
            self.cpu_joules(),
            self.cpu_energy.busy_j,
            self.cpu_energy.idle_j,
            self.cpu_energy.static_j,
            self.cpu_energy.transition_j,
            self.radio.energy_j
        )?;
        writeln!(f, "  qoe: {}", self.qoe)?;
        write!(
            f,
            "  cpu: mean {} over {}, {} transitions, {} frames decoded",
            self.mean_freq, self.session_length, self.transitions, self.frames_decoded
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eavs_video::display::Playback;

    fn report() -> SessionReport {
        let mut playback = Playback::new(10, 1, 1);
        playback.finalize(eavs_sim::time::SimTime::from_secs(1));
        SessionReport {
            governor: "test".into(),
            soc: SocModel::MidRange,
            cluster: "midrange".into(),
            content: ContentProfile::Film,
            cpu_energy: CpuEnergyBreakdown {
                busy_j: 6.0,
                idle_j: 2.0,
                static_j: 1.5,
                transition_j: 0.5,
            },
            radio: RadioReport {
                energy_j: 5.0,
                ..RadioReport::default()
            },
            power: DevicePowerReport::default(),
            qoe: QoeReport::from_playback(
                &playback,
                &[3000],
                SimDuration::from_millis(500),
                SimDuration::from_secs(10),
            ),
            session_length: SimDuration::from_secs(10),
            mean_freq: Frequency::from_mhz(1000),
            transitions: 42,
            time_in_state: vec![],
            freq_series: None,
            buffer_series: None,
            frames_decoded: 300,
            segments_downloaded: 5,
            events_processed: 1234,
            peak_temp_c: None,
            background_jobs: 0,
            migrations: 0,
            download_retries: 0,
            download_timeouts: 0,
            corrupt_downloads: 0,
            segments_abandoned: 0,
            frames_skipped: 0,
            frames_pending: 0,
            decode_spikes: 0,
            decode_stalls: 0,
            panic_races: 0,
            frame_cycles: crate::framestats::FrameCycleStats::new(),
            profile: None,
        }
    }

    #[test]
    fn energy_aggregation() {
        let r = report();
        assert!((r.cpu_joules() - 10.0).abs() < 1e-12);
        assert!((r.total_joules() - 15.0).abs() < 1e-12);
        assert!((r.mean_cpu_power() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_and_display_render() {
        let r = report();
        assert!(r.summary().contains("test"));
        let s = r.to_string();
        assert!(s.contains("cpu 10.00 J"));
        assert!(s.contains("midrange"));
    }

    #[test]
    fn mj_per_frame_handles_zero_frames() {
        let r = report();
        assert_eq!(r.mj_per_frame(), 0.0);
    }

    #[test]
    fn approx_bytes_counts_heap_parts() {
        let mut r = report();
        let base = r.approx_bytes();
        assert!(base >= std::mem::size_of::<SessionReport>() as u64);
        r.time_in_state = vec![(Frequency::from_mhz(1000), SimDuration::from_secs(1)); 8];
        assert!(r.approx_bytes() > base);
    }
}
