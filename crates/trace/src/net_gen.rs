//! Synthetic bandwidth-trace generation.
//!
//! Markov-modulated rate processes shaped after public cellular/WiFi
//! throughput traces: a small set of rate states with sticky transitions,
//! lognormal within-state variation, and (for cellular) occasional
//! outages. Each preset is deterministic in the seed.

use eavs_net::bandwidth::BandwidthTrace;
use eavs_sim::rng::SimRng;
use eavs_sim::time::{SimDuration, SimTime};
use std::sync::Arc;

/// Network environment presets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetworkProfile {
    /// Home WiFi: high, stable (40 Mbps ±).
    WifiHome,
    /// LTE while driving: 1–30 Mbps, sticky states, rare outages.
    LteDrive,
    /// HSPA on a tram: 0.3–6 Mbps, frequent dips.
    HspaTram,
}

impl NetworkProfile {
    /// All presets.
    pub const ALL: [NetworkProfile; 3] = [
        NetworkProfile::WifiHome,
        NetworkProfile::LteDrive,
        NetworkProfile::HspaTram,
    ];

    /// Identifier for tables and files.
    pub fn name(self) -> &'static str {
        match self {
            NetworkProfile::WifiHome => "wifi_home",
            NetworkProfile::LteDrive => "lte_drive",
            NetworkProfile::HspaTram => "hspa_tram",
        }
    }

    /// State mean rates in Mbps.
    fn state_means(self) -> &'static [f64] {
        match self {
            NetworkProfile::WifiHome => &[35.0, 45.0, 50.0],
            NetworkProfile::LteDrive => &[1.5, 8.0, 18.0, 30.0],
            NetworkProfile::HspaTram => &[0.4, 1.5, 4.0, 6.0],
        }
    }

    /// Probability of staying in the current state each step.
    fn stickiness(self) -> f64 {
        match self {
            NetworkProfile::WifiHome => 0.95,
            NetworkProfile::LteDrive => 0.85,
            NetworkProfile::HspaTram => 0.75,
        }
    }

    /// Within-state coefficient of variation.
    fn cv(self) -> f64 {
        match self {
            NetworkProfile::WifiHome => 0.08,
            NetworkProfile::LteDrive => 0.25,
            NetworkProfile::HspaTram => 0.35,
        }
    }

    /// Per-step outage probability (rate pinned to near zero).
    fn outage_prob(self) -> f64 {
        match self {
            NetworkProfile::WifiHome => 0.0,
            NetworkProfile::LteDrive => 0.01,
            NetworkProfile::HspaTram => 0.02,
        }
    }

    /// Generates a trace of `duration` with 1-second steps.
    pub fn generate(self, duration: SimDuration, seed: u64) -> BandwidthTrace {
        self.generate_with_step(duration, SimDuration::from_secs(1), seed)
    }

    /// Memoized [`generate`](Self::generate): identical `(profile,
    /// duration, seed)` inputs are generated once per process and shared
    /// as an `Arc`.
    pub fn generate_shared(self, duration: SimDuration, seed: u64) -> Arc<BandwidthTrace> {
        self.generate_with_step_shared(duration, SimDuration::from_secs(1), seed)
    }

    /// Memoized [`generate_with_step`](Self::generate_with_step).
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn generate_with_step_shared(
        self,
        duration: SimDuration,
        step: SimDuration,
        seed: u64,
    ) -> Arc<BandwidthTrace> {
        crate::memo::shared_trace(
            (self.name(), duration.as_nanos(), step.as_nanos(), seed),
            || self.generate_with_step(duration, step, seed),
        )
    }

    /// Generates a trace with an explicit step length.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn generate_with_step(
        self,
        duration: SimDuration,
        step: SimDuration,
        seed: u64,
    ) -> BandwidthTrace {
        assert!(!step.is_zero(), "zero trace step");
        let mut rng = SimRng::new(seed).fork(self.name());
        let means = self.state_means();
        let mut state = means.len() / 2;
        let mut points = Vec::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + duration;
        while t < end {
            if !rng.bernoulli(self.stickiness()) {
                // Move to a uniformly chosen different state (nearest-biased
                // walk: step ±1 with prob 0.7).
                state = if rng.bernoulli(0.7) {
                    if rng.bernoulli(0.5) && state > 0 {
                        state - 1
                    } else {
                        (state + 1).min(means.len() - 1)
                    }
                } else {
                    rng.uniform_u64(0, means.len() as u64) as usize
                };
            }
            let rate_mbps = if rng.bernoulli(self.outage_prob()) {
                0.02 // near-outage, keeps transfers finite
            } else {
                rng.lognormal_mean_cv(means[state], self.cv())
            };
            points.push((t, rate_mbps * 1e6));
            t += step;
        }
        BandwidthTrace::from_points(points)
    }
}

impl std::fmt::Display for NetworkProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = NetworkProfile::LteDrive.generate(SimDuration::from_secs(60), 7);
        let b = NetworkProfile::LteDrive.generate(SimDuration::from_secs(60), 7);
        assert_eq!(a, b);
        let c = NetworkProfile::LteDrive.generate(SimDuration::from_secs(60), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn wifi_faster_and_steadier_than_hspa() {
        let dur = SimDuration::from_secs(300);
        let wifi = NetworkProfile::WifiHome.generate(dur, 1);
        let hspa = NetworkProfile::HspaTram.generate(dur, 1);
        let end = SimTime::ZERO + dur;
        let wifi_mean = wifi.mean_rate(SimTime::ZERO, end);
        let hspa_mean = hspa.mean_rate(SimTime::ZERO, end);
        assert!(wifi_mean > 25e6, "wifi mean {wifi_mean:.2e}");
        assert!(hspa_mean < 8e6, "hspa mean {hspa_mean:.2e}");
        // Relative variation.
        let cv = |tr: &BandwidthTrace| {
            let rates: Vec<f64> = tr.points().iter().map(|&(_, r)| r).collect();
            let mean = rates.iter().sum::<f64>() / rates.len() as f64;
            let var = rates.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / rates.len() as f64;
            var.sqrt() / mean
        };
        assert!(cv(&hspa) > cv(&wifi));
    }

    #[test]
    fn step_count_matches_duration() {
        let tr = NetworkProfile::WifiHome.generate_with_step(
            SimDuration::from_secs(10),
            SimDuration::from_secs(2),
            3,
        );
        assert_eq!(tr.points().len(), 5);
    }

    #[test]
    fn lte_rates_in_plausible_band() {
        let tr = NetworkProfile::LteDrive.generate(SimDuration::from_secs(600), 11);
        for &(_, bps) in tr.points() {
            assert!((0.0..80e6).contains(&bps), "rate {bps:.2e} implausible");
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = NetworkProfile::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 3);
    }
}
