//! Cellular radio power-state accounting.
//!
//! Models the RRC state machines of 3G UMTS (IDLE/FACH/DCH with the T1/T2
//! inactivity timers) and LTE (IDLE/CONNECTED with continuous-reception
//! and DRX tail phases). Given the session's traffic activity intervals,
//! the model computes how long the radio spends in each state and the
//! resulting energy — the "radio" component of whole-device energy in the
//! network experiments (F9).
//!
//! State powers and timer values follow the published measurements the
//! paper's group used (Huang et al. 4G LTE characterization; the TPDS'14
//! web-browsing paper's UMTS numbers).

use eavs_sim::time::{SimDuration, SimTime};

/// A half-open interval of network activity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ActivityInterval {
    /// Transfer start.
    pub start: SimTime,
    /// Transfer end.
    pub end: SimTime,
}

/// Merges possibly-overlapping activity intervals into a sorted disjoint
/// list.
pub fn merge_intervals(mut intervals: Vec<ActivityInterval>) -> Vec<ActivityInterval> {
    intervals.retain(|iv| iv.end > iv.start);
    intervals.sort_by_key(|iv| iv.start);
    let mut merged: Vec<ActivityInterval> = Vec::with_capacity(intervals.len());
    for iv in intervals {
        match merged.last_mut() {
            Some(last) if iv.start <= last.end => {
                last.end = last.end.max(iv.end);
            }
            _ => merged.push(iv),
        }
    }
    merged
}

/// Radio energy/time breakdown.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct RadioReport {
    /// Time actively transferring (high-power state).
    pub active_time: SimDuration,
    /// Time in promotion/tail states attributable to inactivity timers.
    pub tail_time: SimDuration,
    /// Time fully idle.
    pub idle_time: SimDuration,
    /// Total radio energy, joules.
    pub energy_j: f64,
}

/// A radio technology's state machine parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RadioModel {
    /// Power while actively transferring (DCH / CONNECTED-RX), watts.
    pub active_power_w: f64,
    /// Power during the first tail phase (FACH / short-DRX), watts.
    pub tail1_power_w: f64,
    /// Duration of the first tail phase after last activity.
    pub tail1: SimDuration,
    /// Power during the second tail phase (PCH / long-DRX), watts.
    pub tail2_power_w: f64,
    /// Duration of the second tail phase.
    pub tail2: SimDuration,
    /// Idle (camped) power, watts.
    pub idle_power_w: f64,
    /// Energy of an IDLE→ACTIVE promotion, joules.
    pub promotion_energy_j: f64,
    /// Latency of an IDLE→ACTIVE promotion.
    pub promotion_latency: SimDuration,
}

impl RadioModel {
    /// 3G UMTS numbers: DCH ≈ 1.2 W, FACH ≈ 0.6 W with T1 = 4 s demotion
    /// to FACH and T2 = 15 s to IDLE (T-Mobile UMTS as measured in the
    /// group's prior work).
    pub fn umts_3g() -> Self {
        RadioModel {
            active_power_w: 1.2,
            tail1_power_w: 1.2, // DCH tail until T1
            tail1: SimDuration::from_secs(4),
            tail2_power_w: 0.6, // FACH until T2
            tail2: SimDuration::from_secs(15),
            idle_power_w: 0.02,
            promotion_energy_j: 1.8, // ~1.5 s of signaling at ~1.2 W
            promotion_latency: SimDuration::from_millis(1500),
        }
    }

    /// LTE numbers: CONNECTED ≈ 1.1 W, short-DRX tail ≈ 1.0 W for 1 s,
    /// long-DRX ≈ 0.5 W for ~10 s, fast promotion.
    pub fn lte() -> Self {
        RadioModel {
            active_power_w: 1.1,
            tail1_power_w: 1.0,
            tail1: SimDuration::from_secs(1),
            tail2_power_w: 0.5,
            tail2: SimDuration::from_secs(10),
            idle_power_w: 0.015,
            promotion_energy_j: 0.35,
            promotion_latency: SimDuration::from_millis(260),
        }
    }

    /// WiFi with PSM: cheap active power, tiny tail.
    pub fn wifi() -> Self {
        RadioModel {
            active_power_w: 0.7,
            tail1_power_w: 0.25,
            tail1: SimDuration::from_millis(200),
            tail2_power_w: 0.05,
            tail2: SimDuration::from_millis(800),
            idle_power_w: 0.01,
            promotion_energy_j: 0.01,
            promotion_latency: SimDuration::from_millis(10),
        }
    }

    /// Computes the radio report for a session of `session_len` whose
    /// traffic occupied `activity` (merged internally).
    ///
    /// A new promotion is charged whenever activity begins while the radio
    /// has fully demoted to idle (gap since previous activity exceeding
    /// `tail1 + tail2`).
    pub fn account(
        &self,
        activity: Vec<ActivityInterval>,
        session_len: SimDuration,
    ) -> RadioReport {
        let end_of_session = SimTime::ZERO + session_len;
        let merged = merge_intervals(activity);
        let mut report = RadioReport::default();
        let full_tail = self.tail1 + self.tail2;

        let mut promotions = 0u32;
        let mut prev_end: Option<SimTime> = None;
        for iv in &merged {
            let iv_end = iv.end.min(end_of_session);
            let iv_start = iv.start.min(iv_end);
            // Promotion if coming from a fully-demoted radio.
            let promoted = match prev_end {
                None => true,
                Some(pe) => iv_start.saturating_duration_since(pe) > full_tail,
            };
            if promoted {
                promotions += 1;
            }
            report.active_time += iv_end - iv_start;

            // Tail after this interval, truncated by the next activity or
            // session end.
            let next_start = merged
                .iter()
                .map(|n| n.start)
                .find(|&s| s >= iv.end)
                .unwrap_or(SimTime::MAX)
                .min(end_of_session);
            let gap = next_start.saturating_duration_since(iv_end);
            let t1 = gap.min(self.tail1);
            let t2 = gap.saturating_sub(self.tail1).min(self.tail2);
            report.tail_time += t1 + t2;
            report.energy_j +=
                self.tail1_power_w * t1.as_secs_f64() + self.tail2_power_w * t2.as_secs_f64();
            prev_end = Some(iv_end);
        }

        report.energy_j += self.active_power_w * report.active_time.as_secs_f64();
        report.energy_j += self.promotion_energy_j * f64::from(promotions);
        report.idle_time = session_len
            .saturating_sub(report.active_time)
            .saturating_sub(report.tail_time);
        report.energy_j += self.idle_power_w * report.idle_time.as_secs_f64();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64) -> ActivityInterval {
        ActivityInterval {
            start: SimTime::from_secs(s),
            end: SimTime::from_secs(e),
        }
    }

    #[test]
    fn merge_overlaps_and_drops_empties() {
        let merged = merge_intervals(vec![iv(5, 7), iv(0, 2), iv(1, 3), iv(4, 4)]);
        assert_eq!(merged, vec![iv(0, 3), iv(5, 7)]);
    }

    #[test]
    fn single_burst_accounting() {
        let m = RadioModel::umts_3g();
        // 10 s transfer, then 30 s silence: full 4 s DCH-tail + 15 s FACH.
        let r = m.account(vec![iv(0, 10)], SimDuration::from_secs(40));
        assert_eq!(r.active_time, SimDuration::from_secs(10));
        assert_eq!(r.tail_time, SimDuration::from_secs(19));
        assert_eq!(r.idle_time, SimDuration::from_secs(11));
        let expected = 1.2 * 10.0 + 1.2 * 4.0 + 0.6 * 15.0 + 0.02 * 11.0 + 1.8;
        assert!((r.energy_j - expected).abs() < 1e-9, "got {}", r.energy_j);
    }

    #[test]
    fn close_bursts_share_tail_without_new_promotion() {
        let m = RadioModel::lte();
        // Gap of 2 s < tail (11 s): no second promotion; tail truncated.
        let r = m.account(vec![iv(0, 5), iv(7, 10)], SimDuration::from_secs(30));
        assert_eq!(r.active_time, SimDuration::from_secs(8));
        // First tail truncated to 2 s (1 s short-DRX + 1 s long-DRX), second
        // tail full 11 s.
        assert_eq!(r.tail_time, SimDuration::from_secs(13));
        // Promotions: just one.
        let one_promotion = m.promotion_energy_j;
        let energy_lower_bound = 1.1 * 8.0 + one_promotion;
        assert!(r.energy_j > energy_lower_bound);
        let r2 = m.account(vec![iv(0, 5), iv(25, 28)], SimDuration::from_secs(40));
        // Far-apart bursts: two promotions, two full tails.
        assert_eq!(r2.tail_time, SimDuration::from_secs(22));
    }

    #[test]
    fn tail_truncated_by_session_end() {
        let m = RadioModel::lte();
        let r = m.account(vec![iv(0, 5)], SimDuration::from_secs(6));
        assert_eq!(r.tail_time, SimDuration::from_secs(1));
        assert_eq!(r.idle_time, SimDuration::ZERO);
    }

    #[test]
    fn continuous_activity_has_no_tail() {
        let m = RadioModel::umts_3g();
        let r = m.account(vec![iv(0, 20)], SimDuration::from_secs(20));
        assert_eq!(r.active_time, SimDuration::from_secs(20));
        assert_eq!(r.tail_time, SimDuration::ZERO);
        assert_eq!(r.idle_time, SimDuration::ZERO);
    }

    #[test]
    fn no_activity_is_all_idle() {
        let m = RadioModel::wifi();
        let r = m.account(vec![], SimDuration::from_secs(100));
        assert_eq!(r.active_time, SimDuration::ZERO);
        assert_eq!(r.idle_time, SimDuration::from_secs(100));
        assert!((r.energy_j - 0.01 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn wifi_cheaper_than_lte_for_bursty_traffic() {
        let activity = vec![iv(0, 2), iv(20, 22), iv(40, 42)];
        let len = SimDuration::from_secs(60);
        let wifi = RadioModel::wifi().account(activity.clone(), len);
        let lte = RadioModel::lte().account(activity, len);
        assert!(wifi.energy_j < lte.energy_j / 2.0);
    }

    #[test]
    fn times_partition_session() {
        let m = RadioModel::umts_3g();
        let r = m.account(vec![iv(3, 8), iv(30, 31)], SimDuration::from_secs(60));
        let total = r.active_time + r.tail_time + r.idle_time;
        assert_eq!(total, SimDuration::from_secs(60));
    }
}
