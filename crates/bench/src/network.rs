//! F9: variable networks with ABR — CPU + radio energy.

use std::sync::Arc;

use crate::harness::{governor, run_parallel_labeled, run_session, SEED};
use eavs_core::session::StreamingSession;
use eavs_metrics::table::Table;
use eavs_net::abr::BufferBasedAbr;
use eavs_net::radio::RadioModel;
use eavs_sim::time::SimDuration;
use eavs_trace::content::ContentProfile;
use eavs_trace::net_gen::NetworkProfile;
use eavs_video::manifest::Manifest;

fn radio_for(profile: NetworkProfile) -> RadioModel {
    match profile {
        NetworkProfile::WifiHome => RadioModel::wifi(),
        NetworkProfile::LteDrive => RadioModel::lte(),
        NetworkProfile::HspaTram => RadioModel::umts_3g(),
    }
}

/// F9: adaptive streaming over each network preset, interactive vs EAVS,
/// whole-stack energy.
pub fn f9_network_abr() -> Table {
    let duration = SimDuration::from_secs(120);
    let mut t = Table::new(&[
        "network",
        "governor",
        "cpu (J)",
        "radio (J)",
        "total (J)",
        "mean kbps",
        "switches",
        "rebuf",
        "miss %",
    ]);
    t.set_title("F9: ABR streaming over variable networks — 120 s, buffer-based ABR");
    let manifest = Arc::new(Manifest::standard_ladder(duration, 30));
    for profile in NetworkProfile::ALL {
        // One generated trace per network profile, shared by every job
        // (and memoized process-wide across reruns).
        let trace = profile.generate_shared(duration * 3, SEED);
        let reports = run_parallel_labeled(
            ["interactive", "eavs"]
                .iter()
                .map(|&name| {
                    let trace = Arc::clone(&trace);
                    let manifest = Arc::clone(&manifest);
                    let job = move || {
                        run_session(
                            StreamingSession::builder(governor(name))
                                .manifest(manifest)
                                .content(ContentProfile::Film)
                                .network(trace)
                                .radio(radio_for(profile))
                                .abr(Box::new(BufferBasedAbr::standard()))
                                .seed(SEED),
                        )
                    };
                    (format!("f9 {} {name}", profile.name()), job)
                })
                .collect(),
        );
        for r in &reports {
            t.row(&[
                profile.name(),
                &r.governor,
                &format!("{:.2}", r.cpu_joules()),
                &format!("{:.2}", r.radio.energy_j),
                &format!("{:.2}", r.total_joules()),
                &format!("{:.0}", r.qoe.mean_bitrate_kbps),
                &r.qoe.bitrate_switches.to_string(),
                &r.qoe.rebuffer_events.to_string(),
                &format!("{:.3}", r.qoe.deadline_miss_rate() * 100.0),
            ]);
        }
    }
    t
}
