//! HTTP route dispatch: URL space → [`Registry`] calls.
//!
//! | Method & path                        | Meaning                                   |
//! |--------------------------------------|-------------------------------------------|
//! | `GET /healthz`                       | liveness                                  |
//! | `GET /metrics`                       | Prometheus page, `text/plain; version=0.0.4` |
//! | `POST /campaigns`                    | submit a `CampaignSpec` JSON              |
//! | `GET /campaigns`                     | list campaigns                            |
//! | `GET /campaigns/{id}`                | live progress                             |
//! | `GET /campaigns/{id}/result`         | final aggregate (checkpoint/v1 text)      |
//! | `DELETE /campaigns/{id}`             | graceful cancel at a shard boundary       |
//! | `GET /priors`                        | resident fleet prior (`eavs-prior/v1` text) |
//! | `POST /priors`                       | merge an `eavs-prior/v1` document in      |
//! | `POST /claim`                        | worker: claim a shard (204 when idle)     |
//! | `POST /campaigns/{id}/shards/{n}`    | worker: deliver a shard partial           |
//! | `POST /shutdown`                     | stop serving after in-flight work         |
//!
//! Every error body is structured JSON: `{"error": ..., "detail": ...}`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use eavs_fleet::checkpoint;

use crate::http::{Request, Response};
use crate::json::Value;
use crate::registry::{Registry, Submitted, SubmitError};

/// Dispatches one request.
pub fn handle(registry: &Arc<Registry>, stop: &Arc<AtomicBool>, req: Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("GET", ["metrics"]) => Response {
            status: 200,
            content_type: eavs_obs::TEXT_FORMAT.to_owned(),
            body: registry.metrics_page().into_bytes(),
        },
        ("POST", ["campaigns"]) => submit(registry, &req.body),
        ("GET", ["campaigns"]) => Response::json(200, registry.list()),
        ("GET", ["campaigns", id]) => match registry.progress(id) {
            Some(body) => Response::json(200, body),
            None => Response::error(404, "unknown campaign", id),
        },
        ("GET", ["campaigns", id, "result"]) => match registry.result(id) {
            Ok(text) => Response::text(200, text),
            Err((status, detail)) => Response::error(status, "result unavailable", &detail),
        },
        ("DELETE", ["campaigns", id]) => match registry.cancel(id) {
            Some(body) => Response::json(200, body),
            None => Response::error(404, "unknown campaign", id),
        },
        ("GET", ["priors"]) => Response::text(200, registry.prior_text()),
        ("POST", ["priors"]) => {
            let Ok(text) = std::str::from_utf8(&req.body) else {
                return Response::error(400, "bad prior", "request body is not UTF-8");
            };
            match registry.merge_prior(text) {
                Ok((entries, frames)) => Response::json(
                    200,
                    Value::Obj(vec![
                        ("entries".into(), Value::u64(entries as u64)),
                        ("frames".into(), Value::u64(frames)),
                    ])
                    .render(),
                ),
                Err(detail) => Response::error(400, "bad prior", &detail),
            }
        }
        ("POST", ["claim"]) => match registry.claim() {
            Some(claim) => Response::json(
                200,
                format!(
                    "{{\"id\":{},\"shard\":{},\"spec\":{}}}",
                    Value::str(claim.id.as_str()).render(),
                    claim.shard,
                    claim.spec_json,
                ),
            ),
            None => Response {
                status: 204,
                content_type: "application/json".to_owned(),
                body: Vec::new(),
            },
        },
        ("POST", ["campaigns", id, "shards", shard]) => complete(registry, id, shard, &req.body),
        ("POST", ["shutdown"]) => {
            stop.store(true, Ordering::SeqCst);
            Response::json(200, "{\"stopping\":true}".to_owned())
        }
        (_, ["healthz" | "metrics" | "claim" | "shutdown" | "priors"]) | (_, ["campaigns", ..]) => {
            Response::error(405, "method not allowed", &format!("{} {}", req.method, req.path))
        }
        _ => Response::error(404, "no such route", &req.path),
    }
}

fn submit(registry: &Registry, body: &[u8]) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        return Response::error(400, "invalid spec", "request body is not UTF-8");
    };
    match registry.submit(text) {
        Ok(Submitted {
            id,
            resumed,
            shards_done,
            shards_total,
        }) => Response::json(
            200,
            Value::Obj(vec![
                ("id".into(), Value::str(id)),
                ("resumed".into(), Value::Bool(resumed)),
                ("shards_done".into(), Value::u64(shards_done)),
                ("shards_total".into(), Value::u64(shards_total)),
            ])
            .render(),
        ),
        Err(SubmitError::BadSpec(detail)) => Response::error(400, "invalid spec", &detail),
        Err(SubmitError::CheckpointMismatch(detail)) => {
            Response::error(409, "checkpoint mismatch", &detail)
        }
        Err(SubmitError::Io(detail)) => Response::error(500, "state dir failure", &detail),
    }
}

fn complete(registry: &Registry, id: &str, shard: &str, body: &[u8]) -> Response {
    let Ok(shard) = shard.parse::<u64>() else {
        return Response::error(400, "bad shard index", shard);
    };
    let Ok(text) = std::str::from_utf8(body) else {
        return Response::error(400, "bad shard partial", "body is not UTF-8");
    };
    let partial = match checkpoint::decode(text) {
        Ok(partial) => partial,
        Err(detail) => return Response::error(400, "bad shard partial", &detail),
    };
    match registry.complete(id, shard, partial) {
        Ok(shards_done) => Response::json(
            200,
            Value::Obj(vec![("shards_done".into(), Value::u64(shards_done))]).render(),
        ),
        Err((status, detail)) => Response::error(status, "shard rejected", &detail),
    }
}
