//! First-order RC thermal model with proportional throttling.
//!
//! Die temperature follows `C·dT/dt = P − (T − T_amb)/R`; the exact
//! exponential solution is applied per update step so step size does not
//! affect accuracy. A throttle controller maps temperature to a maximum
//! allowed OPP index, mimicking a thermal governor's `cpufreq` cooling
//! device.

use crate::opp::{OppIndex, OppTable};
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::time::SimDuration;

/// RC thermal model of one frequency domain.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ThermalModel {
    temp_c: f64,
    ambient_c: f64,
    /// Thermal resistance, °C per watt.
    r_c_per_w: f64,
    /// Thermal capacitance, joules per °C.
    c_j_per_c: f64,
}

impl ThermalModel {
    /// Creates a model at ambient temperature.
    ///
    /// # Panics
    ///
    /// Panics on non-positive R or C, or non-finite ambient.
    pub fn new(ambient_c: f64, r_c_per_w: f64, c_j_per_c: f64) -> Self {
        assert!(ambient_c.is_finite(), "bad ambient {ambient_c}");
        assert!(r_c_per_w > 0.0, "thermal resistance must be positive");
        assert!(c_j_per_c > 0.0, "thermal capacitance must be positive");
        ThermalModel {
            temp_c: ambient_c,
            ambient_c,
            r_c_per_w,
            c_j_per_c,
        }
    }

    /// A phone-like default: 25 °C ambient, 20 °C/W to ambient through the
    /// chassis, ~6 J/°C effective capacitance (τ = 120 s).
    pub fn phone_default() -> Self {
        ThermalModel::new(25.0, 20.0, 6.0)
    }

    /// Current die temperature in °C.
    pub fn temperature(&self) -> f64 {
        self.temp_c
    }

    /// Current ambient temperature in °C.
    pub fn ambient(&self) -> f64 {
        self.ambient_c
    }

    /// Steps the ambient temperature (fault injection: the phone moves
    /// into sunlight, a hot pocket, a cold room). The die temperature is
    /// untouched; it relaxes toward the new steady state on subsequent
    /// [`ThermalModel::update`] calls.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite ambient.
    pub fn set_ambient(&mut self, ambient_c: f64) {
        assert!(ambient_c.is_finite(), "bad ambient {ambient_c}");
        self.ambient_c = ambient_c;
    }

    /// The steady-state temperature for a sustained power draw.
    pub fn steady_state(&self, power_w: f64) -> f64 {
        self.ambient_c + power_w * self.r_c_per_w
    }

    /// Advances the model by `dt` with constant dissipated power.
    ///
    /// # Panics
    ///
    /// Panics if `power_w` is negative or NaN.
    pub fn update(&mut self, power_w: f64, dt: SimDuration) {
        assert!(power_w.is_finite() && power_w >= 0.0, "bad power {power_w}");
        let target = self.steady_state(power_w);
        let tau = self.r_c_per_w * self.c_j_per_c;
        let alpha = (-dt.as_secs_f64() / tau).exp();
        self.temp_c = target + (self.temp_c - target) * alpha;
    }

    /// Hashes the model parameters and current temperature into `fp` for
    /// session memoization. The live temperature is part of the identity,
    /// so a pre-warmed model fingerprints differently from a cold one.
    pub fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_f64(self.temp_c);
        fp.write_f64(self.ambient_c);
        fp.write_f64(self.r_c_per_w);
        fp.write_f64(self.c_j_per_c);
    }
}

/// Maps temperature to a maximum allowed OPP index with hysteresis.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ThrottleController {
    /// Temperature at which throttling begins.
    pub throttle_start_c: f64,
    /// Temperature at which only the slowest OPP is allowed.
    pub throttle_full_c: f64,
}

impl ThrottleController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics unless `throttle_start_c < throttle_full_c`.
    pub fn new(throttle_start_c: f64, throttle_full_c: f64) -> Self {
        assert!(
            throttle_start_c < throttle_full_c,
            "throttle window inverted"
        );
        ThrottleController {
            throttle_start_c,
            throttle_full_c,
        }
    }

    /// A phone-like default: start trimming at 70 °C, floor at 95 °C.
    pub fn phone_default() -> Self {
        ThrottleController::new(70.0, 95.0)
    }

    /// The maximum allowed OPP index at `temp_c`: the full table below the
    /// start threshold, linearly reduced to index 0 at the full threshold.
    pub fn max_index(&self, temp_c: f64, table: &OppTable) -> OppIndex {
        if temp_c <= self.throttle_start_c {
            return table.max_index();
        }
        if temp_c >= self.throttle_full_c {
            return 0;
        }
        let span = self.throttle_full_c - self.throttle_start_c;
        let frac = (temp_c - self.throttle_start_c) / span;
        let allowed = ((1.0 - frac) * table.max_index() as f64).floor() as usize;
        allowed.min(table.max_index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opp::OppTable;

    #[test]
    fn starts_at_ambient_and_approaches_steady_state() {
        let mut m = ThermalModel::new(25.0, 10.0, 5.0); // tau = 50 s
        assert_eq!(m.temperature(), 25.0);
        assert_eq!(m.steady_state(2.0), 45.0);
        // Long enough to converge.
        m.update(2.0, SimDuration::from_secs(1000));
        assert!((m.temperature() - 45.0).abs() < 1e-6);
    }

    #[test]
    fn ambient_step_shifts_steady_state_not_die_temp() {
        let mut m = ThermalModel::new(25.0, 10.0, 5.0);
        m.update(2.0, SimDuration::from_secs(1000));
        let warm = m.temperature();
        assert_eq!(m.ambient(), 25.0);
        m.set_ambient(45.0);
        assert_eq!(m.ambient(), 45.0);
        // The die does not teleport; only the target moves.
        assert_eq!(m.temperature(), warm);
        assert_eq!(m.steady_state(2.0), 65.0);
        m.update(2.0, SimDuration::from_secs(1000));
        assert!((m.temperature() - 65.0).abs() < 1e-6);
    }

    #[test]
    fn exponential_step_is_step_size_independent() {
        let mut a = ThermalModel::new(25.0, 10.0, 5.0);
        let mut b = a;
        a.update(3.0, SimDuration::from_secs(10));
        for _ in 0..10 {
            b.update(3.0, SimDuration::from_secs(1));
        }
        assert!((a.temperature() - b.temperature()).abs() < 1e-9);
    }

    #[test]
    fn cooling_when_power_drops() {
        let mut m = ThermalModel::new(25.0, 10.0, 5.0);
        m.update(3.0, SimDuration::from_secs(500));
        let hot = m.temperature();
        m.update(0.0, SimDuration::from_secs(500));
        assert!(m.temperature() < hot);
        assert!((m.temperature() - 25.0).abs() < 0.1);
    }

    #[test]
    fn throttle_mapping() {
        let table =
            OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap();
        let ctl = ThrottleController::new(70.0, 90.0);
        assert_eq!(ctl.max_index(25.0, &table), 3);
        assert_eq!(ctl.max_index(70.0, &table), 3);
        assert_eq!(ctl.max_index(80.0, &table), 1); // halfway -> half the range
        assert_eq!(ctl.max_index(95.0, &table), 0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_throttle_window_panics() {
        ThrottleController::new(90.0, 70.0);
    }

    #[test]
    fn phone_defaults_sane() {
        let m = ThermalModel::phone_default();
        assert_eq!(m.temperature(), 25.0);
        // 3 W sustained should exceed the throttle-start temperature.
        assert!(m.steady_state(3.0) > ThrottleController::phone_default().throttle_start_c);
    }
}
