//! Process-wide memoization of generated traces.
//!
//! Generation is deterministic in its inputs: segment `(manifest,
//! content, seed, index, rung)` and bandwidth `(profile, duration, step,
//! seed)` tuples always produce the same bytes. Experiments re-derive the
//! same workloads dozens of times (one per governor per figure), so the
//! generators keep keyed caches here and hand out `Arc`s instead of
//! rebuilding.
//!
//! Builders run *outside* the lock: two threads racing on the same key
//! may both build, but they build identical values, so whichever insert
//! wins is indistinguishable from the other.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use eavs_net::bandwidth::BandwidthTrace;
use eavs_video::segment::Segment;

/// Hit/miss counters of one cache since process start.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build the value.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Memo<K, V> {
    map: Mutex<HashMap<K, Arc<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> Memo<K, V> {
    fn new() -> Self {
        Memo {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> Arc<V> {
        if let Some(v) = self.map.lock().expect("memo poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build());
        Arc::clone(
            self.map
                .lock()
                .expect("memo poisoned")
                .entry(key)
                .or_insert(built),
        )
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Key: (generator identity digest, segment index, rung).
type SegmentKey = (u128, u64, usize);
/// Key: (profile name, duration ns, step ns, seed).
type TraceKey = (&'static str, u64, u64, u64);

fn segments() -> &'static Memo<SegmentKey, Segment> {
    static CACHE: OnceLock<Memo<SegmentKey, Segment>> = OnceLock::new();
    CACHE.get_or_init(Memo::new)
}

fn traces() -> &'static Memo<TraceKey, BandwidthTrace> {
    static CACHE: OnceLock<Memo<TraceKey, BandwidthTrace>> = OnceLock::new();
    CACHE.get_or_init(Memo::new)
}

pub(crate) fn shared_segment(key: SegmentKey, build: impl FnOnce() -> Segment) -> Arc<Segment> {
    segments().get_or_build(key, build)
}

pub(crate) fn shared_trace(
    key: TraceKey,
    build: impl FnOnce() -> BandwidthTrace,
) -> Arc<BandwidthTrace> {
    traces().get_or_build(key, build)
}

/// Counters of the segment cache.
pub fn segment_cache_stats() -> CacheStats {
    segments().stats()
}

/// Counters of the bandwidth-trace cache.
pub fn trace_cache_stats() -> CacheStats {
    traces().stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_returns_same_arc_and_counts() {
        let memo: Memo<u32, String> = Memo::new();
        let a = memo.get_or_build(1, || "one".to_owned());
        let b = memo.get_or_build(1, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = memo.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        let _ = memo.get_or_build(2, || "two".to_owned());
        assert_eq!(memo.stats().misses, 2);
    }

    #[test]
    fn hit_rate_handles_empty_and_counts() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
