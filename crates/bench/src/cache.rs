//! Content-addressed session memoization.
//!
//! Sessions are deterministic: [`SessionBuilder::fingerprint`] digests
//! every input that influences the outcome, so a process-wide map from
//! fingerprint to `Arc<SessionReport>` lets every figure module (and a
//! second `run_all` pass) reuse sessions instead of re-simulating them.
//! Builders whose components carry learned state fingerprint as `None`
//! and always run.
//!
//! The session runs *outside* the lock: two workers racing on the same
//! fingerprint may both simulate, but determinism makes the results
//! identical, so whichever insert wins is indistinguishable.

use eavs_core::report::SessionReport;
use eavs_core::session::SessionBuilder;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Counters of the session cache since process start.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct SessionCacheStats {
    /// Sessions served from the cache.
    pub hits: u64,
    /// Sessions that had to be simulated (and were then cached).
    pub misses: u64,
    /// Sessions that could not be fingerprinted (pre-warmed components)
    /// and ran uncached.
    pub uncacheable: u64,
    /// Approximate resident bytes of the cached reports.
    pub bytes: u64,
}

impl SessionCacheStats {
    /// Fraction of cacheable lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static UNCACHEABLE: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

fn map() -> &'static Mutex<HashMap<u128, Arc<SessionReport>>> {
    static MAP: OnceLock<Mutex<HashMap<u128, Arc<SessionReport>>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(HashMap::new()))
}

/// `true` when `EAVS_EMPTY_FAULTS` is set: every session without a
/// fault plan gets an explicit *empty* [`FaultPlan`] attached. An empty
/// plan must be a perfect no-op, so this mode is CI's proof that the
/// fault-injection wiring leaves every committed figure byte-identical.
fn force_empty_faults() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var_os("EAVS_EMPTY_FAULTS").is_some())
}

/// A shared no-op trace sink attached to every session when
/// `EAVS_NULL_TRACE` is set — the observability mirror of
/// [`force_empty_faults`]. A [`NullSink`](eavs_obs::NullSink) must be a
/// perfect behavioral no-op, so this mode is CI's proof that the
/// tracing wiring leaves every committed figure byte-identical.
fn forced_null_trace() -> Option<eavs_obs::SharedSink> {
    static FORCE: OnceLock<Option<eavs_obs::SharedSink>> = OnceLock::new();
    FORCE
        .get_or_init(|| {
            std::env::var_os("EAVS_NULL_TRACE").map(|_| {
                let sink: eavs_obs::SharedSink = eavs_obs::shared(eavs_obs::NullSink);
                sink
            })
        })
        .clone()
}

/// Runs `builder` through the process-wide session cache: a hit returns
/// the shared report without simulating; a miss simulates, caches and
/// returns it; an unfingerprintable builder runs uncached.
///
/// Builders carrying an observer (trace sink or profiler) always run —
/// a cache hit would skip the observer's side effects. The forced
/// `EAVS_NULL_TRACE` sink is attached *after* that check: it is not a
/// caller observer, and sessions must stay cacheable under it so the CI
/// golden pass exercises the identical hit/miss pattern.
pub fn run_session(builder: SessionBuilder) -> Arc<SessionReport> {
    let builder = if force_empty_faults() && !builder.has_faults() {
        builder.faults(eavs_faults::FaultPlan::default())
    } else {
        builder
    };
    if builder.has_observer() {
        UNCACHEABLE.fetch_add(1, Ordering::Relaxed);
        return Arc::new(builder.run());
    }
    let builder = match forced_null_trace() {
        Some(sink) => builder.trace(sink),
        None => builder,
    };
    run_session_inner(builder)
}

fn run_session_inner(builder: SessionBuilder) -> Arc<SessionReport> {
    let Some(fp) = builder.fingerprint() else {
        UNCACHEABLE.fetch_add(1, Ordering::Relaxed);
        return Arc::new(builder.run());
    };
    if let Some(r) = map().lock().expect("session cache poisoned").get(&fp.0) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(r);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let report = Arc::new(builder.run());
    BYTES.fetch_add(report.approx_bytes(), Ordering::Relaxed);
    Arc::clone(
        map()
            .lock()
            .expect("session cache poisoned")
            .entry(fp.0)
            .or_insert(report),
    )
}

/// Counters of the session cache.
pub fn stats() -> SessionCacheStats {
    SessionCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        uncacheable: UNCACHEABLE.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{eavs_default, governor, manifest_1080p30};
    use eavs_core::session::StreamingSession;

    fn builder() -> SessionBuilder {
        StreamingSession::builder(eavs_default())
            .manifest(manifest_1080p30(4))
            .seed(7)
    }

    #[test]
    fn identical_builders_share_one_report() {
        // A seed no other test uses, so the first run is a genuine miss.
        let mk = || {
            StreamingSession::builder(eavs_default())
                .manifest(manifest_1080p30(4))
                .seed(777)
        };
        let before = stats();
        let a = run_session(mk());
        let b = run_session(mk());
        assert!(Arc::ptr_eq(&a, &b), "second run must be a cache hit");
        let after = stats();
        assert!(after.hits > before.hits);
        assert!(after.bytes > before.bytes);
    }

    #[test]
    fn different_seeds_do_not_collide() {
        let a = run_session(builder());
        let b = run_session(
            StreamingSession::builder(eavs_default())
                .manifest(manifest_1080p30(4))
                .seed(8),
        );
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.cpu_joules(), b.cpu_joules());
    }

    #[test]
    fn cached_report_matches_direct_run() {
        let cached = run_session(builder());
        let direct = builder().run();
        assert_eq!(cached.cpu_joules(), direct.cpu_joules());
        assert_eq!(cached.transitions, direct.transitions);
        assert_eq!(cached.events_processed, direct.events_processed);
    }

    #[test]
    fn observed_builders_bypass_the_cache() {
        use eavs_obs::{shared, RingSink};
        let mk = || {
            StreamingSession::builder(eavs_default())
                .manifest(manifest_1080p30(4))
                .seed(991)
                .trace(shared(RingSink::new(256)))
        };
        let before = stats();
        let a = run_session(mk());
        let b = run_session(mk());
        // Each run must actually simulate (the sink needs its events).
        assert!(!Arc::ptr_eq(&a, &b));
        let after = stats();
        assert!(after.uncacheable >= before.uncacheable + 2);
        // Determinism still holds between the uncached runs.
        assert_eq!(a.cpu_joules(), b.cpu_joules());
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn baseline_governors_are_cacheable() {
        let mk = || {
            StreamingSession::builder(governor("ondemand"))
                .manifest(manifest_1080p30(4))
                .seed(11)
        };
        let a = run_session(mk());
        let b = run_session(mk());
        assert!(Arc::ptr_eq(&a, &b));
    }
}
