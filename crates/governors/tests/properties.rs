//! Property-based tests: every baseline governor, fed arbitrary load
//! sequences, must produce legal indices, respect policy limits, and
//! satisfy its own invariants.

use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::load::LoadSample;
use eavs_cpu::opp::OppTable;
use eavs_governors::governor::CpufreqGovernor;
use eavs_governors::{by_name, Conservative, Ondemand, BASELINE_NAMES};
use eavs_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn table() -> OppTable {
    OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap()
}

fn sample(t_ms: u64, load: f64, cur: usize, tbl: &OppTable) -> LoadSample {
    LoadSample {
        now: SimTime::from_millis(t_ms),
        window: SimDuration::from_millis(10),
        busy_fraction: load,
        cur_freq: tbl.freq(cur),
        cur_index: cur,
    }
}

proptest! {
    /// All governors always return an index inside the policy limits,
    /// for any load sequence and any (possibly narrowed) limits.
    #[test]
    fn outputs_always_within_limits(
        loads in proptest::collection::vec(0.0f64..1.0, 1..100),
        min in 0usize..4,
        span in 0usize..4,
    ) {
        let tbl = table();
        let limits = PolicyLimits {
            min_index: min,
            max_index: (min + span).min(3),
        };
        for name in BASELINE_NAMES {
            let mut g = by_name(name).unwrap();
            let mut cur = limits.min_index;
            for (i, &load) in loads.iter().enumerate() {
                let s = sample(i as u64 * 10, load, cur, &tbl);
                let idx = g.on_sample(&s, &tbl, limits);
                prop_assert!(
                    idx >= limits.min_index && idx <= limits.max_index,
                    "{name} returned {idx} outside [{}, {}]",
                    limits.min_index,
                    limits.max_index
                );
                cur = idx;
            }
        }
    }

    /// ondemand above its up-threshold always jumps straight to max.
    #[test]
    fn ondemand_burst_goes_to_max(cur in 0usize..4, load in 0.96f64..1.0) {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut g = Ondemand::new();
        let idx = g.on_sample(&sample(0, load, cur, &tbl), &tbl, limits);
        prop_assert_eq!(idx, limits.max_index);
    }

    /// conservative never moves more than one OPP step per sample on this
    /// table (5% of max = 100 MHz < the smallest 500 MHz gap).
    #[test]
    fn conservative_is_gradual(loads in proptest::collection::vec(0.0f64..1.0, 1..60)) {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut g = Conservative::new();
        let mut cur = 0usize;
        for (i, &load) in loads.iter().enumerate() {
            let idx = g.on_sample(&sample(i as u64 * 10, load, cur, &tbl), &tbl, limits);
            prop_assert!(
                idx.abs_diff(cur) <= 1,
                "conservative jumped {cur} -> {idx}"
            );
            cur = idx;
        }
    }

    /// A sustained zero-load sequence drives every dynamic governor to the
    /// floor eventually (performance excepted, by design).
    #[test]
    fn idle_converges_to_floor(start in 0usize..4) {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        for name in ["ondemand", "conservative", "interactive", "schedutil"] {
            let mut g = by_name(name).unwrap();
            let mut cur = start;
            for i in 0..200u64 {
                cur = g.on_sample(&sample(i * 20, 0.0, cur, &tbl), &tbl, limits);
            }
            prop_assert_eq!(cur, 0, "{} stuck at {} under zero load", name, cur);
        }
    }

    /// A sustained full-load sequence drives every dynamic governor to the
    /// ceiling eventually (powersave/userspace excepted, by design).
    #[test]
    fn saturation_converges_to_max(start in 0usize..4) {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        for name in ["ondemand", "conservative", "interactive", "schedutil"] {
            let mut g = by_name(name).unwrap();
            let mut cur = start;
            for i in 0..200u64 {
                cur = g.on_sample(&sample(i * 20, 1.0, cur, &tbl), &tbl, limits);
            }
            prop_assert_eq!(cur, 3, "{} stuck at {} under full load", name, cur);
        }
    }
}
