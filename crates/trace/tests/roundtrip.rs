//! Disk round-trip tests for the trace formats, plus property-based
//! fuzzing of the parsers.

use eavs_net::bandwidth::BandwidthTrace;
use eavs_sim::time::{SimDuration, SimTime};
use eavs_trace::content::ContentProfile;
use eavs_trace::format::{
    parse_bandwidth_trace, parse_video_trace, write_bandwidth_trace, write_video_trace,
};
use eavs_trace::net_gen::NetworkProfile;
use eavs_trace::video_gen::VideoGenerator;
use eavs_video::manifest::Manifest;
use eavs_video::segment::Segment;
use proptest::prelude::*;
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("eavs-trace-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn video_trace_survives_disk() {
    let manifest = Manifest::single(3_000, 1280, 720, SimDuration::from_secs(6), 30);
    let gen = VideoGenerator::new(manifest.clone(), ContentProfile::Sport, 77);
    let frames = vec![gen
        .all_segments(0)
        .into_iter()
        .flat_map(Segment::into_frames)
        .collect::<Vec<_>>()];
    let text = write_video_trace(&manifest, &frames);

    let path = scratch("roundtrip.vtrace");
    std::fs::write(&path, &text).expect("write");
    let back = std::fs::read_to_string(&path).expect("read");
    let parsed = parse_video_trace(&back).expect("parse");
    assert_eq!(parsed.manifest, manifest);
    assert_eq!(parsed.frames[0].len(), frames[0].len());
    for (a, b) in parsed.frames[0].iter().zip(&frames[0]) {
        assert_eq!(a.size_bytes, b.size_bytes);
        assert_eq!(a.frame_type, b.frame_type);
    }
}

#[test]
fn bandwidth_trace_survives_disk() {
    let trace = NetworkProfile::LteDrive.generate(SimDuration::from_secs(120), 5);
    let path = scratch("roundtrip.btrace");
    std::fs::write(&path, write_bandwidth_trace(&trace)).expect("write");
    let back = std::fs::read_to_string(&path).expect("read");
    let parsed = parse_bandwidth_trace(&back).expect("parse");
    assert_eq!(parsed.points().len(), trace.points().len());
    for t in [0u64, 30, 60, 119] {
        let at = SimTime::from_secs(t);
        let diff = (parsed.rate_at(at) - trace.rate_at(at)).abs();
        assert!(diff < 1.0, "rate differs at {t}s by {diff}");
    }
}

proptest! {
    /// The parsers never panic on arbitrary input.
    #[test]
    fn parsers_never_panic(text in ".{0,400}") {
        let _ = parse_video_trace(&text);
        let _ = parse_bandwidth_trace(&text);
    }

    /// Generated bandwidth traces always round-trip through text.
    #[test]
    fn bandwidth_roundtrip_any_seed(seed in any::<u64>(), profile in 0u8..3) {
        let profile = NetworkProfile::ALL[profile as usize];
        let trace = profile.generate(SimDuration::from_secs(30), seed);
        let parsed = parse_bandwidth_trace(&write_bandwidth_trace(&trace)).unwrap();
        prop_assert_eq!(parsed.points().len(), trace.points().len());
    }

    /// Hand-built step traces round-trip exactly at change points.
    #[test]
    fn step_trace_roundtrip(steps in proptest::collection::vec((0u64..1000, 0.0f64..1e8), 1..20)) {
        let mut points = Vec::new();
        let mut t = 0u64;
        for (i, &(dt, rate)) in steps.iter().enumerate() {
            t += if i == 0 { 0 } else { dt.max(1) };
            points.push((SimTime::from_secs(t), rate));
        }
        // Dedup equal times (construction requires strictly increasing).
        points.dedup_by_key(|(time, _)| *time);
        let trace = BandwidthTrace::from_points(points);
        let parsed = parse_bandwidth_trace(&write_bandwidth_trace(&trace)).unwrap();
        for (a, b) in parsed.points().iter().zip(trace.points()) {
            prop_assert_eq!(a.0, b.0);
            prop_assert!((a.1 - b.1).abs() < 0.01);
        }
    }
}
