//! What the savings mean in battery life.
//!
//! Translates session energy into hours of continuous 1080p30 playback on
//! a phone-class battery (3000 mAh at a nominal 3.85 V ≈ 41.6 kJ),
//! charging the CPU, the radio and a fixed display+system floor — the
//! bottom-line number a user would care about.
//!
//! ```text
//! cargo run --release --example battery_life
//! ```

use eavs::metrics::table::Table;
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::Hybrid;
use eavs::scaling::session::{GovernorChoice, StreamingSession};
use eavs::sim::time::SimDuration;
use eavs::video::manifest::Manifest;
use eavs_governors::by_name;

/// 3000 mAh × 3.85 V in joules.
const BATTERY_J: f64 = 3.0 * 3.85 * 3600.0;
/// Display + rest-of-system power during video playback, watts.
const SYSTEM_FLOOR_W: f64 = 1.1;

fn main() {
    let mut table = Table::new(&[
        "governor",
        "cpu (W)",
        "radio (W)",
        "system (W)",
        "total (W)",
        "battery life (h)",
        "extra minutes",
    ]);
    table.set_title("Battery life at continuous 1080p30 playback (3000 mAh @ 3.85 V)");

    let mut baseline_hours = None;
    for name in ["performance", "ondemand", "interactive", "eavs"] {
        let gov = if name == "eavs" {
            GovernorChoice::Eavs(EavsGovernor::new(
                Box::new(Hybrid::default()),
                EavsConfig::default(),
            ))
        } else {
            GovernorChoice::Baseline(by_name(name).expect("baseline"))
        };
        let report = StreamingSession::builder(gov)
            .manifest(Manifest::single(
                6_000,
                1920,
                1080,
                SimDuration::from_secs(60),
                30,
            ))
            .seed(42)
            .run();
        let secs = report.session_length.as_secs_f64();
        let cpu_w = report.cpu_joules() / secs;
        let radio_w = report.radio.energy_j / secs;
        let total_w = cpu_w + radio_w + SYSTEM_FLOOR_W;
        let hours = BATTERY_J / total_w / 3600.0;
        let extra = baseline_hours.map_or(0.0, |base: f64| (hours - base) * 60.0);
        if name == "ondemand" {
            baseline_hours = Some(hours);
        }
        let extra_cell = if name == "performance" || name == "ondemand" {
            "-".to_owned()
        } else {
            format!("{extra:+.0}")
        };
        table.row_owned(vec![
            name.to_owned(),
            format!("{cpu_w:.3}"),
            format!("{radio_w:.3}"),
            format!("{SYSTEM_FLOOR_W:.2}"),
            format!("{total_w:.3}"),
            format!("{hours:.2}"),
            extra_cell,
        ]);
    }
    println!("{}", table.render());
    println!("The system floor (display, DRAM, audio) dilutes CPU-only percentages;");
    println!("the extra-minutes column is the number a user would notice.");
}
