//! # eavs-sysfs — simulated Linux cpufreq sysfs interface
//!
//! The deployment surface of the EAVS governor on a real (rooted) Android
//! device is the cpufreq sysfs tree: select the `userspace` governor, then
//! echo kHz values into `scaling_setspeed`. This crate simulates exactly
//! that file protocol over the [`eavs_cpu`] cluster model so the governor
//! code can be exercised through the same interface it would use on
//! hardware (the "sysfs governor doable" path of the reproduction plan).
//!
//! ```
//! use eavs_cpu::soc::SocModel;
//! use eavs_sysfs::CpufreqFs;
//! use eavs_sim::time::SimTime;
//!
//! let mut cluster = SocModel::MidRange.build_cluster();
//! let mut fs = CpufreqFs::new(&cluster);
//! let t = SimTime::ZERO;
//! fs.write(&mut cluster, "scaling_governor", "userspace", t)?;
//! fs.write(&mut cluster, "scaling_setspeed", "800000", t)?;
//! assert_eq!(fs.read(&cluster, "scaling_governor", t)?, "userspace\n");
//! # Ok::<(), eavs_sysfs::SysfsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpufreq;
pub mod error;

pub use cpufreq::{CpufreqFs, AVAILABLE_GOVERNORS};
pub use error::SysfsError;
