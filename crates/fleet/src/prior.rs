//! The fleet-level workload knowledge store.
//!
//! Campaigns fold every session's per-frame-type decode-cost summary
//! ([`FrameCycleStats`]) into a [`PriorStore`] keyed by *(title encode,
//! content profile)*. The store obeys the same bit-exact associativity
//! contract as `GovAggregate` — fixed-point sums and integer histogram
//! bins merge order-free — so the trained prior is byte-identical across
//! shard orderings and `EAVS_JOBS` settings.
//!
//! A store persists standalone in the versioned `eavs-prior/v1` line
//! format (same exact-roundtrip conventions as the campaign checkpoint:
//! floats as hex bit patterns, sums as raw fixed-point integers) and also
//! rides inside `eavs-fleet-checkpoint/v1`, so a killed campaign resumes
//! its knowledge along with its aggregates.
//!
//! [`PriorStore::session_prior`] projects the population posterior for
//! one key into the [`SessionPrior`] a session seeds its predictor with:
//! per frame type, the population mean cost plus a capped pseudo-count
//! evidence weight.

use std::collections::BTreeMap;
use std::path::Path;

use eavs_core::framestats::FrameCycleStats;
use eavs_core::predictor::SessionPrior;
use eavs_video::frame::FrameType;

use crate::checkpoint::{push_hist, push_sum, Lines};

/// Format magic + version line of the standalone prior file.
pub const PRIOR_MAGIC: &str = "eavs-prior/v1";

/// Evidence-weight cap for [`PriorStore::session_prior`]: the prior acts
/// like at most this many local observations, so population knowledge
/// accelerates cold start without drowning out per-session evidence.
pub const PRIOR_WEIGHT_CAP: f64 = 8.0;

/// Mergeable per-(title, content) decode-cost knowledge.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PriorStore {
    /// `(title_key, content_name)` → summary. A `BTreeMap` so encoding
    /// order (and thus the persisted bytes) is canonical regardless of
    /// observation order.
    entries: BTreeMap<(String, String), FrameCycleStats>,
}

impl PriorStore {
    /// An empty store.
    pub fn new() -> Self {
        PriorStore::default()
    }

    /// Folds one session's frame statistics into the key's summary.
    pub fn observe(&mut self, title_key: &str, content: &str, stats: &FrameCycleStats) {
        if stats.is_empty() {
            return;
        }
        self.entries
            .entry((title_key.to_owned(), content.to_owned()))
            .or_default()
            .merge(stats);
    }

    /// Merges another store in. Order-free per key.
    pub fn merge(&mut self, other: &PriorStore) {
        for ((title, content), stats) in &other.entries {
            self.entries
                .entry((title.clone(), content.clone()))
                .or_default()
                .merge(stats);
        }
    }

    /// Number of (title, content) keys with evidence.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no key carries evidence.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total frames observed across all keys.
    pub fn total_frames(&self) -> u64 {
        self.entries.values().map(FrameCycleStats::total_frames).sum()
    }

    /// The keys and summaries, in canonical (sorted) order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str, &FrameCycleStats)> {
        self.entries
            .iter()
            .map(|((t, c), s)| (t.as_str(), c.as_str(), s))
    }

    /// The summary for one key, if any evidence exists.
    pub fn get(&self, title_key: &str, content: &str) -> Option<&FrameCycleStats> {
        self.entries
            .get(&(title_key.to_owned(), content.to_owned()))
    }

    /// Projects the population posterior for one key into the prior a
    /// session seeds its predictor with: per frame type, the population
    /// mean cost in cycles and an evidence weight of
    /// `min(count, PRIOR_WEIGHT_CAP)`. Unknown keys yield the empty
    /// prior (≡ no prior at all).
    pub fn session_prior(&self, title_key: &str, content: &str) -> SessionPrior {
        let Some(stats) = self.get(title_key, content) else {
            return SessionPrior::default();
        };
        let mut prior = SessionPrior::default();
        for t in FrameType::ALL {
            if let Some(mean_mc) = stats.mean_mcycles(t) {
                let weight = (stats.count(t) as f64).min(PRIOR_WEIGHT_CAP);
                prior.types[t.index()] = Some((mean_mc * 1e6, weight));
            }
        }
        prior
    }

    /// Approximate heap footprint in bytes. Grows with the *catalog*
    /// (distinct title × content keys), never with session count.
    pub fn approx_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|((t, c), s)| {
                (t.len()
                    + c.len()
                    + std::mem::size_of_val(s)
                    + FrameCycleStats::approx_heap_bytes()) as u64
            })
            .sum()
    }
}

/// Appends the store's body lines (`prior N` + entries) to `out` — the
/// shared section format of the standalone file and the campaign
/// checkpoint.
pub(crate) fn encode_body(out: &mut String, store: &PriorStore) {
    out.push_str(&format!("prior {}\n", store.entries.len()));
    for ((title, content), stats) in &store.entries {
        out.push_str(&format!("key {title} {content}\n"));
        for t in 0..3 {
            push_sum(out, &format!("mc{t}"), &stats.mcycles[t]);
            push_sum(out, &format!("mcsq{t}"), &stats.mcycles_sq[t]);
            push_hist(out, &format!("hist{t}"), &stats.hist[t]);
        }
    }
}

/// Decodes the store's body after its `prior N` header line was consumed.
pub(crate) fn decode_body(lines: &mut Lines<'_>, entries: usize) -> Result<PriorStore, String> {
    let mut store = PriorStore::new();
    for _ in 0..entries {
        let key = lines.field("key")?;
        let (title, content) = key
            .split_once(' ')
            .ok_or(format!("prior: bad key line {key:?}"))?;
        let mut stats = FrameCycleStats::new();
        for t in 0..3 {
            stats.mcycles[t] = lines.sum(&format!("mc{t}"))?;
            stats.mcycles_sq[t] = lines.sum(&format!("mcsq{t}"))?;
            stats.hist[t] = lines.hist(&format!("hist{t}"))?;
        }
        if store
            .entries
            .insert((title.to_owned(), content.to_owned()), stats)
            .is_some()
        {
            return Err(format!("prior: duplicate key {title:?} {content:?}"));
        }
    }
    Ok(store)
}

/// Encodes a store as standalone `eavs-prior/v1` text.
pub fn encode(store: &PriorStore) -> String {
    let mut out = String::new();
    out.push_str(PRIOR_MAGIC);
    out.push('\n');
    encode_body(&mut out, store);
    out.push_str("end\n");
    out
}

/// Decodes standalone `eavs-prior/v1` text.
///
/// # Errors
///
/// Returns a message on version mismatch, truncation or malformed values.
pub fn decode(text: &str) -> Result<PriorStore, String> {
    let mut lines = Lines::new(text);
    let magic = lines.next()?;
    if magic != PRIOR_MAGIC {
        return Err(format!(
            "unsupported prior format {magic:?} (want {PRIOR_MAGIC:?})"
        ));
    }
    let entries: usize = lines.parse("prior")?;
    let store = decode_body(&mut lines, entries)?;
    lines.field("end")?;
    Ok(store)
}

/// Writes a prior file atomically (temp file + rename).
///
/// # Errors
///
/// Returns a message on I/O failure.
pub fn save(path: &Path, store: &PriorStore) -> Result<(), String> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, encode(store)).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot rename {} to {}: {e}", tmp.display(), path.display()))
}

/// Loads a prior file.
///
/// # Errors
///
/// Returns a message on I/O failure or a corrupt/incompatible file.
pub fn load(path: &Path) -> Result<PriorStore, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read prior {}: {e}", path.display()))?;
    decode(&text).map_err(|e| format!("corrupt prior {} ({e})", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eavs_cpu::freq::Cycles;

    fn stats(base_mc: f64, frames: u64) -> FrameCycleStats {
        let mut s = FrameCycleStats::new();
        for i in 0..frames {
            let t = FrameType::ALL[(i % 3) as usize];
            s.observe(t, Cycles::from_mega(base_mc + (i % 7) as f64));
        }
        s
    }

    fn populated() -> PriorStore {
        let mut store = PriorStore::new();
        store.observe("6000kbps-1920x1080@30", "film", &stats(20.0, 90));
        store.observe("6000kbps-1920x1080@30", "sport", &stats(26.0, 45));
        store.observe("3000kbps-1280x720@30", "film", &stats(9.0, 60));
        store
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let store = populated();
        let decoded = decode(&encode(&store)).unwrap();
        assert_eq!(decoded, store);
        assert_eq!(encode(&decoded), encode(&store));
        // Empty stores roundtrip too.
        let empty = PriorStore::new();
        assert_eq!(decode(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn encoding_is_canonical_across_observation_order() {
        let a = populated();
        let mut b = PriorStore::new();
        b.observe("3000kbps-1280x720@30", "film", &stats(9.0, 60));
        b.observe("6000kbps-1920x1080@30", "sport", &stats(26.0, 45));
        b.observe("6000kbps-1920x1080@30", "film", &stats(20.0, 90));
        assert_eq!(encode(&a), encode(&b));
    }

    #[test]
    fn session_prior_projects_means_and_caps_weight() {
        let store = populated();
        let prior = store.session_prior("6000kbps-1920x1080@30", "film");
        assert!(!prior.is_empty());
        let entry = store.get("6000kbps-1920x1080@30", "film").unwrap();
        for t in FrameType::ALL {
            let (mean, weight) = prior.types[t.index()].unwrap();
            assert_eq!(mean, entry.mean_mcycles(t).unwrap() * 1e6);
            assert_eq!(weight, PRIOR_WEIGHT_CAP);
        }
        // Unknown keys yield the empty prior.
        assert!(store.session_prior("8000kbps-3840x2160@60", "film").is_empty());
        // Sparse evidence keeps its true count as the weight.
        let mut sparse = PriorStore::new();
        let mut s = FrameCycleStats::new();
        s.observe(FrameType::I, Cycles::from_mega(40.0));
        sparse.observe("t", "c", &s);
        let p = sparse.session_prior("t", "c");
        assert_eq!(p.types[FrameType::I.index()], Some((40.0 * 1e6, 1.0)));
        assert_eq!(p.types[FrameType::P.index()], None);
    }

    #[test]
    fn merge_matches_sequential_fold() {
        let mut whole = PriorStore::new();
        whole.observe("t1", "film", &stats(20.0, 30));
        whole.observe("t1", "film", &stats(22.0, 30));
        whole.observe("t2", "sport", &stats(8.0, 15));

        let mut a = PriorStore::new();
        a.observe("t1", "film", &stats(20.0, 30));
        let mut b = PriorStore::new();
        b.observe("t1", "film", &stats(22.0, 30));
        b.observe("t2", "sport", &stats(8.0, 15));
        // Reverse merge order: must be bit-identical.
        let mut folded = PriorStore::new();
        folded.merge(&b);
        folded.merge(&a);
        assert_eq!(folded, whole);
        assert_eq!(encode(&folded), encode(&whole));
    }

    #[test]
    fn save_load_roundtrips() {
        let store = populated();
        let dir = std::env::temp_dir().join(format!("eavs-prior-{}", std::process::id()));
        let path = dir.join("store.prior");
        save(&path, &store).unwrap();
        assert_eq!(load(&path).unwrap(), store);
        assert!(load(&dir.join("absent.prior")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_priors_are_rejected() {
        assert!(decode("not a prior").unwrap_err().contains("unsupported"));
        let text = encode(&populated());
        let cut = &text[..text.len() / 2];
        assert!(decode(cut).is_err());
        let bad = text.replace("prior 3", "prior banana");
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn footprint_grows_with_catalog_not_sessions() {
        let mut store = PriorStore::new();
        store.observe("t1", "film", &stats(20.0, 30));
        let after_one_key = store.approx_bytes();
        store.observe("t1", "film", &stats(20.0, 3_000));
        assert_eq!(store.approx_bytes(), after_one_key, "same key, same bytes");
        store.observe("t2", "film", &stats(20.0, 30));
        assert!(store.approx_bytes() > after_one_key, "new key grows it");
    }
}
