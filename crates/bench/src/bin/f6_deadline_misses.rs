//! Regenerates experiment `f6_deadline_misses` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f6_deadline_misses")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
