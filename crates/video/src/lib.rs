//! # eavs-video — video pipeline model
//!
//! The player-side substrate of the EAVS reproduction: coded frames with
//! per-type decode costs, GOP structure, DASH-style manifests/segments, the
//! decode pipeline with a bounded output queue, the vsync-driven playback
//! state machine, and QoE accounting.
//!
//! Media time is frame-based (see [`manifest`]) so rounded per-frame
//! durations never drift against segment boundaries.
//!
//! * [`frame`] — [`Frame`], [`FrameType`] with hidden ground-truth cycles.
//! * [`gop`] — I/P/B patterns ([`GopStructure`]).
//! * [`manifest`] — ladders and stream metadata ([`Manifest`]).
//! * [`segment`] — the download unit ([`Segment`]).
//! * [`pipeline`] — decode staging ([`DecodePipeline`]).
//! * [`display`] — vsync outcomes, rebuffering ([`Playback`]).
//! * [`qoe`] — aggregated metrics ([`QoeReport`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod display;
pub mod frame;
pub mod gop;
pub mod manifest;
pub mod pipeline;
pub mod qoe;
pub mod segment;

pub use display::{Playback, PlaybackPhase, VsyncOutcome};
pub use frame::{Frame, FrameType};
pub use gop::GopStructure;
pub use manifest::{Manifest, Representation};
pub use pipeline::DecodePipeline;
pub use qoe::QoeReport;
pub use segment::Segment;
