//! Property-based tests for the network substrate.

use eavs_net::bandwidth::BandwidthTrace;
use eavs_net::radio::{merge_intervals, ActivityInterval, RadioModel};
use eavs_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn trace_from(steps: &[(u64, f64)]) -> BandwidthTrace {
    let mut points = vec![(SimTime::ZERO, steps.first().map_or(1e6, |&(_, r)| r))];
    let mut t = 0;
    for &(dt, rate) in steps {
        t += dt;
        points.push((SimTime::from_secs(t), rate));
    }
    BandwidthTrace::from_points(points)
}

proptest! {
    /// completion_time is the inverse of bytes_between: transferring
    /// exactly the bytes available over a window completes at (or within
    /// a microsecond of) the window's end.
    #[test]
    fn completion_inverts_integral(
        steps in proptest::collection::vec((1u64..20, 0.5f64..50.0), 1..10),
        start in 0u64..30,
        span in 1u64..60,
    ) {
        let tr = trace_from(&steps.iter().map(|&(dt, mbps)| (dt, mbps * 1e6)).collect::<Vec<_>>());
        let from = SimTime::from_secs(start);
        let to = SimTime::from_secs(start + span);
        let bytes = tr.bytes_between(from, to);
        prop_assume!(bytes > 1.0);
        let done = tr.completion_time(from, bytes).expect("positive rates");
        let diff = if done > to { done - to } else { to - done };
        prop_assert!(
            diff <= SimDuration::from_micros(10),
            "done {done} vs window end {to}"
        );
    }

    /// bytes_between is additive over adjacent windows.
    #[test]
    fn integral_additive(
        steps in proptest::collection::vec((1u64..20, 0.0f64..50.0), 1..10),
        a in 0u64..40,
        b in 0u64..40,
        c in 0u64..40,
    ) {
        let tr = trace_from(&steps.iter().map(|&(dt, mbps)| (dt, mbps * 1e6)).collect::<Vec<_>>());
        let mut cuts = [a, a + b, a + b + c];
        cuts.sort_unstable();
        let (t0, t1, t2) = (
            SimTime::from_secs(cuts[0]),
            SimTime::from_secs(cuts[1]),
            SimTime::from_secs(cuts[2]),
        );
        let whole = tr.bytes_between(t0, t2);
        let parts = tr.bytes_between(t0, t1) + tr.bytes_between(t1, t2);
        prop_assert!((whole - parts).abs() < 1e-6 * (1.0 + whole));
    }

    /// merge_intervals yields sorted, disjoint intervals covering exactly
    /// the union.
    #[test]
    fn merge_produces_disjoint_cover(
        intervals in proptest::collection::vec((0u64..100, 0u64..20), 0..30),
    ) {
        let input: Vec<ActivityInterval> = intervals
            .iter()
            .map(|&(s, len)| ActivityInterval {
                start: SimTime::from_secs(s),
                end: SimTime::from_secs(s + len),
            })
            .collect();
        let merged = merge_intervals(input.clone());
        // Sorted and disjoint (strictly separated).
        for w in merged.windows(2) {
            prop_assert!(w[0].end < w[1].start);
        }
        // Same union: check per-second membership.
        for sec in 0..130u64 {
            let t = SimTime::from_secs(sec);
            let in_input = input
                .iter()
                .any(|iv| iv.start <= t && t < iv.end);
            let in_merged = merged
                .iter()
                .any(|iv| iv.start <= t && t < iv.end);
            prop_assert_eq!(in_input, in_merged, "coverage differs at {}s", sec);
        }
    }

    /// Radio accounting always partitions the session and yields finite,
    /// non-negative energy, for any radio model and activity set.
    #[test]
    fn radio_partitions_session(
        intervals in proptest::collection::vec((0u64..200, 1u64..30), 0..20),
        session_extra in 0u64..100,
        model_pick in 0u8..3,
    ) {
        let model = match model_pick {
            0 => RadioModel::umts_3g(),
            1 => RadioModel::lte(),
            _ => RadioModel::wifi(),
        };
        let activity: Vec<ActivityInterval> = intervals
            .iter()
            .map(|&(s, len)| ActivityInterval {
                start: SimTime::from_secs(s),
                end: SimTime::from_secs(s + len),
            })
            .collect();
        let latest_end = activity.iter().map(|iv| iv.end.as_nanos()).max().unwrap_or(0);
        let session = SimDuration::from_nanos(latest_end) + SimDuration::from_secs(session_extra);
        prop_assume!(!session.is_zero());
        let report = model.account(activity, session);
        prop_assert_eq!(
            report.active_time + report.tail_time + report.idle_time,
            session
        );
        prop_assert!(report.energy_j.is_finite() && report.energy_j >= 0.0);
        // Energy at least idle-floor, at most all-active + promotions.
        let floor = model.idle_power_w * session.as_secs_f64();
        prop_assert!(report.energy_j >= floor - 1e-9);
    }

    /// More activity never reduces radio energy (monotonicity).
    #[test]
    fn radio_energy_monotone_in_activity(
        base in proptest::collection::vec((0u64..100, 1u64..10), 0..10),
        extra_start in 0u64..100,
        extra_len in 1u64..10,
    ) {
        let to_iv = |&(s, len): &(u64, u64)| ActivityInterval {
            start: SimTime::from_secs(s),
            end: SimTime::from_secs(s + len),
        };
        let model = RadioModel::lte();
        let session = SimDuration::from_secs(250);
        let a: Vec<_> = base.iter().map(to_iv).collect();
        let mut b = a.clone();
        b.push(ActivityInterval {
            start: SimTime::from_secs(extra_start),
            end: SimTime::from_secs(extra_start + extra_len),
        });
        let ra = model.account(a, session);
        let rb = model.account(b, session);
        prop_assert!(rb.energy_j >= ra.energy_j - 1e-9);
    }
}
