//! Shared workload for the governor dispatch micro-benchmarks.
//!
//! Three code paths make one baseline-governor decision per lane per
//! step, over identical deterministic load streams:
//!
//! * **dyn**  — `Box<dyn CpufreqGovernor>::on_sample`, the extension
//!   escape hatch: an indirect call per lane plus a linear `OppTable`
//!   scan per decision.
//! * **enum** — [`GovernorKind::decide`] over a cached [`DecisionLut`]:
//!   static dispatch through one predictable `match`, selection over the
//!   precomputed frequency column.
//! * **lut**  — [`DecisionLut::lookup_many`] over a contiguous target
//!   column, the struct-of-arrays form the batch runner feeds one
//!   governor group at a time. This is the selection primitive alone
//!   (targets are precomputed), so it bounds the other two from below.
//!
//! The same lane state and stream drive both the `governor_dispatch`
//! criterion bench and the `governor_dispatch` object in
//! `BENCH_sim.json`, so the two reports measure the same thing.

use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::load::LoadSample;
use eavs_cpu::opp::{OppIndex, OppTable};
use eavs_cpu::soc::SocModel;
use eavs_governors::{by_name, CpufreqGovernor, DecisionLut, GovernorKind, BASELINE_NAMES};
use eavs_sim::time::{SimDuration, SimTime};

/// Lane widths the dispatch comparison is run at.
pub const WIDTHS: [usize; 3] = [1, 8, 64];

/// One width's worth of dispatch lanes: the same governor sequence held
/// three ways, stepped over the same deterministic load stream.
pub struct DispatchLanes {
    table: OppTable,
    limits: PolicyLimits,
    lut: DecisionLut,
    dyn_lanes: Vec<(Box<dyn CpufreqGovernor>, OppIndex)>,
    enum_lanes: Vec<(GovernorKind, OppIndex)>,
    targets: Vec<f64>,
    out: Vec<OppIndex>,
    step: u64,
}

impl DispatchLanes {
    /// Builds `width` lanes cycling through every baseline governor.
    pub fn new(width: usize) -> Self {
        let table = SocModel::Flagship2016.opp_table();
        let limits = PolicyLimits::full(&table);
        let lut = DecisionLut::build(&table, limits);
        let start = limits.min_index;
        let dyn_lanes = (0..width)
            .map(|i| {
                let name = BASELINE_NAMES[i % BASELINE_NAMES.len()];
                (by_name(name).expect("baseline exists"), start)
            })
            .collect();
        let enum_lanes = (0..width)
            .map(|i| {
                let name = BASELINE_NAMES[i % BASELINE_NAMES.len()];
                (GovernorKind::by_name(name).expect("baseline exists"), start)
            })
            .collect();
        DispatchLanes {
            table,
            limits,
            lut,
            dyn_lanes,
            enum_lanes,
            targets: vec![0.0; width],
            out: vec![0; width],
            step: 0,
        }
    }

    /// The deterministic load stream: lane `i` at step `t`.
    fn sample(&self, t: u64, lane: usize, cur_index: OppIndex) -> LoadSample {
        let busy = ((t * 37 + lane as u64 * 13) % 101) as f64 / 100.0;
        LoadSample {
            now: SimTime::from_millis(t * 10),
            window: SimDuration::from_millis(10),
            busy_fraction: busy,
            cur_freq: self.table.freq(cur_index),
            cur_index,
        }
    }

    /// One decision per lane through the trait objects. Returns the sum
    /// of chosen indices (for `black_box`).
    pub fn step_dyn(&mut self) -> usize {
        let t = self.step;
        self.step += 1;
        let mut sum = 0;
        for lane in 0..self.dyn_lanes.len() {
            let s = self.sample(t, lane, self.dyn_lanes[lane].1);
            let (g, cur) = &mut self.dyn_lanes[lane];
            let idx = g.on_sample(&s, &self.table, self.limits);
            *cur = idx;
            sum += idx;
        }
        sum
    }

    /// One decision per lane through the enum kernel and the cached LUT.
    pub fn step_enum(&mut self) -> usize {
        let t = self.step;
        self.step += 1;
        let mut sum = 0;
        for lane in 0..self.enum_lanes.len() {
            let s = self.sample(t, lane, self.enum_lanes[lane].1);
            let (g, cur) = &mut self.enum_lanes[lane];
            let idx = g.decide(&s, &self.lut);
            *cur = idx;
            sum += idx;
        }
        sum
    }

    /// One frequency selection per lane over the contiguous target
    /// column — the vectorized batch-runner primitive.
    pub fn step_lut(&mut self) -> usize {
        let t = self.step;
        self.step += 1;
        let hw_max = self.lut.hw_max_khz();
        for (lane, target) in self.targets.iter_mut().enumerate() {
            let busy = ((t * 37 + lane as u64 * 13) % 101) as f64 / 100.0;
            *target = busy * hw_max;
        }
        self.lut.lookup_many(&self.targets, &mut self.out);
        self.out.iter().sum()
    }

    /// Lane count.
    pub fn width(&self) -> usize {
        self.out.len()
    }
}

/// Best-of-`reps` nanoseconds per decision for (dyn, enum, lut) at one
/// width, timing `steps` sweeps per rep. Used by `bench_report` to fold
/// the dispatch comparison into `BENCH_sim.json`; the criterion bench
/// measures the same [`DispatchLanes`] steps with its own loop.
pub fn measure_ns_per_decision(width: usize, steps: u64, reps: u32) -> (f64, f64, f64) {
    let mut lanes = DispatchLanes::new(width);
    let decisions = (steps * width as u64) as f64;
    let mut time = |f: &mut dyn FnMut(&mut DispatchLanes) -> usize| {
        // Warm-up sweep, then best-of-reps timed sweeps.
        for _ in 0..steps / 4 {
            std::hint::black_box(f(&mut lanes));
        }
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let started = std::time::Instant::now();
            for _ in 0..steps {
                std::hint::black_box(f(&mut lanes));
            }
            best = best.min(started.elapsed().as_nanos() as f64 / decisions);
        }
        best
    };
    let dyn_ns = time(&mut |l| l.step_dyn());
    let enum_ns = time(&mut |l| l.step_enum());
    let lut_ns = time(&mut |l| l.step_lut());
    (dyn_ns, enum_ns, lut_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The dyn and enum lanes must agree decision-for-decision — the
    /// bench compares dispatch cost, not different answers.
    #[test]
    fn dyn_and_enum_streams_agree() {
        for width in WIDTHS {
            let mut lanes = DispatchLanes::new(width);
            for _ in 0..100 {
                let t = lanes.step;
                let a = lanes.step_dyn();
                lanes.step = t; // rewind so both paths see the same stream
                let b = lanes.step_enum();
                assert_eq!(a, b, "width {width} diverged at step {t}");
            }
        }
    }
}
