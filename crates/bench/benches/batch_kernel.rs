//! Batched SoA kernel throughput: the same 16-session workload pushed
//! through [`eavs_core::run_batch`] at widths 1 / 8 / 64, against the
//! scalar `builder.run()` loop as the baseline. Width 1 isolates the
//! kernel + scratch overhead; wider lanes show how much the arena
//! recycling and lock-step stepping buy.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use eavs_bench::harness::{governor, single_manifest, SEED};
use eavs_core::session::{SessionBuilder, StreamingSession};
use eavs_trace::content::ContentProfile;

const SESSIONS: u64 = 16;

fn builders() -> Vec<SessionBuilder> {
    let manifest = std::sync::Arc::new(single_manifest(3_000, 1280, 720, 10, 30));
    (0..SESSIONS)
        .map(|i| {
            StreamingSession::builder(governor("eavs"))
                .manifest(std::sync::Arc::clone(&manifest))
                .content(ContentProfile::Film)
                .seed(SEED + i)
        })
        .collect()
}

fn bench_batch_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_kernel_16x10s_720p30");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SESSIONS));

    group.bench_function("scalar", |b| {
        b.iter(|| {
            let joules: f64 = builders().into_iter().map(|b| b.run().cpu_joules()).sum();
            black_box(joules)
        })
    });
    for width in [1usize, 8, 64] {
        group.bench_function(&format!("width_{width}"), |b| {
            b.iter(|| {
                let reports = eavs_core::run_batch(builders(), width);
                black_box(reports.iter().map(|r| r.cpu_joules()).sum::<f64>())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_kernel);
criterion_main!(benches);
