//! Mergeable streaming aggregates for campaign populations.
//!
//! Every field is one of: a `u64` counter, a fixed-point
//! [`ExactSum`], a [`Histogram`] of integer bin counts, or an f64
//! min/max. All four merge bit-exactly associatively and commutatively,
//! which is the determinism backbone of the fleet: per-shard partials
//! fold to the identical final aggregate for any `EAVS_JOBS` setting,
//! shard interleaving or kill/resume split. (Welford-style
//! [`eavs_metrics::stats::OnlineStats`] is deliberately *not* used here —
//! its float merge depends on grouping.)

use eavs_core::report::SessionReport;
use eavs_metrics::histogram::Histogram;
use eavs_metrics::stats::ExactSum;
use eavs_metrics::table::Table;

use crate::spec::CampaignSpec;

/// Population statistics for one governor lane.
#[derive(Clone, Debug, PartialEq)]
pub struct GovAggregate {
    /// Governor name (the spec's label, e.g. `eavs` or `ondemand`).
    pub name: String,
    /// Sessions folded in.
    pub sessions: u64,
    /// CPU energy distribution, joules.
    pub cpu_j: Histogram,
    /// CPU energy sum, joules.
    pub cpu_j_sum: ExactSum,
    /// Smallest session CPU energy (+∞ when empty).
    pub cpu_j_min: f64,
    /// Largest session CPU energy (−∞ when empty).
    pub cpu_j_max: f64,
    /// Radio energy sum, joules.
    pub radio_j_sum: ExactSum,
    /// Whole-device RRC radio energy sum, joules (zero under the no-op
    /// power model).
    pub device_radio_j_sum: ExactSum,
    /// Whole-device display energy sum, joules.
    pub device_display_j_sum: ExactSum,
    /// Whole-device decoder energy sum, joules.
    pub device_decoder_j_sum: ExactSum,
    /// RRC promotions across the population.
    pub radio_promotions: u64,
    /// Composite QoE score distribution.
    pub qoe: Histogram,
    /// Composite QoE score sum.
    pub qoe_sum: ExactSum,
    /// Startup delay distribution, milliseconds.
    pub startup_ms: Histogram,
    /// Startup delay sum, milliseconds.
    pub startup_ms_sum: ExactSum,
    /// Rebuffer events across the population.
    pub rebuffer_events: u64,
    /// Rebuffer time sum, seconds.
    pub rebuffer_secs: ExactSum,
    /// Vsync deadlines missed because decode was late.
    pub late_vsyncs: u64,
    /// Frames dropped by the late policy.
    pub frames_dropped: u64,
    /// Frames displayed on time.
    pub frames_displayed: u64,
    /// Total frames offered.
    pub total_frames: u64,
    /// Frequency transitions across the population.
    pub transitions: u64,
    /// Sum of per-session time-weighted mean frequencies, MHz.
    pub mean_freq_mhz_sum: ExactSum,
    /// Sum of per-session mean delivered bitrates, kbps.
    pub bitrate_kbps_sum: ExactSum,
    /// Sum of wall-clock session lengths, seconds.
    pub session_secs: ExactSum,
    /// Sessions with perfect playback (no misses, no rebuffering).
    pub perfect_sessions: u64,
    /// EAVS panic re-races across the population.
    pub panic_races: u64,
    /// Download retries across the population.
    pub download_retries: u64,
}

fn hist(shape: (f64, f64, usize)) -> Histogram {
    Histogram::new(shape.0, shape.1, shape.2)
}

impl GovAggregate {
    /// An empty lane for `name`, with the spec's histogram shapes.
    pub fn new(name: &str, spec: &CampaignSpec) -> Self {
        GovAggregate {
            name: name.to_owned(),
            sessions: 0,
            cpu_j: hist(spec.energy_hist),
            cpu_j_sum: ExactSum::new(),
            cpu_j_min: f64::INFINITY,
            cpu_j_max: f64::NEG_INFINITY,
            radio_j_sum: ExactSum::new(),
            device_radio_j_sum: ExactSum::new(),
            device_display_j_sum: ExactSum::new(),
            device_decoder_j_sum: ExactSum::new(),
            radio_promotions: 0,
            qoe: hist(spec.qoe_hist),
            qoe_sum: ExactSum::new(),
            startup_ms: hist(spec.startup_hist_ms),
            startup_ms_sum: ExactSum::new(),
            rebuffer_events: 0,
            rebuffer_secs: ExactSum::new(),
            late_vsyncs: 0,
            frames_dropped: 0,
            frames_displayed: 0,
            total_frames: 0,
            transitions: 0,
            mean_freq_mhz_sum: ExactSum::new(),
            bitrate_kbps_sum: ExactSum::new(),
            session_secs: ExactSum::new(),
            perfect_sessions: 0,
            panic_races: 0,
            download_retries: 0,
        }
    }

    /// Folds one session report into the lane.
    pub fn observe(&mut self, r: &SessionReport) {
        self.sessions += 1;
        let cpu = r.cpu_joules();
        self.cpu_j.record(cpu);
        self.cpu_j_sum.add(cpu);
        self.cpu_j_min = self.cpu_j_min.min(cpu);
        self.cpu_j_max = self.cpu_j_max.max(cpu);
        self.radio_j_sum.add(r.radio.energy_j);
        self.device_radio_j_sum.add(r.power.radio_j);
        self.device_display_j_sum.add(r.power.display_j);
        self.device_decoder_j_sum.add(r.power.decoder_j);
        self.radio_promotions += u64::from(r.power.radio_promotions);
        let score = r.qoe.score();
        self.qoe.record(score);
        self.qoe_sum.add(score);
        let startup = r.qoe.startup_delay.as_secs_f64() * 1000.0;
        self.startup_ms.record(startup);
        self.startup_ms_sum.add(startup);
        self.rebuffer_events += r.qoe.rebuffer_events;
        self.rebuffer_secs.add(r.qoe.rebuffer_time.as_secs_f64());
        self.late_vsyncs += r.qoe.late_vsyncs;
        self.frames_dropped += r.qoe.frames_dropped;
        self.frames_displayed += r.qoe.frames_displayed;
        self.total_frames += r.qoe.total_frames;
        self.transitions += r.transitions;
        self.mean_freq_mhz_sum.add(f64::from(r.mean_freq.mhz()));
        self.bitrate_kbps_sum.add(r.qoe.mean_bitrate_kbps);
        self.session_secs.add(r.session_length.as_secs_f64());
        if r.qoe.is_perfect() {
            self.perfect_sessions += 1;
        }
        self.panic_races += r.panic_races;
        self.download_retries += r.download_retries;
    }

    /// Merges another partial lane (same governor, same shapes).
    ///
    /// # Panics
    ///
    /// Panics on a governor-name or histogram-shape mismatch.
    pub fn merge(&mut self, other: &GovAggregate) {
        assert_eq!(self.name, other.name, "merging different governor lanes");
        self.sessions += other.sessions;
        self.cpu_j.merge(&other.cpu_j);
        self.cpu_j_sum.merge(&other.cpu_j_sum);
        self.cpu_j_min = self.cpu_j_min.min(other.cpu_j_min);
        self.cpu_j_max = self.cpu_j_max.max(other.cpu_j_max);
        self.radio_j_sum.merge(&other.radio_j_sum);
        self.device_radio_j_sum.merge(&other.device_radio_j_sum);
        self.device_display_j_sum.merge(&other.device_display_j_sum);
        self.device_decoder_j_sum.merge(&other.device_decoder_j_sum);
        self.radio_promotions += other.radio_promotions;
        self.qoe.merge(&other.qoe);
        self.qoe_sum.merge(&other.qoe_sum);
        self.startup_ms.merge(&other.startup_ms);
        self.startup_ms_sum.merge(&other.startup_ms_sum);
        self.rebuffer_events += other.rebuffer_events;
        self.rebuffer_secs.merge(&other.rebuffer_secs);
        self.late_vsyncs += other.late_vsyncs;
        self.frames_dropped += other.frames_dropped;
        self.frames_displayed += other.frames_displayed;
        self.total_frames += other.total_frames;
        self.transitions += other.transitions;
        self.mean_freq_mhz_sum.merge(&other.mean_freq_mhz_sum);
        self.bitrate_kbps_sum.merge(&other.bitrate_kbps_sum);
        self.session_secs.merge(&other.session_secs);
        self.perfect_sessions += other.perfect_sessions;
        self.panic_races += other.panic_races;
        self.download_retries += other.download_retries;
    }

    /// Population deadline-miss rate (late + dropped over offered ticks).
    pub fn miss_rate(&self) -> f64 {
        let missed = self.late_vsyncs + self.frames_dropped;
        let ticks = self.frames_displayed + missed;
        if ticks == 0 {
            0.0
        } else {
            missed as f64 / ticks as f64
        }
    }

    /// Approximate resident footprint of the lane, bytes.
    pub fn approx_bytes(&self) -> u64 {
        let hists = self.cpu_j.num_bins() + self.qoe.num_bins() + self.startup_ms.num_bins();
        (std::mem::size_of::<GovAggregate>() + self.name.len() + hists * 8) as u64
    }
}

/// The merged state of a whole campaign: per-governor lanes plus the
/// arrival profile and the resume cursor.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetAggregate {
    /// Fingerprint of the spec this aggregate belongs to.
    pub campaign: u128,
    /// Shards fully folded in (the resume cursor).
    pub shards_done: u64,
    /// Sessions folded in (each counted once, not per governor).
    pub sessions_done: u64,
    /// Session arrivals over the campaign window, seconds.
    pub arrivals: Histogram,
    /// One lane per governor, in spec order.
    pub govs: Vec<GovAggregate>,
    /// Fleet workload knowledge: per-(title, content) decode-cost
    /// summaries (see [`crate::prior`]). Folded once per session — decode
    /// costs are governor-independent — and persisted both in the
    /// checkpoint and as a standalone `eavs-prior/v1` file.
    pub prior: crate::prior::PriorStore,
}

impl FleetAggregate {
    /// An empty aggregate shaped by `spec`.
    pub fn new(spec: &CampaignSpec) -> Self {
        FleetAggregate {
            campaign: spec.fingerprint().0,
            shards_done: 0,
            sessions_done: 0,
            arrivals: Histogram::new(0.0, spec.arrival_span_s as f64, 48),
            govs: spec
                .governors
                .iter()
                .map(|g| GovAggregate::new(g, spec))
                .collect(),
            prior: crate::prior::PriorStore::new(),
        }
    }

    /// Records one session arrival (seconds into the campaign window).
    pub fn observe_arrival(&mut self, arrival_s: f64) {
        self.sessions_done += 1;
        self.arrivals.record(arrival_s);
    }

    /// Folds one report into governor lane `gov_index`.
    ///
    /// # Panics
    ///
    /// Panics if `gov_index` is out of range.
    pub fn observe(&mut self, gov_index: usize, report: &SessionReport) {
        self.govs[gov_index].observe(report);
    }

    /// Folds one session's decode-cost summary into the fleet prior.
    ///
    /// Called once per session (not per governor lane): frame decode
    /// cost depends on the title and content, not on the frequency the
    /// governor happened to pick, so one lane's observation suffices and
    /// multi-counting would skew the population weight.
    pub fn observe_prior(
        &mut self,
        title_key: &str,
        content: &str,
        stats: &eavs_core::framestats::FrameCycleStats,
    ) {
        self.prior.observe(title_key, content, stats);
    }

    /// Merges a partial aggregate of the same campaign. `shards_done` and
    /// the cursor semantics belong to the *caller* (a shard partial keeps
    /// its own count of 0); only the statistics merge.
    ///
    /// # Panics
    ///
    /// Panics if the aggregates belong to different campaigns or have
    /// mismatched lanes.
    pub fn merge(&mut self, other: &FleetAggregate) {
        assert_eq!(
            self.campaign, other.campaign,
            "merging aggregates of different campaigns"
        );
        assert_eq!(self.govs.len(), other.govs.len(), "governor lane mismatch");
        self.sessions_done += other.sessions_done;
        self.arrivals.merge(&other.arrivals);
        for (mine, theirs) in self.govs.iter_mut().zip(&other.govs) {
            mine.merge(theirs);
        }
        self.prior.merge(&other.prior);
    }

    /// Approximate resident footprint, bytes. The point of the exercise:
    /// this is O(bins × governors) plus O(title × content catalog) for
    /// the prior store — independent of the session count either way.
    pub fn approx_bytes(&self) -> u64 {
        std::mem::size_of::<FleetAggregate>() as u64
            + self.arrivals.num_bins() as u64 * 8
            + self
                .govs
                .iter()
                .map(GovAggregate::approx_bytes)
                .sum::<u64>()
            + self.prior.approx_bytes()
    }

    /// Renders the population table (the F26 row set): per-governor
    /// energy and QoE distribution statistics. Every value is derived
    /// from the merged aggregate, so the table is byte-identical however
    /// the campaign was sharded, parallelized or resumed.
    pub fn table(&self, spec: &CampaignSpec) -> Table {
        let mut t = Table::new(&[
            "governor",
            "sessions",
            "mean cpu (J)",
            "p50 (J)",
            "p90 (J)",
            "p99 (J)",
            "max (J)",
            "mean qoe",
            "p10 qoe",
            "miss %",
            "rebuf/sess",
            "startup p90 (ms)",
            "perfect %",
            "mean freq (MHz)",
            "offered (erl)",
        ]);
        t.set_title(format!(
            "F26: fleet population — campaign '{}', {} sessions per governor",
            spec.name, spec.sessions,
        ));
        for g in &self.govs {
            let q = |h: &Histogram, p: f64| h.quantile(p).unwrap_or(0.0);
            let max = if g.sessions == 0 { 0.0 } else { g.cpu_j_max };
            t.row(&[
                &g.name,
                &g.sessions.to_string(),
                &format!("{:.3}", g.cpu_j_sum.mean()),
                &format!("{:.3}", q(&g.cpu_j, 0.5)),
                &format!("{:.3}", q(&g.cpu_j, 0.9)),
                &format!("{:.3}", q(&g.cpu_j, 0.99)),
                &format!("{max:.3}"),
                &format!("{:.2}", g.qoe_sum.mean()),
                &format!("{:.2}", q(&g.qoe, 0.1)),
                &format!("{:.4}", g.miss_rate() * 100.0),
                &format!(
                    "{:.4}",
                    if g.sessions == 0 {
                        0.0
                    } else {
                        g.rebuffer_events as f64 / g.sessions as f64
                    }
                ),
                &format!("{:.0}", q(&g.startup_ms, 0.9)),
                &format!(
                    "{:.1}",
                    if g.sessions == 0 {
                        0.0
                    } else {
                        g.perfect_sessions as f64 * 100.0 / g.sessions as f64
                    }
                ),
                &format!("{:.0}", g.mean_freq_mhz_sum.mean()),
                // Offered load in erlangs: mean concurrent sessions this
                // lane would put on the service over the arrival window.
                &format!("{:.2}", g.session_secs.value() / spec.arrival_span_s as f64),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{builder_for, draw_session};

    fn sample_reports(n: u64) -> Vec<SessionReport> {
        let spec = CampaignSpec::smoke();
        (0..n)
            .map(|id| {
                let draw = draw_session(&spec, id);
                builder_for(&draw, "eavs").unwrap().run()
            })
            .collect()
    }

    #[test]
    fn sharded_fold_matches_sequential_fold() {
        let spec = CampaignSpec::smoke();
        let reports = sample_reports(6);
        let mut whole = FleetAggregate::new(&spec);
        for (i, r) in reports.iter().enumerate() {
            whole.observe_arrival(i as f64 * 10.0);
            whole.observe(1, r); // lane 1 = eavs in the smoke spec
        }
        // Split across three shards, merge the partials in reverse order.
        let mut partials: Vec<FleetAggregate> =
            (0..3).map(|_| FleetAggregate::new(&spec)).collect();
        for (i, r) in reports.iter().enumerate() {
            partials[i % 3].observe_arrival(i as f64 * 10.0);
            partials[i % 3].observe(1, r);
        }
        let mut folded = FleetAggregate::new(&spec);
        for p in partials.iter().rev() {
            folded.merge(p);
        }
        assert_eq!(folded, whole);
    }

    #[test]
    fn merge_rejects_cross_campaign() {
        let a = FleetAggregate::new(&CampaignSpec::smoke());
        let mut other_spec = CampaignSpec::smoke();
        other_spec.seed = 99;
        let b = FleetAggregate::new(&other_spec);
        let caught = std::panic::catch_unwind(move || {
            let mut a = a;
            a.merge(&b);
        });
        assert!(caught.is_err());
    }

    #[test]
    fn footprint_is_independent_of_session_count() {
        let spec = CampaignSpec::smoke();
        let mut agg = FleetAggregate::new(&spec);
        let empty_bytes = agg.approx_bytes();
        for r in sample_reports(4) {
            agg.observe_arrival(1.0);
            agg.observe(0, &r);
        }
        assert_eq!(agg.approx_bytes(), empty_bytes);
    }

    #[test]
    fn table_renders_one_row_per_governor() {
        let spec = CampaignSpec::smoke();
        let mut agg = FleetAggregate::new(&spec);
        for r in sample_reports(2) {
            agg.observe_arrival(5.0);
            agg.observe(0, &r);
            agg.observe(1, &r);
        }
        let table = agg.table(&spec);
        let csv = table.to_csv();
        assert!(csv.contains("ondemand"));
        assert!(csv.contains("eavs"));
        assert_eq!(csv.lines().count(), 1 + spec.governors.len());
    }
}
