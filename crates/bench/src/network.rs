//! F9: variable networks with ABR — CPU + radio energy.

use crate::harness::{governor, run_parallel, SEED};
use eavs_core::session::StreamingSession;
use eavs_metrics::table::Table;
use eavs_net::abr::BufferBasedAbr;
use eavs_net::radio::RadioModel;
use eavs_sim::time::SimDuration;
use eavs_trace::content::ContentProfile;
use eavs_trace::net_gen::NetworkProfile;
use eavs_video::manifest::Manifest;

fn radio_for(profile: NetworkProfile) -> RadioModel {
    match profile {
        NetworkProfile::WifiHome => RadioModel::wifi(),
        NetworkProfile::LteDrive => RadioModel::lte(),
        NetworkProfile::HspaTram => RadioModel::umts_3g(),
    }
}

/// F9: adaptive streaming over each network preset, interactive vs EAVS,
/// whole-stack energy.
pub fn f9_network_abr() -> Table {
    let duration = SimDuration::from_secs(120);
    let mut t = Table::new(&[
        "network",
        "governor",
        "cpu (J)",
        "radio (J)",
        "total (J)",
        "mean kbps",
        "switches",
        "rebuf",
        "miss %",
    ]);
    t.set_title("F9: ABR streaming over variable networks — 120 s, buffer-based ABR");
    for profile in NetworkProfile::ALL {
        let trace = profile.generate(duration * 3, SEED);
        let reports = run_parallel(
            ["interactive", "eavs"]
                .iter()
                .map(|&name| {
                    let trace = trace.clone();
                    move || {
                        StreamingSession::builder(governor(name))
                            .manifest(Manifest::standard_ladder(duration, 30))
                            .content(ContentProfile::Film)
                            .network(trace)
                            .radio(radio_for(profile))
                            .abr(Box::new(BufferBasedAbr::standard()))
                            .seed(SEED)
                            .run()
                    }
                })
                .collect(),
        );
        for r in &reports {
            t.row(&[
                profile.name(),
                &r.governor,
                &format!("{:.2}", r.cpu_joules()),
                &format!("{:.2}", r.radio.energy_j),
                &format!("{:.2}", r.total_joules()),
                &format!("{:.0}", r.qoe.mean_bitrate_kbps),
                &r.qoe.bitrate_switches.to_string(),
                &r.qoe.rebuffer_events.to_string(),
                &format!("{:.3}", r.qoe.deadline_miss_rate() * 100.0),
            ]);
        }
    }
    t
}
