//! Writes sample workload traces (`.vtrace` / `.btrace`) under `results/`
//! so external tools can consume the exact workloads the experiments use.

use eavs_bench::harness::{manifest_1080p30, results_dir, SEED};
use eavs_sim::time::SimDuration;
use eavs_trace::content::ContentProfile;
use eavs_trace::format::{write_bandwidth_trace, write_video_trace};
use eavs_trace::net_gen::NetworkProfile;
use eavs_trace::video_gen::VideoGenerator;
use eavs_video::segment::Segment;

fn main() -> std::io::Result<()> {
    let dir = results_dir().join("traces");
    std::fs::create_dir_all(&dir)?;

    for content in ContentProfile::ALL {
        let manifest = manifest_1080p30(60);
        let gen = VideoGenerator::new(manifest.clone(), content, SEED);
        let frames = vec![gen
            .all_segments(0)
            .into_iter()
            .flat_map(Segment::into_frames)
            .collect::<Vec<_>>()];
        let path = dir.join(format!("{}_1080p30.vtrace", content.name()));
        std::fs::write(&path, write_video_trace(&manifest, &frames))?;
        println!("wrote {}", path.display());
    }

    for profile in NetworkProfile::ALL {
        let trace = profile.generate(SimDuration::from_secs(300), SEED);
        let path = dir.join(format!("{}.btrace", profile.name()));
        std::fs::write(&path, write_bandwidth_trace(&trace))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
