//! Playback / display state machine.
//!
//! Drives what happens at each vsync: display the next decoded frame, stall
//! one refresh because the decoder is late (*deadline miss* — the paper's
//! QoE metric for over-slow CPU scaling), or enter rebuffering because the
//! network starved the pipeline entirely. The enclosing session schedules
//! the vsync ticks; this type owns the decisions and the accounting.

use crate::frame::Frame;
use crate::pipeline::DecodePipeline;
use eavs_sim::time::{SimDuration, SimTime};

/// Playback lifecycle phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlaybackPhase {
    /// Waiting for the initial buffer to fill; playback has not started.
    Startup,
    /// Displaying frames at vsync.
    Playing,
    /// Paused with an empty pipeline, waiting for the network.
    Rebuffering,
    /// All frames displayed.
    Ended,
}

/// What happens when the due frame is not decoded in time.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LatePolicy {
    /// Freeze one refresh and display the frame when it arrives (playback
    /// stretches; every late decode is visible). The conservative default
    /// — it cannot hide governor slowness.
    #[default]
    Stall,
    /// Stay on the wall-clock schedule and drop frames whose slot passed
    /// (AVSync-style); content time never stretches but frames are lost.
    Drop,
}

/// What happened at a vsync tick.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum VsyncOutcome {
    /// A frame was displayed.
    Displayed(Frame),
    /// The decoder was late: no decoded frame, but media is buffered.
    /// Playback freezes for this refresh (deadline miss).
    DecoderLate,
    /// The due frame's slot passed and was skipped (drop-late policy).
    Dropped,
    /// The pipeline is drained: transitioned to rebuffering.
    Starved,
    /// The stream finished with this tick.
    Ended(Frame),
}

/// Playback state and QoE accounting.
#[derive(Clone, Debug)]
pub struct Playback {
    phase: PlaybackPhase,
    total_frames: u64,
    startup_threshold_frames: usize,
    resume_threshold_frames: usize,
    frames_displayed: u64,
    late_vsyncs: u64,
    rebuffer_events: u64,
    rebuffer_time: SimDuration,
    stall_since: Option<SimTime>,
    startup_delay: Option<SimDuration>,
    policy: LatePolicy,
    /// Next frame index due for display (drop policy advances this past
    /// skipped frames).
    next_display: u64,
    frames_dropped: u64,
}

impl Playback {
    /// Creates playback for a stream of `total_frames` frames.
    ///
    /// Playback starts once `startup_threshold_frames` are buffered and
    /// resumes after rebuffering once `resume_threshold_frames` are.
    ///
    /// # Panics
    ///
    /// Panics if `total_frames == 0` or either threshold is zero.
    pub fn new(
        total_frames: u64,
        startup_threshold_frames: usize,
        resume_threshold_frames: usize,
    ) -> Self {
        assert!(total_frames > 0, "empty stream");
        assert!(
            startup_threshold_frames > 0 && resume_threshold_frames > 0,
            "thresholds must be positive"
        );
        Playback {
            phase: PlaybackPhase::Startup,
            total_frames,
            startup_threshold_frames,
            resume_threshold_frames,
            frames_displayed: 0,
            late_vsyncs: 0,
            rebuffer_events: 0,
            rebuffer_time: SimDuration::ZERO,
            stall_since: None,
            startup_delay: None,
            policy: LatePolicy::Stall,
            next_display: 0,
            frames_dropped: 0,
        }
    }

    /// Selects the late-frame policy (builder style).
    pub fn with_policy(mut self, policy: LatePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The late-frame policy in force.
    pub fn policy(&self) -> LatePolicy {
        self.policy
    }

    /// Frames skipped under the drop-late policy.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// The index of the next frame due for display.
    pub fn next_display(&self) -> u64 {
        self.next_display
    }

    /// Current phase.
    pub fn phase(&self) -> PlaybackPhase {
        self.phase
    }

    /// Frames displayed so far.
    pub fn frames_displayed(&self) -> u64 {
        self.frames_displayed
    }

    /// Vsyncs missed because the decoder was late.
    pub fn late_vsyncs(&self) -> u64 {
        self.late_vsyncs
    }

    /// Rebuffering events (network starvation).
    pub fn rebuffer_events(&self) -> u64 {
        self.rebuffer_events
    }

    /// Total time spent rebuffering.
    pub fn rebuffer_time(&self) -> SimDuration {
        self.rebuffer_time
    }

    /// Time from session start to first displayed frame, once known.
    pub fn startup_delay(&self) -> Option<SimDuration> {
        self.startup_delay
    }

    /// Total frames in the stream.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Whether playback may start/resume given the pipeline's buffered
    /// frame count (also counts frames the stream will never provide
    /// again at end of stream, where thresholds can exceed what remains).
    ///
    /// Returns `true` and performs the phase transition when it fires.
    pub fn maybe_start(
        &mut self,
        now: SimTime,
        buffered_frames: usize,
        downloads_done: bool,
    ) -> bool {
        let threshold = match self.phase {
            PlaybackPhase::Startup => self.startup_threshold_frames,
            PlaybackPhase::Rebuffering => self.resume_threshold_frames,
            PlaybackPhase::Playing | PlaybackPhase::Ended => return false,
        };
        let remaining = (self.total_frames - self.next_display) as usize;
        let effective = threshold.min(remaining);
        if buffered_frames >= effective || (downloads_done && buffered_frames > 0) {
            if self.phase == PlaybackPhase::Rebuffering {
                let since = self.stall_since.take().expect("rebuffering had a start");
                self.rebuffer_time += now - since;
            } else {
                self.startup_delay = Some(now - SimTime::ZERO);
            }
            self.phase = PlaybackPhase::Playing;
            true
        } else {
            false
        }
    }

    /// Handles one vsync tick. Only valid while [`PlaybackPhase::Playing`].
    ///
    /// # Panics
    ///
    /// Panics if called in any other phase.
    pub fn on_vsync(&mut self, now: SimTime, pipeline: &mut DecodePipeline) -> VsyncOutcome {
        assert_eq!(
            self.phase,
            PlaybackPhase::Playing,
            "vsync outside of playback"
        );
        if self.policy == LatePolicy::Drop {
            // Decoded frames whose slot already passed were counted as
            // dropped at their vsync; discard them silently now.
            pipeline.discard_decoded_before(self.next_display);
        }
        let due_is_decoded = match self.policy {
            LatePolicy::Stall => pipeline.peek_decoded().is_some(),
            LatePolicy::Drop => {
                matches!(pipeline.peek_decoded(), Some(f) if f.index == self.next_display)
            }
        };
        if due_is_decoded {
            let frame = pipeline.take_decoded().expect("peeked");
            self.frames_displayed += 1;
            self.next_display = frame.index + 1;
            return if self.playhead_done() {
                self.phase = PlaybackPhase::Ended;
                VsyncOutcome::Ended(frame)
            } else {
                VsyncOutcome::Displayed(frame)
            };
        }
        if pipeline.is_drained() {
            self.phase = PlaybackPhase::Rebuffering;
            self.rebuffer_events += 1;
            self.stall_since = Some(now);
            return VsyncOutcome::Starved;
        }
        match self.policy {
            LatePolicy::Stall => {
                self.late_vsyncs += 1;
                VsyncOutcome::DecoderLate
            }
            LatePolicy::Drop => {
                self.frames_dropped += 1;
                self.next_display += 1;
                if self.playhead_done() {
                    self.phase = PlaybackPhase::Ended;
                }
                VsyncOutcome::Dropped
            }
        }
    }

    /// `true` when the playhead has consumed every frame slot (displayed
    /// or dropped).
    fn playhead_done(&self) -> bool {
        self.next_display >= self.total_frames
    }

    /// Finalizes accounting at session end (closes an open rebuffer
    /// interval).
    pub fn finalize(&mut self, now: SimTime) {
        if let Some(since) = self.stall_since.take() {
            self.rebuffer_time += now - since;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameType;
    use eavs_cpu::freq::Cycles;

    fn frame(index: u64) -> Frame {
        Frame {
            index,
            frame_type: FrameType::P,
            size_bytes: 100,
            decode_cycles: Cycles::from_mega(1.0),
            duration: SimDuration::from_nanos(33_333_333),
        }
    }

    fn decoded_pipeline(n: u64) -> DecodePipeline {
        let mut p = DecodePipeline::new(64);
        p.push_frames((0..n).map(frame));
        while p.can_start_decode() {
            p.start_decode();
            p.finish_decode();
        }
        p
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn startup_gates_on_threshold() {
        let mut pb = Playback::new(100, 8, 4);
        assert_eq!(pb.phase(), PlaybackPhase::Startup);
        assert!(!pb.maybe_start(t(10), 7, false));
        assert!(pb.maybe_start(t(20), 8, false));
        assert_eq!(pb.phase(), PlaybackPhase::Playing);
        assert_eq!(pb.startup_delay(), Some(SimDuration::from_millis(20)));
    }

    #[test]
    fn displays_frames_and_ends() {
        let mut pb = Playback::new(3, 1, 1);
        let mut p = decoded_pipeline(3);
        pb.maybe_start(t(0), 3, false);
        assert!(matches!(pb.on_vsync(t(1), &mut p), VsyncOutcome::Displayed(f) if f.index == 0));
        assert!(matches!(
            pb.on_vsync(t(2), &mut p),
            VsyncOutcome::Displayed(_)
        ));
        assert!(matches!(pb.on_vsync(t(3), &mut p), VsyncOutcome::Ended(_)));
        assert_eq!(pb.phase(), PlaybackPhase::Ended);
        assert_eq!(pb.frames_displayed(), 3);
    }

    #[test]
    fn late_decoder_counts_misses() {
        let mut pb = Playback::new(10, 1, 1);
        let mut p = DecodePipeline::new(4);
        p.push_frames([frame(0), frame(1)]);
        pb.maybe_start(t(0), 2, false);
        // Nothing decoded yet: decoder is late but media is buffered.
        assert_eq!(pb.on_vsync(t(1), &mut p), VsyncOutcome::DecoderLate);
        assert_eq!(pb.late_vsyncs(), 1);
        assert_eq!(pb.phase(), PlaybackPhase::Playing);
    }

    #[test]
    fn starvation_enters_rebuffering_and_resume_accounts_time() {
        let mut pb = Playback::new(10, 1, 3);
        let mut p = decoded_pipeline(1);
        pb.maybe_start(t(0), 1, false);
        assert!(matches!(
            pb.on_vsync(t(1), &mut p),
            VsyncOutcome::Displayed(_)
        ));
        assert_eq!(pb.on_vsync(t(2), &mut p), VsyncOutcome::Starved);
        assert_eq!(pb.phase(), PlaybackPhase::Rebuffering);
        assert_eq!(pb.rebuffer_events(), 1);
        // Not enough to resume.
        assert!(!pb.maybe_start(t(3), 2, false));
        assert!(pb.maybe_start(t(52), 3, false));
        assert_eq!(pb.rebuffer_time(), SimDuration::from_millis(50));
    }

    #[test]
    fn resume_with_fewer_frames_at_end_of_stream() {
        let mut pb = Playback::new(5, 4, 4);
        // Only 2 frames will ever exist (end of stream): allow start when
        // downloads are done.
        assert!(pb.maybe_start(t(0), 2, true));
    }

    #[test]
    fn finalize_closes_open_stall() {
        let mut pb = Playback::new(10, 1, 4);
        let mut p = decoded_pipeline(1);
        pb.maybe_start(t(0), 1, false);
        pb.on_vsync(t(1), &mut p);
        pb.on_vsync(t(2), &mut p); // starved
        pb.finalize(t(10));
        assert_eq!(pb.rebuffer_time(), SimDuration::from_millis(8));
    }

    #[test]
    fn drop_policy_skips_late_frames_and_stays_on_schedule() {
        let mut pb = Playback::new(5, 1, 1).with_policy(LatePolicy::Drop);
        assert_eq!(pb.policy(), LatePolicy::Drop);
        let mut p = DecodePipeline::new(4);
        // Frames 0..5 downloaded; only 0 decoded before vsyncs begin.
        p.push_frames((0..5).map(frame));
        p.start_decode();
        p.finish_decode();
        pb.maybe_start(t(0), 5, true);
        assert!(matches!(pb.on_vsync(t(33), &mut p), VsyncOutcome::Displayed(f) if f.index == 0));
        // Frame 1 still undecoded at its slot: dropped, playhead advances.
        assert_eq!(pb.on_vsync(t(66), &mut p), VsyncOutcome::Dropped);
        assert_eq!(pb.frames_dropped(), 1);
        // Frame 1 finishes decode late; it is discarded, frame 2 shows.
        p.start_decode();
        p.finish_decode(); // frame 1 (stale)
        p.start_decode();
        p.finish_decode(); // frame 2 (due)
        assert!(matches!(pb.on_vsync(t(99), &mut p), VsyncOutcome::Displayed(f) if f.index == 2));
        // Decode the rest; 3 displays, 4 ends the stream.
        p.start_decode();
        p.finish_decode();
        p.start_decode();
        p.finish_decode();
        assert!(matches!(pb.on_vsync(t(132), &mut p), VsyncOutcome::Displayed(f) if f.index == 3));
        assert!(matches!(pb.on_vsync(t(165), &mut p), VsyncOutcome::Ended(f) if f.index == 4));
        assert_eq!(pb.frames_displayed(), 4);
        assert_eq!(pb.frames_dropped(), 1);
    }

    #[test]
    fn drop_policy_ends_even_if_last_frame_drops() {
        let mut pb = Playback::new(2, 1, 1).with_policy(LatePolicy::Drop);
        let mut p = DecodePipeline::new(4);
        p.push_frames((0..2).map(frame));
        p.start_decode();
        p.finish_decode();
        pb.maybe_start(t(0), 2, true);
        assert!(matches!(
            pb.on_vsync(t(1), &mut p),
            VsyncOutcome::Displayed(_)
        ));
        // Final frame still in the undecoded queue at its slot: dropped,
        // and the playhead reaches the end of the stream.
        assert_eq!(pb.on_vsync(t(2), &mut p), VsyncOutcome::Dropped);
        assert_eq!(pb.phase(), PlaybackPhase::Ended);
        assert_eq!(pb.frames_displayed(), 1);
        assert_eq!(pb.frames_dropped(), 1);
    }

    #[test]
    fn drop_policy_still_rebuffers_on_starvation() {
        let mut pb = Playback::new(10, 1, 2).with_policy(LatePolicy::Drop);
        let mut p = DecodePipeline::new(4);
        p.push_frames([frame(0)]);
        p.start_decode();
        p.finish_decode();
        pb.maybe_start(t(0), 1, false);
        pb.on_vsync(t(1), &mut p);
        // Nothing buffered at all: starvation, not a drop.
        assert_eq!(pb.on_vsync(t(2), &mut p), VsyncOutcome::Starved);
        assert_eq!(pb.frames_dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "vsync outside of playback")]
    fn vsync_before_start_panics() {
        let mut pb = Playback::new(10, 1, 1);
        let mut p = decoded_pipeline(1);
        pb.on_vsync(t(0), &mut p);
    }
}
