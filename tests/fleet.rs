//! Integration tests for fleet campaigns: single-session equivalence
//! with the direct session path, and kill/resume byte-identity.

use eavs_fleet::campaign::{builder_for, draw_session};
use eavs_fleet::{CampaignSpec, CampaignStatus, FleetAggregate, RunOptions};

/// A 1-session fleet must reproduce exactly what running that session
/// directly produces: the campaign machinery (draws, shard loop, pool,
/// cache) adds nothing and loses nothing.
#[test]
fn one_session_fleet_reproduces_run_session() {
    let mut spec = CampaignSpec::smoke();
    spec.name = "one-session".to_owned();
    spec.sessions = 1;
    spec.shard_size = 1;

    let outcome = eavs_bench::fleet::run_campaign(&spec, &RunOptions::default()).unwrap();
    assert_eq!(outcome.status, CampaignStatus::Complete);
    assert_eq!(outcome.aggregate.sessions_done, 1);

    // Rebuild the same session by hand and fold its report directly.
    let draw = draw_session(&spec, 0);
    let mut direct = FleetAggregate::new(&spec);
    direct.observe_arrival(draw.arrival_s);
    for (gov_index, gov) in spec.governors.iter().enumerate() {
        let report = builder_for(&draw, gov).unwrap().run();
        direct.observe(gov_index, &report);
        if gov_index == 0 {
            // Mirror `run_shard`: the workload prior is fed from lane 0
            // only (decode cycles are governor-independent).
            direct.observe_prior(&draw.title.key(), draw.content.name(), &report.frame_cycles);
        }
        // Spot-check the raw scalars against the report, not just
        // aggregate-vs-aggregate: one session, so sums ARE the report.
        let lane = &outcome.aggregate.govs[gov_index];
        assert_eq!(lane.sessions, 1);
        assert_eq!(lane.cpu_j_min.to_bits(), report.cpu_joules().to_bits());
        assert_eq!(lane.cpu_j_max.to_bits(), report.cpu_joules().to_bits());
        assert_eq!(lane.total_frames, report.qoe.total_frames);
        assert_eq!(lane.transitions, report.transitions);
    }
    direct.shards_done = outcome.aggregate.shards_done;
    assert_eq!(outcome.aggregate, direct);
}

/// The fast paths must actually be exercised by a default-configured
/// campaign: shards run through the batched SoA kernel (batch is the
/// default runner), and an `eavs`/`eavs-panic` pair — identical replay
/// prefixes, panic knobs are outside the prefix — replays decision
/// timelines instead of recomputing demand.
#[test]
fn smoke_campaign_batches_and_replays() {
    let mut spec = CampaignSpec::smoke();
    spec.name = "counters-smoke".to_owned();
    spec.sessions = 12;
    spec.shard_size = 4;
    spec.governors.push("eavs-panic".to_owned());

    let outcome = eavs_bench::fleet::run_campaign(&spec, &RunOptions::default()).unwrap();
    assert_eq!(outcome.status, CampaignStatus::Complete);
    assert!(
        outcome.batched > 0,
        "batch is the default shard runner; batched = {}",
        outcome.batched
    );
    assert!(
        outcome.replayed > 0,
        "eavs-panic must replay eavs timelines; replayed = {}",
        outcome.replayed
    );
}

/// Killing a campaign mid-flight and resuming from its checkpoint must
/// yield the byte-identical population CSV of an uninterrupted run.
#[test]
fn kill_and_resume_is_byte_identical() {
    let mut spec = CampaignSpec::smoke();
    spec.name = "kill-resume".to_owned();
    spec.sessions = 20;
    spec.shard_size = 5; // 4 shards

    // Run powered, so the device-power counters cross the checkpoint
    // with real values and must round-trip bit-exactly.
    spec.power = eavs::power::DevicePowerModel::phone();

    // Uninterrupted reference run.
    let cold = eavs_bench::fleet::run_campaign(&spec, &RunOptions::default()).unwrap();
    assert_eq!(cold.status, CampaignStatus::Complete);
    for lane in &cold.aggregate.govs {
        assert!(lane.device_radio_j_sum.value() > 0.0);
        assert!(lane.device_display_j_sum.value() > 0.0);
        assert!(lane.device_decoder_j_sum.value() > 0.0);
        assert!(lane.radio_promotions > 0);
    }
    let reference_csv = cold.aggregate.table(&spec).to_csv();

    let dir = std::env::temp_dir().join(format!("eavs-fleet-resume-{}", std::process::id()));
    let ckpt = dir.join("kill-resume.ckpt");

    // "Kill" deterministically after 2 of 4 shards.
    let halted = eavs_bench::fleet::run_campaign(
        &spec,
        &RunOptions {
            checkpoint: Some(ckpt.clone()),
            checkpoint_every: 1,
            halt_after_shards: Some(2),
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(halted.status, CampaignStatus::Halted);
    assert_eq!(halted.aggregate.shards_done, 2);

    // Resume: only the remaining shards run.
    let resumed = eavs_bench::fleet::run_campaign(
        &spec,
        &RunOptions {
            checkpoint: Some(ckpt.clone()),
            checkpoint_every: 1,
            halt_after_shards: None,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.status, CampaignStatus::Complete);
    assert!(
        resumed.session_runs < cold.session_runs,
        "resume must not re-run completed shards"
    );
    assert_eq!(resumed.aggregate.table(&spec).to_csv(), reference_csv);
    // Full aggregate equality, not just the rendered table: every
    // counter — including the device-power sums — survived the
    // checkpoint bit-exactly.
    assert_eq!(resumed.aggregate, cold.aggregate);

    // A different spec must refuse the checkpoint instead of merging junk.
    let mut changed = spec.clone();
    changed.seed += 1;
    let err = eavs_bench::fleet::run_campaign(
        &changed,
        &RunOptions {
            checkpoint: Some(ckpt),
            checkpoint_every: 1,
            halt_after_shards: None,
            ..RunOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("different campaign"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}
