//! `eavsd` — resident fleet-campaign daemon.
//!
//! Coordinator mode (default) serves the HTTP/JSON control plane and
//! runs shards on in-process workers; `--worker <addr>` turns the
//! process into a remote shard worker for a coordinator elsewhere.
//! Either way the shards run on the same pooled, cached runner as
//! `eavsctl fleet`, so results are byte-identical to a local run.

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use eavs::daemon::worker::run_worker;
use eavs::daemon::{Daemon, DaemonOptions};

const USAGE: &str = "\
eavsd — resident fleet-campaign daemon (see `eavsctl help` for clients)

USAGE:
  eavsd [OPTIONS]                    serve campaigns until POST /shutdown
  eavsd --worker HOST:PORT           run shards for a coordinator elsewhere

OPTIONS (with defaults):
  --addr 127.0.0.1:7026   listen address ($EAVS_DAEMON_ADDR overrides the
                          default; port 0 picks a free port)
  --state-dir eavsd-state campaign specs + checkpoints live here; a killed
                          daemon restarted on the same dir resumes every
                          in-flight campaign from its last checkpoint
  --threads 4             HTTP serving threads ($EAVS_DAEMON_THREADS)
  --workers 1             in-process shard workers (0 = coordinator only,
                          shards then run on remote --worker processes)
  --checkpoint-every 8    shards between checkpoint writes
                          ($EAVS_CHECKPOINT_EVERY)
  --lease-secs 60         claimed-shard lease before re-handout
  --prior-path FILE       fleet workload-prior file ($EAVS_PRIOR_PATH,
                          then <state-dir>/fleet.prior); every campaign
                          completing here folds its trained prior in

ENDPOINTS:
  POST   /campaigns                submit a CampaignSpec JSON
  GET    /campaigns                list campaigns
  GET    /campaigns/{id}           live progress (shards, sessions/sec, lanes)
  GET    /campaigns/{id}/result    final aggregate (eavs-fleet-checkpoint/v1)
  DELETE /campaigns/{id}           cancel at the next shard boundary
  GET    /priors                   resident fleet prior (eavs-prior/v1 text)
  POST   /priors                   merge an eavs-prior/v1 document in
  GET    /metrics                  Prometheus text (0.0.4), all campaigns
  GET    /healthz                  liveness
  POST   /claim                    worker protocol: claim a shard (204 idle)
  POST   /campaigns/{id}/shards/{n}  worker protocol: deliver a partial
  POST   /shutdown                 graceful stop (state survives on disk)
";

struct Flags {
    opts: DaemonOptions,
    worker: Option<String>,
}

fn parse(args: &[String]) -> Result<Option<Flags>, String> {
    let mut opts = DaemonOptions::new("eavsd-state");
    opts.addr = eavs::bench::executor::daemon_addr().unwrap_or_else(|| "127.0.0.1:7026".to_owned());
    if let Some(n) = eavs::bench::executor::daemon_threads() {
        opts.http_threads = n.max(1);
    }
    if let Some(n) = eavs::bench::executor::checkpoint_every() {
        opts.checkpoint_every = n;
    }
    if let Some(path) = eavs::bench::executor::prior_path() {
        opts.prior_path = Some(path.into());
    }
    let mut worker = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("--{name} needs a value"))
        };
        match flag.as_str() {
            "--help" | "-h" | "help" => return Ok(None),
            "--addr" => opts.addr = value("addr")?.clone(),
            "--state-dir" => opts.state_dir = value("state-dir")?.into(),
            "--threads" => opts.http_threads = num(value("threads")?, "threads")?,
            "--workers" => opts.workers = num(value("workers")?, "workers")?,
            "--checkpoint-every" => {
                opts.checkpoint_every = num(value("checkpoint-every")?, "checkpoint-every")?;
            }
            "--lease-secs" => {
                opts.lease = Duration::from_secs(num(value("lease-secs")?, "lease-secs")?);
            }
            "--prior-path" => opts.prior_path = Some(value("prior-path")?.into()),
            "--worker" => worker = Some(value("worker")?.clone()),
            other => return Err(format!("unknown flag {other:?}; try `eavsd --help`")),
        }
    }
    Ok(Some(Flags { opts, worker }))
}

fn num<T: std::str::FromStr>(raw: &str, name: &str) -> Result<T, String> {
    raw.parse::<T>()
        .map_err(|_| format!("bad value {raw:?} for --{name}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse(&args) {
        Ok(Some(flags)) => flags,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("eavsd: {message}");
            return ExitCode::FAILURE;
        }
    };
    let runner: eavs::daemon::worker::SharedRunner = Arc::new(eavs::bench::fleet::pooled_runner);

    if let Some(coordinator) = flags.worker {
        println!("eavsd worker: executing shards for {coordinator}");
        // Runs until the process is killed; a shard lost to a kill is
        // re-leased by the coordinator and re-run elsewhere.
        run_worker(&coordinator, &runner, &AtomicBool::new(false));
        return ExitCode::SUCCESS;
    }

    let daemon = match Daemon::start(flags.opts, runner) {
        Ok(daemon) => daemon,
        Err(message) => {
            eprintln!("eavsd: {message}");
            return ExitCode::FAILURE;
        }
    };
    println!("eavsd listening on {}", daemon.addr());
    while !daemon.stop_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("eavsd: shutdown requested, draining");
    daemon.shutdown();
    ExitCode::SUCCESS
}
