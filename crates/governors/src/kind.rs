//! The devirtualized governor decision kernel.
//!
//! [`GovernorKind`] is a closed enum over every baseline governor. Where
//! `Box<dyn CpufreqGovernor>` costs an indirect call per sample — opaque
//! to the inliner and the branch predictor — the enum dispatches through
//! a single predictable `match` and each arm inlines the governor's
//! decision over a [`DecisionLut`]: the per-OPP frequencies of the active
//! `OppTable × PolicyLimits` window, precomputed once as a contiguous
//! `f64` column. Frequency selection then becomes a branchless count of
//! entries below the target, which the compiler autovectorizes.
//!
//! Every decision is bit-identical to the trait path: the LUT preserves
//! the exact `freq as f64 >= target` comparisons of
//! [`lowest_index_for_khz`](crate::governor::lowest_index_for_khz)
//! (as `!(freq < target)` over the same values), and the enum arms reuse
//! the governors' own mutable state. The trait object remains the
//! extension escape hatch for governors outside this crate;
//! `tests/kind_equivalence.rs` proves enum ≡ dyn over random streams.

use crate::conservative::Conservative;
use crate::governor::CpufreqGovernor;
use crate::interactive::Interactive;
use crate::ondemand::Ondemand;
use crate::schedutil::Schedutil;
use crate::static_govs::{Performance, Powersave, Userspace};
use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::load::LoadSample;
use eavs_cpu::opp::{OppIndex, OppTable};
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::time::SimDuration;

/// Precomputed per-OPP decision table for one `OppTable × PolicyLimits`
/// window.
///
/// Holds every table frequency as `f64` kHz in a contiguous column plus
/// the limit window, so a governor decision needs no `OppTable` access
/// and no integer→float conversion on the hot path. Build once per
/// policy window and revalidate with [`matches`](Self::matches) — limits
/// move under thermal throttling, tables never change mid-session.
#[derive(Clone, Debug)]
pub struct DecisionLut {
    /// `table.freq(i).khz() as f64` for every OPP, full table.
    khz: Box<[f64]>,
    /// `table.max_freq().khz() as f64` — the hardware (not policy) max.
    hw_max_khz: f64,
    min_index: OppIndex,
    max_index: OppIndex,
}

impl DecisionLut {
    /// Builds the table for one policy window.
    pub fn build(table: &OppTable, limits: PolicyLimits) -> Self {
        let khz: Box<[f64]> = (0..=table.max_index())
            .map(|i| table.freq(i).khz() as f64)
            .collect();
        DecisionLut {
            khz,
            hw_max_khz: table.max_freq().khz() as f64,
            min_index: limits.min_index,
            max_index: limits.max_index,
        }
    }

    /// Whether the cached window still describes `table × limits`.
    #[inline]
    pub fn matches(&self, table: &OppTable, limits: PolicyLimits) -> bool {
        self.min_index == limits.min_index
            && self.max_index == limits.max_index
            && self.khz.len() == table.max_index() + 1
    }

    /// Lowest in-window index whose frequency is at least `target_khz`
    /// (the window max when none is) — bit-identical to
    /// [`lowest_index_for_khz`](crate::governor::lowest_index_for_khz),
    /// as a branchless count the compiler vectorizes.
    #[inline]
    pub fn lookup(&self, target_khz: f64) -> OppIndex {
        let mut below = 0usize;
        for &f in &self.khz[self.min_index..=self.max_index] {
            below += usize::from(f < target_khz);
        }
        (self.min_index + below).min(self.max_index)
    }

    /// [`lookup`](Self::lookup) over a contiguous column of targets —
    /// the struct-of-arrays form the batch runner feeds one governor
    /// group at a time.
    pub fn lookup_many(&self, targets: &[f64], out: &mut [OppIndex]) {
        for (t, o) in targets.iter().zip(out.iter_mut()) {
            *o = self.lookup(*t);
        }
    }

    /// The cached frequency of an OPP, in kHz.
    #[inline]
    pub fn khz_at(&self, idx: OppIndex) -> f64 {
        self.khz[idx]
    }

    /// The hardware maximum frequency, in kHz (ignores limits).
    #[inline]
    pub fn hw_max_khz(&self) -> f64 {
        self.hw_max_khz
    }

    /// The window's lowest selectable index.
    #[inline]
    pub fn min_index(&self) -> OppIndex {
        self.min_index
    }

    /// The window's highest selectable index.
    #[inline]
    pub fn max_index(&self) -> OppIndex {
        self.max_index
    }

    /// Clamps an index into the window.
    #[inline]
    pub fn clamp(&self, idx: OppIndex) -> OppIndex {
        idx.clamp(self.min_index, self.max_index)
    }
}

/// Caches a [`DecisionLut`] across samples, rebuilding only when the
/// policy window moves (thermal limit changes) — the glue a session or
/// batch lane keeps next to its [`GovernorKind`].
#[derive(Clone, Debug, Default)]
pub struct LutCache(Option<DecisionLut>);

impl LutCache {
    /// The LUT for `table × limits`, rebuilt if the window changed.
    #[inline]
    pub fn get(&mut self, table: &OppTable, limits: PolicyLimits) -> &DecisionLut {
        if !self.0.as_ref().is_some_and(|l| l.matches(table, limits)) {
            self.0 = Some(DecisionLut::build(table, limits));
        }
        self.0.as_ref().expect("just built")
    }
}

/// A baseline governor as a closed enum: static dispatch over the exact
/// same governor state the trait objects carry.
#[derive(Clone, Debug)]
pub enum GovernorKind {
    /// [`Performance`].
    Performance(Performance),
    /// [`Powersave`].
    Powersave(Powersave),
    /// [`Userspace`].
    Userspace(Userspace),
    /// [`Ondemand`].
    Ondemand(Ondemand),
    /// [`Conservative`].
    Conservative(Conservative),
    /// [`Interactive`].
    Interactive(Interactive),
    /// [`Schedutil`].
    Schedutil(Schedutil),
}

macro_rules! each_kind {
    ($self:expr, $g:ident => $body:expr) => {
        match $self {
            GovernorKind::Performance($g) => $body,
            GovernorKind::Powersave($g) => $body,
            GovernorKind::Userspace($g) => $body,
            GovernorKind::Ondemand($g) => $body,
            GovernorKind::Conservative($g) => $body,
            GovernorKind::Interactive($g) => $body,
            GovernorKind::Schedutil($g) => $body,
        }
    };
}

impl GovernorKind {
    /// Constructs a baseline governor by sysfs name, with default
    /// tunables — the enum counterpart of [`crate::by_name`]. Returns
    /// `None` for unknown names.
    pub fn by_name(name: &str) -> Option<GovernorKind> {
        Some(match name {
            "performance" => GovernorKind::Performance(Performance),
            "powersave" => GovernorKind::Powersave(Powersave),
            "userspace" => GovernorKind::Userspace(Userspace::new(0)),
            "ondemand" => GovernorKind::Ondemand(Ondemand::new()),
            "conservative" => GovernorKind::Conservative(Conservative::new()),
            "interactive" => GovernorKind::Interactive(Interactive::new()),
            "schedutil" => GovernorKind::Schedutil(Schedutil::new()),
            _ => return None,
        })
    }

    /// The governor's sysfs name.
    pub fn name(&self) -> &'static str {
        each_kind!(self, g => CpufreqGovernor::name(g))
    }

    /// How often the governor wants to be sampled.
    pub fn sampling_interval(&self) -> SimDuration {
        each_kind!(self, g => CpufreqGovernor::sampling_interval(g))
    }

    /// Hashes identity and tunables — byte-identical to the trait
    /// object's fingerprint, so memo keys are dispatch-agnostic.
    pub fn fingerprint(&self, fp: &mut Fingerprinter) {
        each_kind!(self, g => CpufreqGovernor::fingerprint(g, fp))
    }

    /// The OPP index selected at governor start.
    pub fn initial_index(&self, table: &OppTable, limits: PolicyLimits) -> OppIndex {
        each_kind!(self, g => CpufreqGovernor::initial_index(g, table, limits))
    }

    /// A small dense tag for grouping lanes of the same kind together
    /// (batch admission order); equal tags share decision code paths.
    pub fn lane_class(&self) -> u8 {
        match self {
            GovernorKind::Performance(_) => 0,
            GovernorKind::Powersave(_) => 1,
            GovernorKind::Userspace(_) => 2,
            GovernorKind::Ondemand(_) => 3,
            GovernorKind::Conservative(_) => 4,
            GovernorKind::Interactive(_) => 5,
            GovernorKind::Schedutil(_) => 6,
        }
    }

    /// One decision over the precomputed LUT — bit-identical to the
    /// trait path's `on_sample` for the window the LUT was built from.
    #[inline]
    pub fn decide(&mut self, sample: &LoadSample, lut: &DecisionLut) -> OppIndex {
        match self {
            GovernorKind::Performance(_) => lut.max_index(),
            GovernorKind::Powersave(_) => lut.min_index(),
            GovernorKind::Userspace(g) => lut.clamp(g.speed()),
            GovernorKind::Ondemand(g) => g.decide_lut(sample, lut),
            GovernorKind::Conservative(g) => g.decide_lut(sample, lut),
            GovernorKind::Interactive(g) => g.decide_lut(sample, lut),
            GovernorKind::Schedutil(g) => g.decide_lut(sample, lut),
        }
    }

    /// Trait-shaped entry point: builds a throwaway LUT per call. Use
    /// [`decide`](Self::decide) with a [`LutCache`] on hot paths; this
    /// exists for drop-in parity tests and cold call sites.
    pub fn on_sample(
        &mut self,
        sample: &LoadSample,
        table: &OppTable,
        limits: PolicyLimits,
    ) -> OppIndex {
        let lut = DecisionLut::build(table, limits);
        self.decide(sample, &lut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BASELINE_NAMES;
    use eavs_sim::time::SimTime;

    fn table() -> OppTable {
        OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap()
    }

    fn sample(load_pct: f64, cur_index: OppIndex, t_ms: u64, table: &OppTable) -> LoadSample {
        LoadSample {
            now: SimTime::from_millis(t_ms),
            window: SimDuration::from_millis(10),
            busy_fraction: load_pct / 100.0,
            cur_freq: table.freq(cur_index),
            cur_index,
        }
    }

    #[test]
    fn by_name_covers_all_baselines() {
        for name in BASELINE_NAMES {
            let k = GovernorKind::by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(k.name(), name);
        }
        assert!(GovernorKind::by_name("eavs").is_none());
    }

    #[test]
    fn lut_lookup_matches_linear_scan() {
        let t = table();
        for limits in [
            PolicyLimits::full(&t),
            PolicyLimits {
                min_index: 1,
                max_index: 2,
            },
            PolicyLimits {
                min_index: 2,
                max_index: 2,
            },
        ] {
            let lut = DecisionLut::build(&t, limits);
            for target in [
                -1.0,
                0.0,
                250_000.0,
                499_999.0,
                500_000.0,
                500_001.0,
                999_999.9,
                1_000_000.0,
                1_500_000.0,
                1_999_999.0,
                2_000_000.0,
                5_000_000.0,
            ] {
                assert_eq!(
                    lut.lookup(target),
                    crate::governor::lowest_index_for_khz(&t, limits, target),
                    "target {target} limits {limits:?}"
                );
            }
        }
    }

    #[test]
    fn lut_matches_tracks_limit_changes() {
        let t = table();
        let full = PolicyLimits::full(&t);
        let lut = DecisionLut::build(&t, full);
        assert!(lut.matches(&t, full));
        assert!(!lut.matches(
            &t,
            PolicyLimits {
                min_index: 0,
                max_index: 2
            }
        ));
    }

    #[test]
    fn lut_cache_rebuilds_only_on_window_change() {
        let t = table();
        let mut cache = LutCache::default();
        let full = PolicyLimits::full(&t);
        assert_eq!(cache.get(&t, full).max_index(), 3);
        let narrowed = PolicyLimits {
            min_index: 0,
            max_index: 1,
        };
        assert_eq!(cache.get(&t, narrowed).max_index(), 1);
        assert_eq!(cache.get(&t, full).max_index(), 3);
    }

    #[test]
    fn lookup_many_matches_scalar() {
        let t = table();
        let lut = DecisionLut::build(&t, PolicyLimits::full(&t));
        let targets: Vec<f64> = (0..64).map(|i| i as f64 * 40_000.0).collect();
        let mut out = vec![0usize; targets.len()];
        lut.lookup_many(&targets, &mut out);
        for (t_khz, idx) in targets.iter().zip(&out) {
            assert_eq!(*idx, lut.lookup(*t_khz));
        }
    }

    #[test]
    fn enum_tracks_dyn_over_a_mixed_stream() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        for name in BASELINE_NAMES {
            let mut k = GovernorKind::by_name(name).unwrap();
            let mut d = crate::by_name(name).unwrap();
            let mut cur: OppIndex = limits.min_index;
            for step in 0..200u64 {
                let load = ((step * 37) % 101) as f64;
                let s = sample(load, cur, step * 10, &t);
                let a = k.on_sample(&s, &t, limits);
                let b = d.on_sample(&s, &t, limits);
                assert_eq!(a, b, "{name} diverged at step {step}");
                cur = a;
            }
        }
    }
}
