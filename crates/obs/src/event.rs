//! Structured trace events emitted by the session hot path.
//!
//! Events are small, `Copy`, and carry **integers only**: frequencies
//! in kHz, temperatures in milli-°C, factors in milli-units. Keeping
//! floats out of the payload means serialization is exact and the
//! byte-identical-trace guarantee never hinges on float formatting.

/// The pipeline phase an event belongs to.
///
/// Used by [`crate::profile::PhaseProfile`] to bucket per-phase costs
/// and by the Chrome-trace export to lay events out on separate tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Segment transfer over the network model (including retries).
    Download,
    /// Frame decode jobs on the CPU cluster.
    Decode,
    /// Vsync handling and frame presentation.
    Display,
    /// Frequency-governor sampling and decisions.
    Governor,
    /// Batched kernel stepping (SoA shard runner overhead: lane
    /// scheduling, hot-state refresh, scratch recycling).
    BatchStep,
    /// Everything else (playback lifecycle, thermal, migrations...).
    Other,
}

impl Phase {
    /// All phases, in the fixed order used for reports.
    pub const ALL: [Phase; 6] = [
        Phase::Download,
        Phase::Decode,
        Phase::Display,
        Phase::Governor,
        Phase::BatchStep,
        Phase::Other,
    ];

    /// Stable lowercase name, used in JSON reports and Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Download => "download",
            Phase::Decode => "decode",
            Phase::Display => "display",
            Phase::Governor => "governor",
            Phase::BatchStep => "batch_step",
            Phase::Other => "other",
        }
    }
}

/// One structured event on a session timeline.
///
/// Variants mirror the decision points of `core::session`: segment
/// transfers (with the full retry/fault lifecycle), decode jobs (with
/// fault-injected spikes and stalls), vsync outcomes, governor
/// decisions and the frequency changes they cause, and the rarer
/// lifecycle events (playback start/end, cluster migration, thermal
/// ambient steps, background throttling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The simulation engine dispatched a raw event to the session world
    /// (emitted by the `sim::engine` scheduler tap, pre-handler).
    Dispatch {
        /// Static name of the engine event kind.
        kind: &'static str,
    },
    /// A segment transfer began (attempt 0) or was re-begun after a retry.
    DownloadStart {
        /// Segment index within the manifest.
        segment: u64,
        /// 0 for the first try, incremented per retry.
        attempt: u32,
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// A segment transfer completed and passed integrity checks.
    DownloadDone {
        /// Segment index within the manifest.
        segment: u64,
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// Fault injection stalled the transfer before it could start.
    DownloadStalled {
        /// Segment index within the manifest.
        segment: u64,
        /// Attempt that hit the stall.
        attempt: u32,
    },
    /// The retry watchdog fired before the transfer finished.
    DownloadTimeout {
        /// Segment index within the manifest.
        segment: u64,
        /// Attempt that timed out.
        attempt: u32,
    },
    /// A completed transfer failed its integrity check.
    DownloadCorrupt {
        /// Segment index within the manifest.
        segment: u64,
        /// Attempt that delivered corrupt bytes.
        attempt: u32,
    },
    /// A retry was scheduled after a timeout/corruption.
    DownloadRetry {
        /// Segment index within the manifest.
        segment: u64,
        /// The attempt number the retry will run as.
        attempt: u32,
    },
    /// The retry budget ran out; the segment was abandoned.
    DownloadAbandoned {
        /// Segment index within the manifest.
        segment: u64,
    },
    /// A decode job was submitted to the cluster.
    DecodeStart {
        /// Frame index.
        frame: u64,
        /// CPU frequency the job was started at, in kHz.
        freq_khz: u64,
    },
    /// A decode job finished.
    DecodeDone {
        /// Frame index.
        frame: u64,
    },
    /// Fault injection inflated this frame's decode cost.
    DecodeSpike {
        /// Frame index.
        frame: u64,
        /// Cost multiplier in milli-units (1500 = 1.5x).
        factor_milli: u64,
    },
    /// Fault injection paused the decoder.
    DecodeStall {
        /// Frame index that was about to decode.
        frame: u64,
        /// Stall length in microseconds of simulated time.
        resume_in_us: u64,
    },
    /// The governor sampled the pipeline and picked a target.
    GovernorDecision {
        /// Frequency before the decision, in kHz.
        cur_khz: u64,
        /// Frequency the governor asked for, in kHz.
        target_khz: u64,
    },
    /// The applied frequency actually changed.
    FreqChange {
        /// Previous frequency in kHz.
        from_khz: u64,
        /// New frequency in kHz.
        to_khz: u64,
    },
    /// The governor detected a panic race (deadline at risk).
    PanicRace,
    /// A frame was displayed on time.
    VsyncDisplayed {
        /// Frame index.
        frame: u64,
    },
    /// The decoder missed the vsync deadline; the previous frame was held.
    VsyncLate {
        /// Frame index that should have been shown.
        frame: u64,
    },
    /// A frame was dropped by the late-frame policy.
    VsyncDropped {
        /// Frame index that was dropped.
        frame: u64,
    },
    /// Playback starved: the buffer ran dry mid-stream.
    Rebuffer {
        /// Next frame the display was waiting for.
        frame: u64,
    },
    /// Startup buffering finished and playback began.
    PlaybackStart,
    /// The last frame was presented.
    PlaybackEnd {
        /// Final frame index.
        frame: u64,
    },
    /// The decode job migrated between clusters.
    Migration {
        /// `true` if the job moved to the little cluster.
        to_little: bool,
    },
    /// The ambient-temperature schedule stepped.
    AmbientStep {
        /// New ambient temperature in milli-°C.
        milli_c: i64,
    },
    /// A background-load burst started on the secondary core.
    BackgroundBurst,
}

impl TraceEvent {
    /// Stable snake_case kind tag, used as the JSONL `ev` field, the
    /// Chrome-trace event name, and the counter-sink key.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Dispatch { .. } => "dispatch",
            TraceEvent::DownloadStart { .. } => "download_start",
            TraceEvent::DownloadDone { .. } => "download_done",
            TraceEvent::DownloadStalled { .. } => "download_stalled",
            TraceEvent::DownloadTimeout { .. } => "download_timeout",
            TraceEvent::DownloadCorrupt { .. } => "download_corrupt",
            TraceEvent::DownloadRetry { .. } => "download_retry",
            TraceEvent::DownloadAbandoned { .. } => "download_abandoned",
            TraceEvent::DecodeStart { .. } => "decode_start",
            TraceEvent::DecodeDone { .. } => "decode_done",
            TraceEvent::DecodeSpike { .. } => "decode_spike",
            TraceEvent::DecodeStall { .. } => "decode_stall",
            TraceEvent::GovernorDecision { .. } => "governor_decision",
            TraceEvent::FreqChange { .. } => "freq_change",
            TraceEvent::PanicRace => "panic_race",
            TraceEvent::VsyncDisplayed { .. } => "vsync_displayed",
            TraceEvent::VsyncLate { .. } => "vsync_late",
            TraceEvent::VsyncDropped { .. } => "vsync_dropped",
            TraceEvent::Rebuffer { .. } => "rebuffer",
            TraceEvent::PlaybackStart => "playback_start",
            TraceEvent::PlaybackEnd { .. } => "playback_end",
            TraceEvent::Migration { .. } => "migration",
            TraceEvent::AmbientStep { .. } => "ambient_step",
            TraceEvent::BackgroundBurst => "background_burst",
        }
    }

    /// Which pipeline phase this event belongs to.
    pub fn phase(&self) -> Phase {
        match self {
            TraceEvent::DownloadStart { .. }
            | TraceEvent::DownloadDone { .. }
            | TraceEvent::DownloadStalled { .. }
            | TraceEvent::DownloadTimeout { .. }
            | TraceEvent::DownloadCorrupt { .. }
            | TraceEvent::DownloadRetry { .. }
            | TraceEvent::DownloadAbandoned { .. } => Phase::Download,
            TraceEvent::DecodeStart { .. }
            | TraceEvent::DecodeDone { .. }
            | TraceEvent::DecodeSpike { .. }
            | TraceEvent::DecodeStall { .. } => Phase::Decode,
            TraceEvent::VsyncDisplayed { .. }
            | TraceEvent::VsyncLate { .. }
            | TraceEvent::VsyncDropped { .. }
            | TraceEvent::Rebuffer { .. } => Phase::Display,
            TraceEvent::GovernorDecision { .. }
            | TraceEvent::FreqChange { .. }
            | TraceEvent::PanicRace => Phase::Governor,
            TraceEvent::Dispatch { .. }
            | TraceEvent::PlaybackStart
            | TraceEvent::PlaybackEnd { .. }
            | TraceEvent::Migration { .. }
            | TraceEvent::AmbientStep { .. }
            | TraceEvent::BackgroundBurst => Phase::Other,
        }
    }

    /// Appends the event's payload fields as JSON object members
    /// (`,"k":v` pairs) to `out`. Emits nothing for payload-free events.
    ///
    /// Hand-rolled like the rest of the repo's JSON: every field is an
    /// integer, so the output is exact and deterministic.
    pub(crate) fn write_json_fields(&self, out: &mut String) {
        use std::fmt::Write as _;
        match *self {
            TraceEvent::Dispatch { kind } => {
                let _ = write!(out, r#","kind":"{kind}""#);
            }
            TraceEvent::DownloadStart {
                segment,
                attempt,
                bytes,
            } => {
                let _ = write!(
                    out,
                    r#","segment":{segment},"attempt":{attempt},"bytes":{bytes}"#
                );
            }
            TraceEvent::DownloadDone { segment, bytes } => {
                let _ = write!(out, r#","segment":{segment},"bytes":{bytes}"#);
            }
            TraceEvent::DownloadStalled { segment, attempt }
            | TraceEvent::DownloadTimeout { segment, attempt }
            | TraceEvent::DownloadCorrupt { segment, attempt }
            | TraceEvent::DownloadRetry { segment, attempt } => {
                let _ = write!(out, r#","segment":{segment},"attempt":{attempt}"#);
            }
            TraceEvent::DownloadAbandoned { segment } => {
                let _ = write!(out, r#","segment":{segment}"#);
            }
            TraceEvent::DecodeStart { frame, freq_khz } => {
                let _ = write!(out, r#","frame":{frame},"freq_khz":{freq_khz}"#);
            }
            TraceEvent::DecodeDone { frame }
            | TraceEvent::VsyncDisplayed { frame }
            | TraceEvent::VsyncLate { frame }
            | TraceEvent::VsyncDropped { frame }
            | TraceEvent::Rebuffer { frame }
            | TraceEvent::PlaybackEnd { frame } => {
                let _ = write!(out, r#","frame":{frame}"#);
            }
            TraceEvent::DecodeSpike {
                frame,
                factor_milli,
            } => {
                let _ = write!(out, r#","frame":{frame},"factor_milli":{factor_milli}"#);
            }
            TraceEvent::DecodeStall {
                frame,
                resume_in_us,
            } => {
                let _ = write!(out, r#","frame":{frame},"resume_in_us":{resume_in_us}"#);
            }
            TraceEvent::GovernorDecision {
                cur_khz,
                target_khz,
            } => {
                let _ = write!(out, r#","cur_khz":{cur_khz},"target_khz":{target_khz}"#);
            }
            TraceEvent::FreqChange { from_khz, to_khz } => {
                let _ = write!(out, r#","from_khz":{from_khz},"to_khz":{to_khz}"#);
            }
            TraceEvent::Migration { to_little } => {
                let _ = write!(out, r#","to_little":{to_little}"#);
            }
            TraceEvent::AmbientStep { milli_c } => {
                let _ = write!(out, r#","milli_c":{milli_c}"#);
            }
            TraceEvent::PanicRace | TraceEvent::PlaybackStart | TraceEvent::BackgroundBurst => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique_and_snake_case() {
        let events = [
            TraceEvent::Dispatch { kind: "vsync" },
            TraceEvent::DownloadStart {
                segment: 0,
                attempt: 0,
                bytes: 1,
            },
            TraceEvent::DownloadDone {
                segment: 0,
                bytes: 1,
            },
            TraceEvent::DownloadStalled {
                segment: 0,
                attempt: 0,
            },
            TraceEvent::DownloadTimeout {
                segment: 0,
                attempt: 0,
            },
            TraceEvent::DownloadCorrupt {
                segment: 0,
                attempt: 0,
            },
            TraceEvent::DownloadRetry {
                segment: 0,
                attempt: 1,
            },
            TraceEvent::DownloadAbandoned { segment: 0 },
            TraceEvent::DecodeStart {
                frame: 0,
                freq_khz: 1,
            },
            TraceEvent::DecodeDone { frame: 0 },
            TraceEvent::DecodeSpike {
                frame: 0,
                factor_milli: 1500,
            },
            TraceEvent::DecodeStall {
                frame: 0,
                resume_in_us: 5,
            },
            TraceEvent::GovernorDecision {
                cur_khz: 1,
                target_khz: 2,
            },
            TraceEvent::FreqChange {
                from_khz: 1,
                to_khz: 2,
            },
            TraceEvent::PanicRace,
            TraceEvent::VsyncDisplayed { frame: 0 },
            TraceEvent::VsyncLate { frame: 0 },
            TraceEvent::VsyncDropped { frame: 0 },
            TraceEvent::Rebuffer { frame: 0 },
            TraceEvent::PlaybackStart,
            TraceEvent::PlaybackEnd { frame: 0 },
            TraceEvent::Migration { to_little: true },
            TraceEvent::AmbientStep { milli_c: 25_000 },
            TraceEvent::BackgroundBurst,
        ];
        let mut seen = std::collections::HashSet::new();
        for ev in &events {
            let k = ev.kind();
            assert!(seen.insert(k), "duplicate kind {k}");
            assert!(
                k.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "kind {k} is not snake_case"
            );
        }
    }

    #[test]
    fn phases_partition_the_lifecycle() {
        assert_eq!(
            TraceEvent::DownloadRetry {
                segment: 3,
                attempt: 2
            }
            .phase(),
            Phase::Download
        );
        assert_eq!(TraceEvent::DecodeDone { frame: 1 }.phase(), Phase::Decode);
        assert_eq!(TraceEvent::Rebuffer { frame: 9 }.phase(), Phase::Display);
        assert_eq!(TraceEvent::PanicRace.phase(), Phase::Governor);
        assert_eq!(TraceEvent::PlaybackStart.phase(), Phase::Other);
        for p in Phase::ALL {
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn json_fields_are_exact() {
        let mut s = String::new();
        TraceEvent::GovernorDecision {
            cur_khz: 422_400,
            target_khz: 729_600,
        }
        .write_json_fields(&mut s);
        assert_eq!(s, r#","cur_khz":422400,"target_khz":729600"#);

        s.clear();
        TraceEvent::PlaybackStart.write_json_fields(&mut s);
        assert!(s.is_empty());

        s.clear();
        TraceEvent::AmbientStep { milli_c: -5_000 }.write_json_fields(&mut s);
        assert_eq!(s, r#","milli_c":-5000"#);
    }
}
