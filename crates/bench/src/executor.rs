//! Bounded work-stealing executor shared by every experiment sweep.
//!
//! One process-wide pool of worker threads (sized by `EAVS_JOBS`, default =
//! available cores) services every [`run_parallel`] /
//! [`run_parallel_labeled`] call, so nested sweeps and back-to-back figures
//! fan out through the same queues without per-figure thread churn or
//! barriers. Each worker owns a deque: it pops its own work from the front
//! and steals from other workers when idle. Callers waiting on results help
//! execute queued jobs instead of blocking, which both keeps cores busy and
//! makes nested `run_parallel` calls deadlock-free even on a single-worker
//! pool.
//!
//! Results are always returned in input order, and every job is
//! deterministic, so sweep parallelism never changes experiment output.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// One deque per worker. The owner pops from the front; thieves (other
    /// workers and helping callers) steal from the back.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs submitted but not yet taken by anyone.
    queued: AtomicUsize,
    /// Round-robin cursor for spreading submissions across deques.
    submit_cursor: AtomicUsize,
    /// Parking lot for idle workers.
    idle: Mutex<()>,
    wake: Condvar,
}

impl Shared {
    /// Take one queued job, preferring deque `start`. Used by workers (their
    /// own deque first) and by helping callers.
    fn take(&self, start: usize) -> Option<Job> {
        let n = self.queues.len();
        for k in 0..n {
            let i = (start + k) % n;
            let job = {
                let mut q = self.queues[i].lock().expect("executor queue poisoned");
                if k == 0 {
                    q.pop_front()
                } else {
                    q.pop_back()
                }
            };
            if let Some(job) = job {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    fn submit(&self, job: Job) {
        let i = self.submit_cursor.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[i]
            .lock()
            .expect("executor queue poisoned")
            .push_back(job);
        self.queued.fetch_add(1, Ordering::SeqCst);
        // Notify under the idle lock so a worker checking `queued == 0`
        // cannot miss the wakeup between its check and its wait.
        let _guard = self.idle.lock().expect("executor idle lock poisoned");
        self.wake.notify_all();
    }
}

/// The process-wide sweep executor.
pub struct Executor {
    shared: Arc<Shared>,
    workers: usize,
}

impl Executor {
    fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            submit_cursor: AtomicUsize::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("eavs-worker-{i}"))
                .spawn(move || worker_loop(&shared, i))
                .expect("spawn executor worker");
        }
        Executor { shared, workers }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        match shared.take(me) {
            Some(job) => job(),
            None => {
                let guard = shared.idle.lock().expect("executor idle lock poisoned");
                if shared.queued.load(Ordering::SeqCst) == 0 {
                    // Timed wait purely as a belt-and-braces against a missed
                    // notify; correctness comes from checking under the lock.
                    let _ = shared
                        .wake
                        .wait_timeout(guard, Duration::from_millis(100))
                        .expect("executor idle lock poisoned");
                }
            }
        }
    }
}

/// Reads a numeric knob from the environment: `Some(n)` when `name` is
/// set and parses, `None` (after a warning on garbage) otherwise.
///
/// Every `EAVS_*` tuning variable — `EAVS_JOBS` here, `EAVS_CHAOS_CASES`
/// in the chaos fuzz, the fleet campaign knobs, the daemon knobs
/// (`EAVS_DAEMON_ADDR`, `EAVS_DAEMON_THREADS`, `EAVS_CHECKPOINT_EVERY`)
/// and the fleet-prior knobs (`EAVS_NULL_PRIOR`, `EAVS_PRIOR_PATH`) —
/// goes through this one helper so they all share the trim/parse/warn
/// behavior. The warning is emitted once per variable name: sweeps
/// consult knobs per job, and a malformed value must not flood stderr
/// thousands of times. [`REGISTERED_KNOBS`] is the authoritative list.
pub fn env_knob<T: std::str::FromStr>(name: &str) -> Option<T> {
    let v = std::env::var(name).ok()?;
    match v.trim().parse::<T>() {
        Ok(n) => Some(n),
        Err(_) => {
            if first_warning_for(name) {
                eprintln!("warning: ignoring unparsable {name}={v:?}");
            }
            None
        }
    }
}

/// Every `EAVS_*` tuning variable read through [`env_knob`],
/// registered in one place so the warn-once contract can be proven for
/// each of them (a malformed value warns exactly once per variable, no
/// matter how many jobs consult it).
pub const REGISTERED_KNOBS: [&str; 10] = [
    "EAVS_JOBS",
    "EAVS_BATCH",
    "EAVS_CHAOS_CASES",
    "EAVS_SESSION_CACHE_MB",
    "EAVS_POWER_TAIL_MS",
    "EAVS_DAEMON_ADDR",
    "EAVS_DAEMON_THREADS",
    "EAVS_CHECKPOINT_EVERY",
    "EAVS_NULL_PRIOR",
    "EAVS_PRIOR_PATH",
];

/// Default `eavsd` listen/connect address from `EAVS_DAEMON_ADDR`
/// (host:port). Consulted by `eavsd` when `--addr` is absent and by the
/// `eavsctl` daemon-client subcommands when `--addr` is absent, so one
/// exported variable points a whole shell session at the same daemon.
pub fn daemon_addr() -> Option<String> {
    // `String::from_str` is infallible, so the warn-once path of
    // `env_knob` never triggers here; it is still routed through the
    // helper to keep every registered knob on one code path.
    env_knob::<String>("EAVS_DAEMON_ADDR").filter(|s| !s.is_empty())
}

/// `eavsd` HTTP thread-pool size from `EAVS_DAEMON_THREADS`.
pub fn daemon_threads() -> Option<usize> {
    env_knob::<usize>("EAVS_DAEMON_THREADS")
}

/// Checkpoint cadence (shards between writes) from
/// `EAVS_CHECKPOINT_EVERY`. Read by `eavsd` when `--checkpoint-every`
/// is absent; `eavsctl fleet` keeps its explicit flag.
pub fn checkpoint_every() -> Option<u64> {
    env_knob::<u64>("EAVS_CHECKPOINT_EVERY")
}

/// Radio tail-timer override from `EAVS_POWER_TAIL_MS`, milliseconds.
///
/// Consulted by `eavsctl`'s `--power` presets when building a
/// [`eavs_power::DevicePowerModel`], so a fleet operator can sweep the
/// RRC inactivity timer without touching the spec. Goes through
/// [`env_knob`], so a malformed value warns once and falls back to the
/// preset's timer.
pub fn power_tail_ms() -> Option<u64> {
    env_knob::<u64>("EAVS_POWER_TAIL_MS")
}

/// `true` when `EAVS_NULL_PRIOR` is set (to anything): the session
/// cache attaches an explicit *empty* workload prior to every session
/// that has none, proving the attach path is a byte-exact no-op (the
/// fleet-prior mirror of `EAVS_NULL_POWER`). Routed through
/// [`env_knob`] — `String::from_str` is infallible, so the warn-once
/// path never triggers — to keep every registered knob on one code path.
pub fn null_prior() -> bool {
    env_knob::<String>("EAVS_NULL_PRIOR").is_some()
}

/// Fleet-prior file location from `EAVS_PRIOR_PATH`.
///
/// Consulted by `eavsd` for where to persist (and serve) the fleet
/// prior store when `--prior-path` is absent, so one exported variable
/// points the daemon and `eavsctl` scripts at the same
/// `eavs-prior/v1` file.
pub fn prior_path() -> Option<String> {
    env_knob::<String>("EAVS_PRIOR_PATH").filter(|s| !s.is_empty())
}

/// Records that `name` warned; `true` only on the first call per name.
fn first_warning_for(name: &str) -> bool {
    static WARNED: OnceLock<Mutex<std::collections::BTreeSet<String>>> = OnceLock::new();
    WARNED
        .get_or_init(|| Mutex::new(std::collections::BTreeSet::new()))
        .lock()
        .expect("env knob warning set poisoned")
        .insert(name.to_string())
}

/// Batch width from `EAVS_BATCH`: unset or `1` → the default
/// struct-of-arrays width (batching is the default shard runner —
/// byte-identical to scalar, see `eavs_core::batch`); `0` → scalar
/// execution (`None`), the escape hatch CI exercises; any other `n` →
/// `n` lanes. Read once — sweeps consult it per wave.
pub fn batch_width() -> Option<usize> {
    static WIDTH: OnceLock<Option<usize>> = OnceLock::new();
    *WIDTH.get_or_init(|| match env_knob::<usize>("EAVS_BATCH") {
        Some(0) => None,
        None | Some(1) => Some(eavs_core::batch::DEFAULT_WIDTH),
        Some(n) => Some(n),
    })
}

/// Pool size: `EAVS_JOBS` if set (clamped to ≥ 1), else available cores.
fn configured_workers() -> usize {
    if let Some(n) = env_knob::<usize>("EAVS_JOBS") {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// The shared pool, created on first use.
pub fn pool() -> &'static Executor {
    static POOL: OnceLock<Executor> = OnceLock::new();
    POOL.get_or_init(|| Executor::with_workers(configured_workers()))
}

/// Runs independent labeled jobs on the shared pool and returns their results
/// in input order. If a job panics, the panic is re-raised on the caller with
/// the job's label in the message.
///
/// Each simulation job is single-threaded and deterministic, so the sweep
/// parallelism never changes results — only wall-clock.
pub fn run_parallel_labeled<T, F>(jobs: Vec<(String, F)>) -> Vec<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let executor = pool();
    let (tx, rx) = channel::<(usize, std::thread::Result<T>)>();
    let mut labels = Vec::with_capacity(n);
    for (index, (label, job)) in jobs.into_iter().enumerate() {
        labels.push(label);
        let tx = tx.clone();
        executor.shared.submit(Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(job));
            // The receiver may have bailed after an earlier panic.
            let _ = tx.send((index, outcome));
        }));
    }
    drop(tx);

    let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
    let mut received = 0;
    while received < n {
        match rx.try_recv() {
            Ok((index, outcome)) => {
                slots[index] = Some(outcome);
                received += 1;
            }
            Err(TryRecvError::Empty) => {
                // Help drain the pool instead of blocking: this may well run
                // one of our own jobs, and is what makes nested calls safe.
                if let Some(job) = executor.shared.take(0) {
                    job();
                } else {
                    match rx.recv_timeout(Duration::from_millis(1)) {
                        Ok((index, outcome)) => {
                            slots[index] = Some(outcome);
                            received += 1;
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
            Err(TryRecvError::Disconnected) => break,
        }
    }

    slots
        .into_iter()
        .zip(labels)
        .map(|(slot, label)| {
            match slot.unwrap_or_else(|| panic!("job '{label}' was dropped by the executor")) {
                Ok(value) => value,
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    panic!("experiment job '{label}' panicked: {msg}");
                }
            }
        })
        .collect()
}

/// [`run_parallel_labeled`] with positional labels (`job 0`, `job 1`, ...).
pub fn run_parallel<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    run_parallel_labeled(
        jobs.into_iter()
            .enumerate()
            .map(|(i, job)| (format!("job {i}"), job))
            .collect(),
    )
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knob_parses_trims_and_rejects() {
        // Unique variable names so parallel tests cannot race on them.
        std::env::set_var("EAVS_TEST_KNOB_OK", " 12 ");
        assert_eq!(env_knob::<u64>("EAVS_TEST_KNOB_OK"), Some(12));
        std::env::set_var("EAVS_TEST_KNOB_BAD", "twelve");
        assert_eq!(env_knob::<u64>("EAVS_TEST_KNOB_BAD"), None);
        assert_eq!(env_knob::<u64>("EAVS_TEST_KNOB_UNSET"), None);
    }

    #[test]
    fn malformed_knob_warns_only_once() {
        // The warning itself goes to stderr; the once-per-name latch is
        // what we can observe directly.
        assert!(first_warning_for("EAVS_TEST_KNOB_ONCE"));
        assert!(!first_warning_for("EAVS_TEST_KNOB_ONCE"));
        assert!(!first_warning_for("EAVS_TEST_KNOB_ONCE"));
        // A different name gets its own first warning.
        assert!(first_warning_for("EAVS_TEST_KNOB_ONCE_B"));
        // And a malformed knob still parses as None every time.
        std::env::set_var("EAVS_TEST_KNOB_ONCE_C", "not-a-number");
        assert_eq!(env_knob::<u64>("EAVS_TEST_KNOB_ONCE_C"), None);
        assert_eq!(env_knob::<u64>("EAVS_TEST_KNOB_ONCE_C"), None);
    }

    #[test]
    fn knob_registry_matches_the_documented_list() {
        // The docs (env_knob's rustdoc, DESIGN.md §19, the README knob
        // table) enumerate exactly these variables; a knob added to the
        // code without updating the registry — or vice versa — must fail
        // here, not silently drift.
        let documented = [
            "EAVS_JOBS",
            "EAVS_BATCH",
            "EAVS_CHAOS_CASES",
            "EAVS_SESSION_CACHE_MB",
            "EAVS_POWER_TAIL_MS",
            "EAVS_DAEMON_ADDR",
            "EAVS_DAEMON_THREADS",
            "EAVS_CHECKPOINT_EVERY",
            "EAVS_NULL_PRIOR",
            "EAVS_PRIOR_PATH",
        ];
        assert_eq!(REGISTERED_KNOBS, documented);
        // Registry hygiene: EAVS_-prefixed and duplicate-free.
        let unique: std::collections::BTreeSet<&str> = REGISTERED_KNOBS.into_iter().collect();
        assert_eq!(unique.len(), REGISTERED_KNOBS.len());
        for name in REGISTERED_KNOBS {
            assert!(name.starts_with("EAVS_"), "{name} must be EAVS_-prefixed");
        }
    }

    #[test]
    fn every_registered_knob_warns_once() {
        // The once-per-name latch must hold for every registered knob —
        // including the power tail-timer override — so a sweep that
        // consults a malformed knob per job emits one warning, not
        // thousands. The latch is exercised directly (setting the real
        // variables would race with parallel tests that read them).
        for name in REGISTERED_KNOBS {
            let latch = format!("{name}_WARN_ONCE_TEST");
            assert!(first_warning_for(&latch), "{name}: first call must warn");
            assert!(
                !first_warning_for(&latch),
                "{name}: second call must be silent"
            );
            assert!(
                !first_warning_for(&latch),
                "{name}: later calls must stay silent"
            );
        }
        // The knobs are distinct names, so each got its own first warning
        // above; a repeat sweep over all of them stays silent.
        for name in REGISTERED_KNOBS {
            assert!(!first_warning_for(&format!("{name}_WARN_ONCE_TEST")));
        }
    }

    #[test]
    fn empty_job_list() {
        let out: Vec<u32> = run_parallel(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn results_in_input_order_at_scale() {
        let jobs: Vec<_> = (0..200usize).map(|i| move || i * 3).collect();
        assert_eq!(
            run_parallel(jobs),
            (0..200).map(|i| i * 3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nested_run_parallel_does_not_deadlock() {
        let jobs: Vec<_> = (0..4usize)
            .map(|outer| {
                move || {
                    let inner: Vec<_> = (0..4usize).map(|i| move || outer * 10 + i).collect();
                    run_parallel(inner).into_iter().sum::<usize>()
                }
            })
            .collect();
        let sums = run_parallel(jobs);
        assert_eq!(sums, vec![6, 46, 86, 126]);
    }

    #[test]
    fn panic_carries_job_label() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_parallel_labeled(vec![
                (
                    "fine".to_string(),
                    Box::new(|| 1u32) as Box<dyn FnOnce() -> u32 + Send>,
                ),
                (
                    "governor eavs @ 60fps".to_string(),
                    Box::new(|| -> u32 { panic!("boom") }) as Box<dyn FnOnce() -> u32 + Send>,
                ),
            ]);
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = panic_message(payload.as_ref());
        assert!(
            msg.contains("governor eavs @ 60fps") && msg.contains("boom"),
            "panic message should name the job and cause, got: {msg}"
        );
    }
}
