//! `eavsctl` — run EAVS streaming-session simulations from the shell.
//!
//! See `eavsctl help` for usage.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match eavs::cli::parse(&args).and_then(eavs::cli::execute) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("eavsctl: {message}");
            ExitCode::FAILURE
        }
    }
}
