//! Shard workers: local threads and the remote `--worker` loop.
//!
//! Both kinds execute the identical unit of work —
//! [`eavs_fleet::run_shard`] over a claimed `(spec, shard)` — and
//! differ only in transport: local workers call the [`Registry`]
//! directly, remote workers speak the same claim/complete protocol
//! over HTTP (`POST /claim`, then
//! `POST /campaigns/{id}/shards/{shard}` with the partial in
//! `eavs-fleet-checkpoint/v1` text). Because a shard partial is a pure
//! function of `(spec, shard)` and the coordinator folds in shard
//! order, worker count and placement cannot change a single result
//! bit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use eavs_core::report::SessionReport;
use eavs_core::session::SessionBuilder;
use eavs_fleet::spec::CampaignSpec;
use eavs_fleet::{checkpoint, run_shard};

use crate::http::client;
use crate::json;
use crate::registry::Registry;

/// A shard runner shareable across worker threads (the engine —
/// `eavs-bench`'s pooled runner in production, a serial runner in
/// tests — is injected so this crate stays engine-agnostic, like
/// `eavs-fleet` itself).
pub type SharedRunner =
    Arc<dyn Fn(Vec<(String, SessionBuilder)>) -> Vec<Arc<SessionReport>> + Send + Sync>;

/// How long an idle worker sleeps between claim polls.
const IDLE_POLL: Duration = Duration::from_millis(20);

/// Spawns `n` local worker threads draining the registry until `stop`.
pub fn spawn_local_workers(
    registry: Arc<Registry>,
    runner: SharedRunner,
    n: usize,
    stop: Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    (0..n)
        .map(|i| {
            let registry = Arc::clone(&registry);
            let runner = Arc::clone(&runner);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("eavsd-worker-{i}"))
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let Some(claim) = registry.claim() else {
                            std::thread::sleep(IDLE_POLL);
                            continue;
                        };
                        match run_shard(&claim.spec, claim.shard, &*runner) {
                            Ok(out) => {
                                let _ =
                                    registry.complete(&claim.id, claim.shard, out.partial);
                            }
                            Err(e) => registry.fail(&claim.id, claim.shard, &e),
                        }
                    }
                })
                .expect("spawn local worker")
        })
        .collect()
}

/// The remote worker loop: polls `coordinator` (host:port) for claims,
/// executes each shard and ships the partial back. Transient HTTP
/// failures are retried after a short sleep — the coordinator's lease
/// reclaim covers anything lost in between — so the loop survives a
/// coordinator kill/restart. Runs until `stop`.
pub fn run_worker(coordinator: &str, runner: &SharedRunner, stop: &AtomicBool) {
    // Spec cache: claims for a known campaign skip re-decoding.
    let mut specs: HashMap<String, Arc<CampaignSpec>> = HashMap::new();
    while !stop.load(Ordering::SeqCst) {
        let claimed = match client::request_text(coordinator, "POST", "/claim", "") {
            Ok((200, body)) => body,
            Ok((204, _)) => {
                std::thread::sleep(IDLE_POLL);
                continue;
            }
            Ok((status, body)) => {
                eprintln!("eavsd worker: claim returned {status}: {body}");
                std::thread::sleep(Duration::from_millis(200));
                continue;
            }
            Err(_) => {
                // Coordinator unreachable (restarting?) — keep polling.
                std::thread::sleep(Duration::from_millis(200));
                continue;
            }
        };
        if let Err(e) = execute_claim(coordinator, &claimed, &mut specs, runner) {
            eprintln!("eavsd worker: {e}");
            std::thread::sleep(Duration::from_millis(200));
        }
    }
}

fn execute_claim(
    coordinator: &str,
    claimed: &str,
    specs: &mut HashMap<String, Arc<CampaignSpec>>,
    runner: &SharedRunner,
) -> Result<(), String> {
    let v = json::parse(claimed).map_err(|e| format!("claim body: {e}"))?;
    let id = v
        .get("id")
        .and_then(json::Value::as_str)
        .ok_or("claim body: missing id")?
        .to_owned();
    let shard = v
        .get("shard")
        .and_then(json::Value::as_u64)
        .ok_or("claim body: missing shard")?;
    let spec = match specs.get(&id) {
        Some(spec) => Arc::clone(spec),
        None => {
            let spec_value = v.get("spec").ok_or("claim body: missing spec")?;
            let spec = Arc::new(crate::codec::decode_spec_value(spec_value)?);
            specs.insert(id.clone(), Arc::clone(&spec));
            spec
        }
    };
    let out = run_shard(&spec, shard, &**runner)?;
    let body = checkpoint::encode(&out.partial);
    let path = format!("/campaigns/{id}/shards/{shard}");
    let (status, response) = client::request_text(coordinator, "POST", &path, &body)?;
    if status != 200 {
        return Err(format!("complete returned {status}: {response}"));
    }
    Ok(())
}
