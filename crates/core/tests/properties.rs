//! Property-based tests for the EAVS core: predictors, the demand/selector
//! math, governor decision invariants, and the scalar/batched/replayed
//! session-kernel equivalences.

use std::sync::Arc;

use eavs_core::governor::{EavsConfig, EavsGovernor, InFlightMeta, PipelineSnapshot};
use eavs_core::predictor::{
    predictor_by_name, Ewma, FrameMeta, Hybrid, WorkloadPredictor, PREDICTOR_NAMES,
};
use eavs_core::selector::{required_hz, DemandItem, OppSelector};
use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::freq::Cycles;
use eavs_cpu::opp::OppTable;
use eavs_sim::time::{SimDuration, SimTime};
use eavs_video::display::PlaybackPhase;
use eavs_video::frame::FrameType;
use proptest::prelude::*;

fn table() -> OppTable {
    OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap()
}

fn ftype(i: u8) -> FrameType {
    match i % 3 {
        0 => FrameType::I,
        1 => FrameType::P,
        _ => FrameType::B,
    }
}

proptest! {
    /// Predictions are always positive and finite, for every predictor,
    /// after any observation sequence.
    #[test]
    fn predictions_positive_and_finite(
        observations in proptest::collection::vec((0u8..3, 100u32..1_000_000, 1.0f64..100.0), 0..60),
        query_type in 0u8..3,
        query_size in 100u32..1_000_000,
    ) {
        for name in PREDICTOR_NAMES {
            let mut p = predictor_by_name(name).unwrap();
            for &(t, size, mcycles) in &observations {
                p.observe(
                    FrameMeta { index: 0, frame_type: ftype(t), size_bytes: size },
                    Cycles::from_mega(mcycles),
                );
            }
            let pred = p.predict(FrameMeta { index: 0, frame_type: ftype(query_type), size_bytes: query_size });
            prop_assert!(pred.get().is_finite() && pred.get() > 0.0, "{name}: {pred:?}");
        }
    }

    /// The monotonic-deque WindowMax matches a naive sliding-window max
    /// for arbitrary observation sequences.
    #[test]
    fn window_max_matches_naive(
        window in 1usize..20,
        values in proptest::collection::vec(0.1f64..1e8, 1..200),
    ) {
        let mut fast = eavs_core::predictor::WindowMax::new(window);
        let meta = FrameMeta { index: 0, frame_type: FrameType::P, size_bytes: 1000 };
        for (i, &v) in values.iter().enumerate() {
            fast.observe(meta, Cycles::new(v));
            let start = (i + 1).saturating_sub(window);
            let naive = values[start..=i]
                .iter()
                .cloned()
                .fold(f64::MIN, f64::max);
            let got = fast.predict(meta).get();
            prop_assert!(
                (got - naive).abs() < 1e-9 * naive.max(1.0),
                "at {i}: got {got}, naive {naive}"
            );
        }
    }

    /// A predictor trained on a constant per-type cost converges to it.
    #[test]
    fn constant_workload_is_learned(mcycles in 1.0f64..200.0, size in 1_000u32..100_000) {
        let meta = FrameMeta { index: 0, frame_type: FrameType::P, size_bytes: size };
        for name in ["last", "ewma", "window-max", "size-regression"] {
            let mut p = predictor_by_name(name).unwrap();
            for _ in 0..80 {
                p.observe(meta, Cycles::from_mega(mcycles));
            }
            let pred = p.predict(meta).mega();
            prop_assert!(
                (pred - mcycles).abs() / mcycles < 0.02,
                "{name}: predicted {pred} for constant {mcycles}"
            );
        }
    }

    /// required_hz is monotone: adding an item never lowers the rate, and
    /// shrinking slack never lowers it either.
    #[test]
    fn required_hz_monotone(
        items in proptest::collection::vec((1.0f64..100.0, 1u64..2_000), 1..20),
        extra in (1.0f64..100.0, 1u64..2_000),
    ) {
        let now = SimTime::from_millis(0);
        let mut sorted: Vec<(f64, u64)> = items;
        sorted.sort_by_key(|&(_, d)| d);
        let demand: Vec<DemandItem> = sorted
            .iter()
            .map(|&(mc, ms)| DemandItem {
                cycles: Cycles::from_mega(mc),
                deadline: SimTime::from_millis(ms),
            })
            .collect();
        let base = required_hz(now, &demand);
        // Adding one more item at the end (latest deadline) never lowers it.
        let mut more = demand.clone();
        more.push(DemandItem {
            cycles: Cycles::from_mega(extra.0),
            deadline: SimTime::from_millis(sorted.last().unwrap().1 + extra.1),
        });
        prop_assert!(required_hz(now, &more) >= base - 1e-9);
        // Advancing `now` (shrinking all slack) never lowers it.
        let later = required_hz(SimTime::from_micros(500), &demand);
        prop_assert!(later >= base - 1e-9);
    }

    /// The selector output is always within limits, and jumps up
    /// immediately when demand exceeds the current OPP's rate.
    #[test]
    fn selector_sound(
        requests in proptest::collection::vec(0.0f64..4e9, 1..50),
        margin in 0.0f64..0.5,
        hysteresis in 1u32..5,
    ) {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut sel = OppSelector::new(margin, hysteresis);
        let mut cur = 0;
        for required in requests {
            let idx = sel.select(&tbl, limits, cur, required);
            prop_assert!(idx <= limits.max_index);
            // Soundness: if a feasible OPP exists for the padded demand,
            // the chosen one satisfies it (up-switches are never delayed).
            let padded = required * (1.0 + margin);
            if padded <= tbl.max_freq().hz() as f64 && idx < limits.max_index {
                prop_assert!(
                    tbl.freq(idx).hz() as f64 >= padded - 1.0,
                    "chose {idx} ({}) for padded demand {padded:.3e}",
                    tbl.freq(idx)
                );
            }
            cur = idx;
        }
    }

    /// Governor decisions are always legal OPP indices, in any phase.
    #[test]
    fn governor_decisions_in_range(
        decoded in 0usize..8,
        upcoming in 0usize..16,
        phase in 0u8..3,
        executed_mega in 0.0f64..50.0,
        trained_mega in 1.0f64..60.0,
    ) {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut g = EavsGovernor::new(Box::new(Ewma::default()), EavsConfig::default());
        let meta = FrameMeta { index: 0, frame_type: FrameType::P, size_bytes: 10_000 };
        g.observe_decode(meta, Cycles::from_mega(trained_mega));
        let snap = PipelineSnapshot {
            now: SimTime::from_millis(50),
            phase: match phase {
                0 => PlaybackPhase::Startup,
                1 => PlaybackPhase::Playing,
                _ => PlaybackPhase::Rebuffering,
            },
            next_vsync: SimTime::from_millis(60),
            frame_period: SimDuration::from_millis(33),
            decoded_len: decoded,
            in_flight: Some(InFlightMeta {
                meta,
                executed: Cycles::from_mega(executed_mega),
            }),
            upcoming: vec![meta; upcoming],
        };
        let idx = g.decide(&snap, &tbl, limits, 1);
        prop_assert!(idx <= limits.max_index);
    }

    /// More decoded slack never *raises* the chosen OPP (fresh governors,
    /// identical demand otherwise).
    #[test]
    fn slack_monotonicity(
        upcoming in 1usize..10,
        trained_mega in 5.0f64..60.0,
        d1 in 0usize..6,
        extra in 1usize..6,
    ) {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let snap_with = |decoded: usize| PipelineSnapshot {
            now: SimTime::from_millis(50),
            phase: PlaybackPhase::Playing,
            next_vsync: SimTime::from_millis(60),
            frame_period: SimDuration::from_millis(33),
            decoded_len: decoded,
            in_flight: None,
            upcoming: vec![FrameMeta { index: 0, frame_type: FrameType::P, size_bytes: 10_000 }; upcoming],
        };
        let fresh = || {
            let mut g = EavsGovernor::new(
                Box::new(Hybrid::default()),
                EavsConfig { down_hysteresis: 1, ..EavsConfig::default() },
            );
            g.observe_decode(
                FrameMeta { index: 0, frame_type: FrameType::P, size_bytes: 10_000 },
                Cycles::from_mega(trained_mega),
            );
            g
        };
        let shallow = fresh().decide(&snap_with(d1), &tbl, limits, 3);
        let deep = fresh().decide(&snap_with(d1 + extra), &tbl, limits, 3);
        prop_assert!(deep <= shallow, "deep {deep} > shallow {shallow}");
    }
}

// ---------------------------------------------------------------------------
// Session-kernel equivalences: scalar vs batched SoA, full vs replayed.
// ---------------------------------------------------------------------------

use eavs_core::session::{ReplayCtl, SessionBuilder, StreamingSession};
use eavs_faults::{DecodeSpike, FaultPlan, SegmentFault};
use eavs_trace::content::ContentProfile;
use eavs_video::manifest::Manifest;

/// One randomized session spec, re-buildable as many times as needed
/// (SessionBuilder is consumed by `run`).
#[derive(Clone, Debug)]
struct SpecDraw {
    seed: u64,
    kbps: u32,
    fps: u32,
    secs: u64,
    content: u8,
    margin: f64,
    hysteresis: u32,
    corrupt_segment: Option<u32>,
    spike_frame: Option<u32>,
}

/// Hand-rolled strategy (the vendored proptest has no `prop_map`).
#[derive(Debug)]
struct SpecStrategy;

impl Strategy for SpecStrategy {
    type Value = SpecDraw;

    fn sample(&self, rng: &mut proptest::test_runner::TestRng) -> SpecDraw {
        let fps = [24u32, 30, 60][(0usize..3).sample(rng)];
        // Over-drawn sentinel values mean "no fault of that kind".
        let corrupt = (0u32..3).sample(rng);
        let spike = (0u32..61).sample(rng);
        SpecDraw {
            seed: (0u64..1_000).sample(rng),
            kbps: (500u32..8_000).sample(rng),
            fps,
            secs: (3u64..8).sample(rng),
            content: (0u8..3).sample(rng),
            margin: (0.0f64..0.5).sample(rng),
            hysteresis: (1u32..6).sample(rng),
            corrupt_segment: (corrupt < 2).then_some(corrupt),
            spike_frame: (spike < 60).then_some(spike),
        }
    }
}

impl SpecDraw {
    fn faults(&self) -> FaultPlan {
        let mut plan = FaultPlan::default();
        if let Some(seg) = self.corrupt_segment {
            plan.corruption.push(SegmentFault::once(seg.into()));
        }
        if let Some(frame) = self.spike_frame {
            plan.decode_spikes.push(DecodeSpike {
                frame: frame.into(),
                factor: 2.5,
            });
        }
        plan
    }

    fn builder(&self, manifest: &Arc<Manifest>) -> SessionBuilder {
        let gov = eavs_core::session::GovernorChoice::Eavs(EavsGovernor::new(
            Box::new(Hybrid::default()),
            EavsConfig {
                margin: self.margin,
                down_hysteresis: self.hysteresis,
                ..EavsConfig::default()
            },
        ));
        let content = match self.content {
            0 => ContentProfile::Film,
            1 => ContentProfile::Animation,
            _ => ContentProfile::Sport,
        };
        let mut b = StreamingSession::builder(gov)
            .manifest(Arc::clone(manifest))
            .content(content)
            .seed(self.seed);
        let faults = self.faults();
        if !faults.is_empty() {
            b = b.faults(faults);
        }
        b
    }

    fn manifest(&self) -> Arc<Manifest> {
        Arc::new(Manifest::single(
            self.kbps,
            1280,
            720,
            SimDuration::from_secs(self.secs),
            self.fps,
        ))
    }
}

proptest! {
    // Session runs are costly; a modest case count still covers the
    // interesting corners (faulted lanes, mixed durations, odd widths).
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The batched SoA kernel is byte-identical to the scalar loop for
    /// arbitrary specs (including faulted ones) at arbitrary widths.
    #[test]
    fn batch_kernel_equivalent_to_scalar(
        specs in proptest::collection::vec(SpecStrategy, 1..6),
        width in 1usize..9,
    ) {
        let manifests: Vec<Arc<Manifest>> = specs.iter().map(SpecDraw::manifest).collect();
        let scalar: Vec<String> = specs
            .iter()
            .zip(&manifests)
            .map(|(s, m)| format!("{:?}", s.builder(m).run()))
            .collect();
        let fingerprints: Vec<_> = specs
            .iter()
            .zip(&manifests)
            .map(|(s, m)| s.builder(m).fingerprint())
            .collect();
        let batched = eavs_core::run_batch(
            specs.iter().zip(&manifests).map(|(s, m)| s.builder(m)),
            width,
        );
        prop_assert_eq!(batched.len(), specs.len());
        for (i, report) in batched.iter().enumerate() {
            prop_assert_eq!(&format!("{:?}", report), &scalar[i], "spec {}: {:?}", i, specs[i]);
            let fp_after = specs[i].builder(&manifests[i]).fingerprint();
            prop_assert_eq!(&fingerprints[i], &fp_after);
        }
    }

    /// Injecting a recorded decision timeline into a knob variant (and
    /// under fault plans that force mid-session divergence) reproduces
    /// the variant's full simulation byte for byte.
    #[test]
    fn replay_equivalent_to_full_simulation(spec in SpecStrategy, rec_seed in 0u64..4) {
        let manifest = spec.manifest();
        // Record a clean (fault-free) base session with default knobs.
        let base = SpecDraw {
            margin: 0.15,
            hysteresis: 3,
            corrupt_segment: None,
            spike_frame: None,
            ..spec.clone()
        };
        // Keys are process-wide and first-write-wins; salt the seed so
        // every proptest case records a fresh timeline.
        let salt = 10_000 + rec_seed * 1_000 + base.seed;
        let base = SpecDraw { seed: salt, ..base };
        let variant = SpecDraw { seed: salt, ..spec.clone() };
        let key = base
            .builder(&manifest)
            .replay_prefix()
            .expect("eavs sessions have a replay prefix");
        let recorded = base
            .builder(&manifest)
            .replay(ReplayCtl::Record(key))
            .run();
        prop_assert!(recorded.events_processed > 0);
        let full = format!("{:?}", variant.builder(&manifest).run());
        let timeline = eavs_trace::memo::decision_timeline(key)
            .expect("clean recording must be published");
        let injected = format!(
            "{:?}",
            variant
                .builder(&manifest)
                .replay(ReplayCtl::Inject(timeline))
                .run()
        );
        prop_assert_eq!(injected, full, "variant {:?}", variant);
    }
}
