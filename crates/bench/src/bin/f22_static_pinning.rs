//! Regenerates experiment `f22_static_pinning` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f22_static_pinning")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
