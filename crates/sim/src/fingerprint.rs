//! Stable content fingerprinting for memoization keys.
//!
//! A [`Fingerprinter`] accumulates the configuration of a simulation run —
//! scalars, strings, raw bytes — into a 128-bit FNV-1a hash. Equal input
//! sequences always produce equal [`Fingerprint`]s, across processes and
//! across runs, because the hash depends only on the written bytes (no
//! pointer identity, no randomized hasher state).
//!
//! Components that carry *learned* state (a governor that has already taken
//! samples, a predictor with history) cannot be described by their
//! configuration alone; they call [`Fingerprinter::mark_opaque`], which
//! poisons the fingerprint so [`Fingerprinter::finish`] returns `None` and
//! callers skip memoization instead of serving a stale result.
//!
//! Writes are domain-separated: every variable-length value is
//! length-prefixed, and compound writers should prepend a short tag string
//! so that, e.g., `("ab", "c")` and `("a", "bc")` hash differently.
//!
//! ```
//! use eavs_sim::fingerprint::Fingerprinter;
//!
//! let mut a = Fingerprinter::new("example/v1");
//! a.write_str("ondemand");
//! a.write_u64(42);
//! let mut b = Fingerprinter::new("example/v1");
//! b.write_str("ondemand");
//! b.write_u64(42);
//! assert_eq!(a.finish(), b.finish());
//! assert!(a.finish().is_some());
//! ```

/// A stable 128-bit content hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// Incrementally hashes configuration into a [`Fingerprint`].
#[derive(Clone, Debug)]
pub struct Fingerprinter {
    h: u128,
    opaque: bool,
}

impl Fingerprinter {
    /// Starts a fingerprint under a domain tag (e.g. `"eavs-session/v1"`).
    /// Different domains never collide by construction of the tag write.
    pub fn new(domain: &str) -> Self {
        let mut fp = Fingerprinter {
            h: FNV128_OFFSET,
            opaque: false,
        };
        fp.write_str(domain);
        fp
    }

    /// Hashes raw bytes (length-prefixed, so adjacent writes can't merge).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_raw(&(bytes.len() as u64).to_le_bytes());
        self.write_raw(bytes);
    }

    fn write_raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u128::from(b);
            self.h = self.h.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Hashes a UTF-8 string (length-prefixed).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Hashes a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_raw(&[v]);
    }

    /// Hashes a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Hashes a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Hashes a `usize` (widened to 64 bits for portability).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Hashes an `f64` by its IEEE-754 bit pattern. `NaN`s with different
    /// payloads hash differently; configuration values are never `NaN`.
    pub fn write_f64(&mut self, v: f64) {
        self.write_raw(&v.to_bits().to_le_bytes());
    }

    /// Hashes a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Hashes an optional `u64` with a presence tag.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.write_u8(0),
            Some(x) => {
                self.write_u8(1);
                self.write_u64(x);
            }
        }
    }

    /// Declares the fingerprinted object uncacheable (e.g. it carries
    /// learned state). [`finish`](Self::finish) will return `None`.
    pub fn mark_opaque(&mut self) {
        self.opaque = true;
    }

    /// Whether [`mark_opaque`](Self::mark_opaque) has been called.
    pub fn is_opaque(&self) -> bool {
        self.opaque
    }

    /// The accumulated fingerprint, or `None` if any component was opaque.
    pub fn finish(&self) -> Option<Fingerprint> {
        if self.opaque {
            None
        } else {
            Some(Fingerprint(self.h))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(build: impl FnOnce(&mut Fingerprinter)) -> Option<Fingerprint> {
        let mut f = Fingerprinter::new("test/v1");
        build(&mut f);
        f.finish()
    }

    #[test]
    fn equal_writes_equal_fingerprints() {
        let a = fp(|f| {
            f.write_str("governor");
            f.write_u64(7);
            f.write_f64(0.25);
        });
        let b = fp(|f| {
            f.write_str("governor");
            f.write_u64(7);
            f.write_f64(0.25);
        });
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn different_writes_differ() {
        let a = fp(|f| f.write_u64(1));
        let b = fp(|f| f.write_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn length_prefix_prevents_boundary_merging() {
        let a = fp(|f| {
            f.write_str("ab");
            f.write_str("c");
        });
        let b = fp(|f| {
            f.write_str("a");
            f.write_str("bc");
        });
        assert_ne!(a, b);
    }

    #[test]
    fn domains_separate() {
        let a = Fingerprinter::new("x/v1").finish();
        let b = Fingerprinter::new("y/v1").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn opaque_poisons() {
        let a = fp(|f| {
            f.write_u64(1);
            f.mark_opaque();
        });
        assert_eq!(a, None);
    }

    #[test]
    fn bool_and_option_are_tagged() {
        let a = fp(|f| f.write_opt_u64(None));
        let b = fp(|f| f.write_opt_u64(Some(0)));
        assert_ne!(a, b);
        let c = fp(|f| f.write_bool(false));
        let d = fp(|f| f.write_bool(true));
        assert_ne!(c, d);
    }

    #[test]
    fn display_is_32_hex_digits() {
        let f = fp(|f| f.write_u64(9)).unwrap();
        let s = format!("{f}");
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn f64_sign_matters() {
        let a = fp(|f| f.write_f64(0.0));
        let b = fp(|f| f.write_f64(-0.0));
        assert_ne!(a, b);
    }
}
