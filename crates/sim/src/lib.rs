//! # eavs-sim — deterministic discrete-event simulation kernel
//!
//! The simulation substrate underneath the EAVS reproduction of
//! *Energy-Aware CPU Frequency Scaling for Mobile Video Streaming*
//! (ICDCS 2017). All higher layers — the CPU/DVFS model, video pipeline,
//! network and governors — are passive state machines advanced by a single
//! event loop built from these pieces:
//!
//! * [`time`] — integer-nanosecond [`time::SimTime`] /
//!   [`time::SimDuration`] clock types.
//! * [`queue`] — a priority event queue with stable FIFO ordering for
//!   same-instant events and O(log n) cancellation.
//! * [`engine`] — the [`engine::Simulation`] loop driving a
//!   user [`engine::World`].
//! * [`rng`] — seedable, forkable deterministic randomness with the
//!   distributions used by the workload generators.
//! * [`timer`] — periodic-tick and inactivity-timeout helpers.
//! * [`trace`] — an optional bounded trace log for timeline debugging.
//!
//! Determinism is a design requirement: given the same seed and
//! configuration, every experiment in the repository reproduces
//! bit-identically.
//!
//! ## Example
//!
//! ```
//! use eavs_sim::prelude::*;
//!
//! struct Pinger { count: u32 }
//! impl World for Pinger {
//!     type Event = ();
//!     fn handle(&mut self, sched: &mut Scheduler<()>, _: ()) {
//!         self.count += 1;
//!         if self.count < 3 {
//!             sched.schedule_in(SimDuration::from_secs(1), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Pinger { count: 0 });
//! sim.scheduler().schedule_at(SimTime::ZERO, ());
//! sim.run();
//! assert_eq!(sim.world().count, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fingerprint;
pub mod queue;
pub mod rng;
pub mod time;
pub mod timer;
pub mod trace;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::engine::{RunOutcome, Scheduler, Simulation, StepOutcome, World};
    pub use crate::fingerprint::{Fingerprint, Fingerprinter};
    pub use crate::queue::{EventId, EventQueue};
    pub use crate::rng::SimRng;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::timer::{InactivityTimer, Periodic};
    pub use crate::trace::{TraceEntry, TraceLog};
}

pub use engine::{RunOutcome, Scheduler, Simulation, StepOutcome, World};
pub use fingerprint::{Fingerprint, Fingerprinter};
pub use queue::{EventId, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
