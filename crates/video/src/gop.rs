//! Group-of-pictures structure.
//!
//! Determines the I/P/B pattern of a stream in decode order. Workload
//! generators use it to assign frame types; the periodic I-frame spikes it
//! produces are the main reason naive per-sample governors mispredict.

use crate::frame::FrameType;

/// A repeating GOP pattern.
///
/// A GOP of length `gop_length` starts with an I frame; the remainder
/// alternates `b_per_p` B frames after each P frame (closed GOP, decode
/// order), e.g. `gop_length=12, b_per_p=2` → `I P B B P B B P B B P B`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GopStructure {
    gop_length: u32,
    b_per_p: u32,
}

impl GopStructure {
    /// Creates a structure.
    ///
    /// # Panics
    ///
    /// Panics if `gop_length == 0`.
    pub fn new(gop_length: u32, b_per_p: u32) -> Self {
        assert!(gop_length > 0, "GOP length must be positive");
        GopStructure {
            gop_length,
            b_per_p,
        }
    }

    /// A typical streaming GOP: 2-second GOP at 30 fps with 2 B frames.
    pub fn streaming_default() -> Self {
        GopStructure::new(60, 2)
    }

    /// An all-intra structure (e.g. editing codecs): every frame is I.
    pub fn all_intra() -> Self {
        GopStructure::new(1, 0)
    }

    /// A low-latency structure with no B frames: `I P P P ...`.
    pub fn low_latency(gop_length: u32) -> Self {
        GopStructure::new(gop_length, 0)
    }

    /// GOP length in frames.
    pub fn gop_length(self) -> u32 {
        self.gop_length
    }

    /// The frame type at global decode-order position `index`.
    pub fn frame_type_at(self, index: u64) -> FrameType {
        let pos = (index % u64::from(self.gop_length)) as u32;
        if pos == 0 {
            return FrameType::I;
        }
        if self.b_per_p == 0 {
            return FrameType::P;
        }
        // After the I frame, repeat [P, B*b_per_p].
        if (pos - 1).is_multiple_of(self.b_per_p + 1) {
            FrameType::P
        } else {
            FrameType::B
        }
    }

    /// The fraction of frames of each type over one GOP, indexed by
    /// [`FrameType::index`].
    pub fn type_mix(self) -> [f64; 3] {
        let mut counts = [0u32; 3];
        for i in 0..u64::from(self.gop_length) {
            counts[self.frame_type_at(i).index()] += 1;
        }
        let total = f64::from(self.gop_length);
        [
            f64::from(counts[0]) / total,
            f64::from(counts[1]) / total,
            f64::from(counts[2]) / total,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_repeats_with_i_at_gop_start() {
        let g = GopStructure::new(12, 2);
        assert_eq!(g.frame_type_at(0), FrameType::I);
        assert_eq!(g.frame_type_at(12), FrameType::I);
        assert_eq!(g.frame_type_at(24), FrameType::I);
        assert_eq!(g.frame_type_at(1), FrameType::P);
        assert_eq!(g.frame_type_at(2), FrameType::B);
        assert_eq!(g.frame_type_at(3), FrameType::B);
        assert_eq!(g.frame_type_at(4), FrameType::P);
    }

    #[test]
    fn no_b_frames_pattern() {
        let g = GopStructure::low_latency(4);
        let types: Vec<FrameType> = (0..8).map(|i| g.frame_type_at(i)).collect();
        assert_eq!(
            types,
            vec![
                FrameType::I,
                FrameType::P,
                FrameType::P,
                FrameType::P,
                FrameType::I,
                FrameType::P,
                FrameType::P,
                FrameType::P
            ]
        );
    }

    #[test]
    fn all_intra_is_all_i() {
        let g = GopStructure::all_intra();
        assert!((0..100).all(|i| g.frame_type_at(i) == FrameType::I));
        assert_eq!(g.type_mix(), [1.0, 0.0, 0.0]);
    }

    #[test]
    fn type_mix_sums_to_one() {
        for g in [
            GopStructure::streaming_default(),
            GopStructure::new(12, 2),
            GopStructure::new(30, 1),
        ] {
            let mix = g.type_mix();
            assert!((mix.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(mix[0] > 0.0, "every GOP has an I frame");
        }
    }

    #[test]
    fn streaming_default_mostly_b() {
        let mix = GopStructure::streaming_default().type_mix();
        assert!(mix[2] > mix[1] && mix[1] > mix[0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gop_rejected() {
        GopStructure::new(0, 2);
    }
}
