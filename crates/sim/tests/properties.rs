//! Property-based tests for the simulation kernel.

use eavs_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Instant/duration arithmetic round-trips.
    #[test]
    fn time_add_then_sub_roundtrips(base in 0u64..u64::MAX / 4, delta in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(base);
        let d = SimDuration::from_nanos(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
    }

    /// Duration addition is commutative and associative (absent overflow).
    #[test]
    fn duration_monoid(a in 0u64..1u64 << 60, b in 0u64..1u64 << 60, c in 0u64..1u64 << 60) {
        let (a, b, c) = (
            SimDuration::from_nanos(a >> 2),
            SimDuration::from_nanos(b >> 2),
            SimDuration::from_nanos(c >> 2),
        );
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + SimDuration::ZERO, a);
    }

    /// Popping the queue yields events in non-decreasing time order, and
    /// same-time events preserve insertion order.
    #[test]
    fn queue_pop_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated for same-time events");
                }
            }
            last = Some((t, i));
        }
    }

    /// Cancelled events never pop; exactly the survivors pop.
    #[test]
    fn queue_cancellation(
        times in proptest::collection::vec(0u64..100, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.push(SimTime::from_nanos(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push(i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            popped.push(i);
        }
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// The engine's clock never moves backwards regardless of scheduling
    /// pattern, and processes exactly the scheduled number of events.
    #[test]
    fn engine_clock_monotone(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        struct Chain {
            remaining: Vec<u64>,
            observed: Vec<SimTime>,
        }
        impl World for Chain {
            type Event = ();
            fn handle(&mut self, sched: &mut Scheduler<()>, _: ()) {
                self.observed.push(sched.now());
                if let Some(d) = self.remaining.pop() {
                    sched.schedule_in(SimDuration::from_nanos(d), ());
                }
            }
        }
        let n = delays.len();
        let mut sim = Simulation::new(Chain { remaining: delays, observed: Vec::new() });
        sim.scheduler().schedule_at(SimTime::ZERO, ());
        sim.run();
        let observed = &sim.world().observed;
        prop_assert_eq!(observed.len(), n + 1);
        for w in observed.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    /// Forked RNG streams are reproducible.
    #[test]
    fn rng_fork_reproducible(seed in any::<u64>(), label in "[a-z]{1,8}") {
        let mut a = SimRng::new(seed).fork(&label);
        let mut b = SimRng::new(seed).fork(&label);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// uniform_u64 stays within bounds for arbitrary ranges.
    #[test]
    fn rng_uniform_u64_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut r = SimRng::new(seed);
        for _ in 0..64 {
            let v = r.uniform_u64(lo, lo + span);
            prop_assert!(v >= lo && v < lo + span);
        }
    }

    /// Periodic tick times are exactly start + k*period.
    #[test]
    fn periodic_exact(start in 0u64..1u64 << 40, period in 1u64..1u64 << 20, k in 0u64..64) {
        let mut p = Periodic::starting_at(SimTime::from_nanos(start), SimDuration::from_nanos(period));
        for i in 0..=k {
            let t = p.advance();
            prop_assert_eq!(t.as_nanos(), start + i * period);
        }
    }
}
