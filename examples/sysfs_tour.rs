//! A tour of the simulated cpufreq sysfs interface.
//!
//! Walks the `/sys/devices/system/cpu/cpu0/cpufreq` file protocol exactly
//! as a shell session on a rooted phone would: inspect the table, switch
//! governors, pin a speed through `scaling_setspeed`, and read
//! `stats/time_in_state` afterwards.
//!
//! ```text
//! cargo run --release --example sysfs_tour
//! ```

use eavs::cpu::soc::SocModel;
use eavs::sim::time::SimTime;
use eavs::sysfs::CpufreqFs;

fn main() {
    let mut cluster = SocModel::Flagship2016.build_cluster();
    let mut fs = CpufreqFs::new(&cluster);
    let mut now = SimTime::ZERO;
    let shell = |fs: &mut CpufreqFs,
                 cluster: &mut eavs::cpu::cluster::Cluster,
                 now: SimTime,
                 cmd: &str,
                 arg: Option<&str>| {
        match arg {
            Some(value) => {
                println!("$ echo {value} > {cmd}");
                match fs.write(cluster, cmd, value, now) {
                    Ok(()) => {}
                    Err(e) => println!("sh: {e}"),
                }
            }
            None => {
                println!("$ cat {cmd}");
                match fs.read(cluster, cmd, now) {
                    Ok(text) => print!("{text}"),
                    Err(e) => println!("cat: {e}"),
                }
            }
        }
    };

    shell(&mut fs, &mut cluster, now, "scaling_driver", None);
    shell(
        &mut fs,
        &mut cluster,
        now,
        "scaling_available_frequencies",
        None,
    );
    shell(
        &mut fs,
        &mut cluster,
        now,
        "scaling_available_governors",
        None,
    );
    shell(&mut fs, &mut cluster, now, "scaling_governor", None);

    // Writing setspeed under the wrong governor fails like on real hw.
    shell(
        &mut fs,
        &mut cluster,
        now,
        "scaling_setspeed",
        Some("902000"),
    );

    shell(
        &mut fs,
        &mut cluster,
        now,
        "scaling_governor",
        Some("userspace"),
    );
    shell(
        &mut fs,
        &mut cluster,
        now,
        "scaling_setspeed",
        Some("902000"),
    );

    now = SimTime::from_secs(5);
    cluster.advance(now);
    shell(&mut fs, &mut cluster, now, "scaling_cur_freq", None);

    shell(
        &mut fs,
        &mut cluster,
        now,
        "scaling_setspeed",
        Some("2150000"),
    );
    now = SimTime::from_secs(8);
    cluster.advance(now);

    shell(&mut fs, &mut cluster, now, "stats/time_in_state", None);
    shell(&mut fs, &mut cluster, now, "stats/total_trans", None);
}
