//! Deterministic case runner and RNG backing the [`proptest!`](crate::proptest)
//! macro.

use std::fmt::Debug;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::strategy::Strategy;

/// Runner configuration; mirrors the fields of upstream's `ProptestConfig`
/// that this repo uses.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required before the test succeeds.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, like upstream; override with the `PROPTEST_CASES` env var.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property was violated; the whole test fails.
    Fail(String),
    /// A `prop_assume!` precondition failed; the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic splitmix64 generator. Each test gets a seed derived from its
/// name, so failures reproduce run-to-run without recording a seed file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from an arbitrary string (FNV-1a of the test name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drive one property: sample inputs until `config.cases` cases pass, a case
/// fails, or the rejection budget is exhausted.
///
/// The failing input is printed (`Debug`) before the panic so it can be turned
/// into a regression test; sampling is deterministic per test name.
pub fn run_cases<S, F>(config: &ProptestConfig, name: &str, strategy: &S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(name);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let reject_budget = config.cases as u64 * 20 + 1000;
    while passed < config.cases {
        let input = strategy.sample(&mut rng);
        let shown = format!("{input:?}");
        match catch_unwind(AssertUnwindSafe(|| body(input))) {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejected += 1;
                if rejected > reject_budget {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected} rejections for {passed} passes)"
                    );
                }
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "proptest '{name}' failed after {passed} passing case(s): {msg}\n\
                     failing input: {shown}"
                );
            }
            Err(payload) => {
                eprintln!("proptest '{name}': case panicked; failing input: {shown}");
                resume_unwind(payload);
            }
        }
    }
}
