//! Hand-rolled HTTP/1.1, std-only.
//!
//! The workspace is offline — no tokio, no hyper — and the control
//! plane's needs are tiny: small JSON bodies, one request per
//! connection (`Connection: close`), a handful of concurrent clients.
//! So: a [`std::net::TcpListener`] accept loop feeding a **bounded**
//! channel drained by a fixed pool of worker threads. Bounded matters —
//! a flood of connections blocks in the accept thread instead of
//! growing an unbounded queue.
//!
//! Request bodies are capped at [`MAX_BODY_BYTES`]; anything larger is
//! answered `413` without being read. Headers are capped too. The
//! matching [`client`] speaks exactly this dialect and is what
//! `eavsctl` and worker mode use.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request body accepted, bytes. Campaign specs are ~2 KiB;
/// 1 MiB leaves two orders of magnitude of headroom while keeping a
/// hostile client from ballooning memory.
pub const MAX_BODY_BYTES: u64 = 1 << 20;

/// Largest request head (request line + headers) accepted, bytes.
const MAX_HEAD_BYTES: u64 = 16 * 1024;

/// Per-connection socket timeout. Generous: a coordinator may stall a
/// worker's claim briefly while folding, but nothing legitimate holds a
/// socket for tens of seconds.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Percent-decoded-free path, query string stripped.
    pub path: String,
    /// The body (empty when none was sent).
    pub body: Vec<u8>,
}

/// A response to write.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json".to_owned(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".to_owned(),
            body: body.into().into_bytes(),
        }
    }

    /// A structured JSON error body: `{"error": ..., "detail": ...}`.
    pub fn error(status: u16, error: &str, detail: &str) -> Response {
        let body = crate::json::Value::Obj(vec![
            ("error".into(), crate::json::Value::str(error)),
            ("detail".into(), crate::json::Value::str(detail)),
        ])
        .render();
        Response::json(status, body)
    }
}

fn status_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// The handler the server dispatches every request to.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// A running HTTP server: accept thread plus a fixed worker pool.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving on
    /// `threads` worker threads.
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound.
    pub fn bind(addr: &str, threads: usize, handler: Handler) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let threads = threads.max(1);
        // Bounded hand-off: at most 2× pool depth of parked sockets.
        let (tx, rx) = sync_channel::<TcpStream>(threads * 2);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("eavsd-http-{i}"))
                    .spawn(move ||

                        worker_loop(&rx, &handler))
                    .expect("spawn http worker"),
            );
        }

        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("eavsd-accept".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // A send fails only when all workers are gone.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // Dropping `tx` wakes every worker with a closed channel.
            })
            .expect("spawn http acceptor");

        Ok(Server {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers and joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, handler: &Handler) {
    loop {
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(stream) = stream else { return };
        let _ = serve_connection(stream, handler);
    }
}

fn serve_connection(stream: TcpStream, handler: &Handler) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let response = match read_request(&mut reader) {
        Ok(request) => handler(request),
        Err(ReadError::TooLarge) => Response::error(
            413,
            "payload too large",
            &format!("request bodies are capped at {MAX_BODY_BYTES} bytes"),
        ),
        Err(ReadError::Malformed(detail)) => Response::error(400, "malformed request", &detail),
        Err(ReadError::Io(e)) => return Err(e),
    };
    let mut stream = reader.into_inner();
    write_response(&mut stream, &response)
}

enum ReadError {
    TooLarge,
    Malformed(String),
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut line = String::new();
    take_line(reader, &mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing request target".into()))?;
    let path = target.split('?').next().unwrap_or("").to_owned();

    let mut content_length: u64 = 0;
    let mut head_bytes = line.len() as u64;
    loop {
        line.clear();
        take_line(reader, &mut line)?;
        head_bytes += line.len() as u64 + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge);
        }
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length as usize];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

/// Reads one CRLF-terminated line (without the terminator).
fn take_line(reader: &mut BufReader<TcpStream>, line: &mut String) -> Result<(), ReadError> {
    line.clear();
    let n = reader.read_line(line)?;
    if n == 0 {
        return Err(ReadError::Malformed("connection closed mid-request".into()));
    }
    if line.len() as u64 > MAX_HEAD_BYTES {
        return Err(ReadError::TooLarge);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(())
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_phrase(response.status),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// The client half: one request per connection, `Connection: close`.
pub mod client {
    use super::*;

    /// Issues `method path` against `addr` with `body` and returns
    /// `(status, body)`.
    ///
    /// # Errors
    ///
    /// Returns a message on connect/IO failure or a malformed response.
    pub fn request(
        addr: &str,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), String> {
        let (status, _, body) = request_full(addr, method, path, body)?;
        Ok((status, body))
    }

    /// Like [`request`], but also returns the response `Content-Type`
    /// (empty when the server sent none) — `/metrics` consumers check
    /// it against [`eavs_obs::TEXT_FORMAT`].
    ///
    /// # Errors
    ///
    /// Returns a message on connect/IO failure or a malformed response.
    pub fn request_full(
        addr: &str,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, String, Vec<u8>), String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(IO_TIMEOUT))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(IO_TIMEOUT))
            .map_err(|e| e.to_string())?;
        let mut stream = stream;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len(),
        );
        // A send failure is not immediately fatal: a server that
        // refuses an oversized body from the Content-Length header
        // responds and closes without reading the payload, so our
        // write sees EPIPE while a perfectly good 413 is waiting to be
        // read. Try the read first; surface the send error only when
        // no response came back either.
        let send = stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body))
            .and_then(|()| stream.flush());

        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        match (reader.read_line(&mut line), &send) {
            (Err(_), Err(e)) | (Ok(0), Err(e)) => {
                return Err(format!("send {method} {path}: {e}"));
            }
            (Err(e), Ok(())) => return Err(format!("read status: {e}")),
            (Ok(_), _) => {}
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line {line:?}"))?;
        let mut content_length: Option<u64> = None;
        let mut content_type = String::new();
        loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("read headers: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-headers".to_owned());
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok();
                } else if name.eq_ignore_ascii_case("content-type") {
                    content_type = value.trim().to_owned();
                }
            }
        }
        let mut body = Vec::new();
        match content_length {
            Some(n) => {
                body.resize(n as usize, 0);
                reader
                    .read_exact(&mut body)
                    .map_err(|e| format!("read body: {e}"))?;
            }
            None => {
                reader
                    .read_to_end(&mut body)
                    .map_err(|e| format!("read body: {e}"))?;
            }
        }
        Ok((status, content_type, body))
    }

    /// Like [`request`], but decodes the body as UTF-8.
    ///
    /// # Errors
    ///
    /// Propagates [`request`] errors; non-UTF-8 bodies are replaced
    /// lossily.
    pub fn request_text(
        addr: &str,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), String> {
        let (status, bytes) = request(addr, method, path, body.as_bytes())?;
        Ok((status, String::from_utf8_lossy(&bytes).into_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> Server {
        let handler: Handler = Arc::new(|req: Request| {
            Response::text(
                200,
                format!(
                    "{} {} {}",
                    req.method,
                    req.path,
                    String::from_utf8_lossy(&req.body)
                ),
            )
        });
        Server::bind("127.0.0.1:0", 2, handler).unwrap()
    }

    #[test]
    fn round_trips_requests() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let (status, body) = client::request_text(&addr, "POST", "/x/y?q=1", "hello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "POST /x/y hello");
        // Sequential requests work (connection-per-request).
        let (status, body) = client::request_text(&addr, "GET", "/z", "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "GET /z ");
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    client::request_text(&addr, "GET", &format!("/{i}"), "").unwrap()
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let (status, body) = h.join().unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, format!("GET /{i} "));
        }
        server.shutdown();
    }

    #[test]
    fn oversized_bodies_get_413_without_reading() {
        let server = echo_server();
        let addr = server.addr().to_string();
        // Claim a giant body; the server must answer 413 from the
        // header alone (we never send the payload).
        let stream = TcpStream::connect(&addr).unwrap();
        let mut stream = stream;
        let head = format!(
            "POST /big HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        stream.write_all(head.as_bytes()).unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        assert!(response.contains("payload too large"));
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"NOT-HTTP\r\nContent-Length: zzz\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 400") || response.starts_with("HTTP/1.1 413"),
            "{response}"
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = echo_server();
        let addr = server.addr().to_string();
        server.shutdown();
        assert!(client::request_text(&addr, "GET", "/", "").is_err());
    }
}
