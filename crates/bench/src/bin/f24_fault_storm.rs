//! Regenerates experiment `f24_fault_storm` (see DESIGN.md §11).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f24_fault_storm")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
