//! Session-cache microbenchmarks: what a warm hit costs versus the cold
//! miss it replaces, and how fast the builder fingerprint itself hashes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eavs_bench::cache::run_session;
use eavs_bench::harness::{governor, single_manifest, SEED};
use eavs_core::session::StreamingSession;
use eavs_trace::content::ContentProfile;

fn builder(seed: u64) -> eavs_core::session::SessionBuilder {
    StreamingSession::builder(governor("eavs"))
        .manifest(single_manifest(3_000, 1280, 720, 10, 30))
        .content(ContentProfile::Film)
        .seed(seed)
}

/// Fingerprint hashing throughput: the fixed cost every cached lookup pays.
fn bench_fingerprint(c: &mut Criterion) {
    c.bench_function("session_fingerprint", |b| {
        let built = builder(SEED);
        b.iter(|| black_box(built.fingerprint().expect("cacheable builder")))
    });
}

/// Cold miss (simulate + insert) vs warm hit (fingerprint + map lookup).
fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_cache");
    group.sample_size(20);

    // Distinct seeds per iteration: every lookup misses and simulates.
    group.bench_function("cold_miss", |b| {
        let mut seed = 1_000_000u64;
        b.iter(|| {
            seed += 1;
            black_box(run_session(builder(seed)).cpu_joules())
        })
    });

    // One seed, pre-seeded cache: every lookup is a hit.
    run_session(builder(SEED));
    group.bench_function("warm_hit", |b| {
        b.iter(|| black_box(run_session(builder(SEED)).cpu_joules()))
    });

    group.finish();
}

criterion_group!(benches, bench_fingerprint, bench_cache);
criterion_main!(benches);
