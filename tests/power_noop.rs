//! The zero-power no-op guarantee, mirroring `faults_noop.rs` and
//! `obs_noop.rs`: a session with the default [`DevicePowerModel::none`]
//! attached must be invisible — same report field for field, same
//! fingerprint, same event stream, same golden CSV bytes — across
//! governors and configurations. Stronger still: because accounting is
//! post-hoc, *any* power model (e.g. the phone preset) may only change
//! the report's power counters, never the simulation. This is what lets
//! the whole-device energy wiring ride in every build without perturbing
//! a single committed figure.

use eavs::power::DevicePowerModel;
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::predictor_by_name;
use eavs::scaling::report::SessionReport;
use eavs::scaling::session::{GovernorChoice, SessionBuilder, StreamingSession};
use eavs::sim::time::SimDuration;
use eavs::tracegen::content::ContentProfile;
use eavs::video::manifest::Manifest;
use eavs_governors::by_name;
use proptest::prelude::*;

fn governor(name: &str) -> GovernorChoice {
    if name == "eavs" {
        GovernorChoice::Eavs(EavsGovernor::new(
            predictor_by_name("hybrid").unwrap(),
            EavsConfig::default(),
        ))
    } else {
        GovernorChoice::Baseline(by_name(name).unwrap())
    }
}

fn base(gov: &str, seed: u64) -> SessionBuilder {
    StreamingSession::builder(governor(gov))
        .manifest(Manifest::single(
            3_000,
            1280,
            720,
            SimDuration::from_secs(8),
            30,
        ))
        .content(ContentProfile::Sport)
        .seed(seed)
}

fn assert_reports_identical(plain: &SessionReport, powered: &SessionReport, label: &str) {
    // Debug covers every field, including the new power counters (which
    // must all be zero on both sides under the no-op model).
    assert_eq!(
        format!("{plain:?}"),
        format!("{powered:?}"),
        "{label}: the zero-power model changed the report"
    );
    assert_eq!(powered.power.total_j(), 0.0, "{label}");
    assert_eq!(powered.power.radio_promotions, 0, "{label}");
}

#[test]
fn none_model_is_invisible_across_governors() {
    for gov in ["performance", "powersave", "ondemand", "schedutil", "eavs"] {
        let plain = base(gov, 11).run();
        let powered = base(gov, 11).power(DevicePowerModel::none()).run();
        assert_reports_identical(&plain, &powered, gov);
    }
}

#[test]
fn none_model_shares_the_fingerprint() {
    // Same digest ⇒ the session cache will serve an unmodeled session's
    // report for a none()-model builder and vice versa — which is only
    // sound because the reports are identical (test above).
    let plain = base("eavs", 23).fingerprint().expect("cacheable");
    let powered = base("eavs", 23)
        .power(DevicePowerModel::none())
        .fingerprint()
        .expect("cacheable");
    assert_eq!(plain, powered);

    // A modeled component must split off immediately.
    let phone = base("eavs", 23)
        .power(DevicePowerModel::phone())
        .fingerprint()
        .expect("cacheable");
    assert_ne!(plain, phone);
}

#[test]
fn none_model_processes_the_same_events() {
    // Stronger than report equality alone: the simulator must schedule
    // the exact same event stream (power accounting happens after the
    // loop has fully drained).
    let plain = base("eavs", 31).record_series(true).run();
    let powered = base("eavs", 31)
        .record_series(true)
        .power(DevicePowerModel::none())
        .run();
    assert_eq!(plain.events_processed, powered.events_processed);
    assert_eq!(plain.freq_series, powered.freq_series);
    assert_eq!(plain.buffer_series, powered.buffer_series);
}

#[test]
fn any_model_changes_only_the_power_counters() {
    // The post-hoc contract, tested from the outside: a full phone model
    // leaves every simulation outcome untouched and only fills in the
    // power block of the report.
    let plain = base("eavs", 47).record_series(true).run();
    let mut phone = base("eavs", 47)
        .record_series(true)
        .power(DevicePowerModel::phone())
        .run();
    assert!(phone.power.total_j() > 0.0);
    assert!(phone.power.radio_j > 0.0);
    assert!(phone.power.display_j > 0.0);
    assert!(phone.power.decoder_j > 0.0);
    assert!(phone.power.radio_promotions > 0);
    // Zero the power block; everything else must be byte-identical.
    phone.power = Default::default();
    assert_eq!(format!("{plain:?}"), format!("{phone:?}"));
}

#[test]
fn null_power_golden_pass_reproduces_committed_csv() {
    // The in-process version of CI's EAVS_NULL_POWER=1 golden job: force
    // the explicit none() model onto every cached session, regenerate a
    // committed figure, and demand the exact bytes of the golden CSV.
    // This test binary is the only user of the session cache in this
    // process, so the env gate is read here first.
    std::env::set_var("EAVS_NULL_POWER", "1");
    let table = eavs::bench::comparison::f5_energy_by_governor();
    let committed = std::fs::read_to_string("results/f5_energy_by_governor.csv")
        .expect("committed golden CSV present");
    assert_eq!(
        table.to_csv(),
        committed,
        "EAVS_NULL_POWER pass must leave the golden CSV byte-identical"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any governor/content/seed draw, the none() model leaves the
    /// report byte-identical, and the phone model touches only the power
    /// block.
    #[test]
    fn power_models_are_behaviorally_inert_for_any_draw(
        gov_pick in 0u8..5,
        content_pick in 0u8..3,
        seed in 1u64..400,
    ) {
        let gov = ["performance", "powersave", "ondemand", "schedutil", "eavs"]
            [gov_pick as usize];
        let content = ContentProfile::ALL[content_pick as usize];
        let mk = || base(gov, seed).content(content);
        let plain = mk().run();
        let noop = mk().power(DevicePowerModel::none()).run();
        prop_assert_eq!(format!("{plain:?}"), format!("{noop:?}"));
        let mut phone = mk().power(DevicePowerModel::phone()).run();
        prop_assert!(phone.power.total_j() > 0.0);
        phone.power = Default::default();
        prop_assert_eq!(format!("{plain:?}"), format!("{phone:?}"));
    }
}
