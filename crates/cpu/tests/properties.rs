//! Property-based tests for the CPU/DVFS model.

use eavs_cpu::cluster::{Cluster, ClusterConfig, PolicyLimits};
use eavs_cpu::cstate::CStateTable;
use eavs_cpu::freq::Cycles;
use eavs_cpu::opp::OppTable;
use eavs_cpu::power::CmosPowerModel;
use eavs_cpu::soc::SocModel;
use eavs_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn small_cluster(latency_us: u64) -> Cluster {
    Cluster::new(ClusterConfig {
        name: "prop",
        opps: OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)])
            .unwrap(),
        power: Box::new(CmosPowerModel::new(1e-9, 0.1, 0.05)),
        cstates: CStateTable::mobile_default(0.08),
        num_cores: 2,
        transition_latency: SimDuration::from_micros(latency_us),
        initial_index: 0,
    })
}

proptest! {
    /// Busy + accounted-idle time per core equals elapsed wall time after
    /// finalization, regardless of the job/switch schedule.
    #[test]
    fn time_conservation(
        ops in proptest::collection::vec((0u64..50, 0usize..4, 1u64..40), 0..40),
        latency_us in prop_oneof![Just(0u64), Just(100u64)],
    ) {
        let mut cluster = small_cluster(latency_us);
        let mut now = SimTime::ZERO;
        for (dt_ms, opp, mcycles) in ops {
            now += SimDuration::from_millis(dt_ms);
            cluster.set_target(now, opp);
            if !cluster.is_core_busy(0) {
                cluster.start_job(now, 0, Cycles::from_mega(mcycles as f64));
            }
        }
        let end = now + SimDuration::from_secs(5);
        cluster.advance(end);
        let _ = cluster.energy_at(end); // flush idle accounting
        for core_id in 0..cluster.num_cores() {
            let core = cluster.core(core_id);
            let accounted = core.busy_total() + core.idle_total();
            let elapsed = end - SimTime::ZERO;
            let diff = if accounted > elapsed { accounted - elapsed } else { elapsed - accounted };
            prop_assert!(
                diff <= SimDuration::from_nanos(10),
                "core {core_id}: accounted {accounted} vs elapsed {elapsed}"
            );
        }
    }

    /// time_in_state always sums to elapsed wall time.
    #[test]
    fn residency_sums_to_elapsed(
        switches in proptest::collection::vec((1u64..100, 0usize..4), 0..30),
    ) {
        let mut cluster = small_cluster(0);
        let mut now = SimTime::ZERO;
        for (dt_ms, opp) in switches {
            now += SimDuration::from_millis(dt_ms);
            cluster.set_target(now, opp);
        }
        let end = now + SimDuration::from_millis(7);
        cluster.advance(end);
        let total: SimDuration = cluster.time_in_state(end).into_iter().sum();
        prop_assert_eq!(total, end - SimTime::ZERO);
    }

    /// Energy is monotone in time: advancing further never reduces any
    /// component.
    #[test]
    fn energy_monotone(steps in proptest::collection::vec(1u64..500, 1..20)) {
        let mut cluster = small_cluster(0);
        cluster.start_job(SimTime::ZERO, 0, Cycles::from_mega(500.0));
        let mut now = SimTime::ZERO;
        let mut last_total = 0.0;
        for dt_ms in steps {
            now += SimDuration::from_millis(dt_ms);
            let e = cluster.energy_at(now);
            prop_assert!(e.total() >= last_total - 1e-12);
            prop_assert!(e.busy_j >= 0.0 && e.idle_j >= 0.0 && e.static_j >= 0.0);
            last_total = e.total();
        }
    }

    /// Job completion prediction matches actual completion: after advancing
    /// to the predicted instant the core is idle, and one tick before it is
    /// still busy (when the prediction is far enough out).
    #[test]
    fn completion_prediction_exact(
        mcycles in 1u64..2000,
        opp in 0usize..4,
        latency_us in prop_oneof![Just(0u64), Just(100u64)],
    ) {
        let mut cluster = small_cluster(latency_us);
        cluster.set_target(SimTime::ZERO, opp);
        cluster.start_job(SimTime::ZERO, 0, Cycles::from_mega(mcycles as f64));
        let done = cluster.completion_time(SimTime::ZERO, 0).unwrap();
        if done > SimTime::from_micros(1) {
            let mut probe = cluster;
            probe.advance(done - SimDuration::from_micros(1));
            prop_assert!(probe.is_core_busy(0), "finished early");
            probe.advance(done);
            prop_assert!(!probe.is_core_busy(0), "not finished at prediction");
        }
    }

    /// set_target always lands within policy limits.
    #[test]
    fn limits_respected(
        min in 0usize..4,
        span in 0usize..4,
        requests in proptest::collection::vec(0usize..10, 1..20),
    ) {
        let mut cluster = small_cluster(0);
        let max = (min + span).min(3);
        cluster.set_limits(PolicyLimits { min_index: min, max_index: max });
        let mut now = SimTime::ZERO;
        for req in requests {
            now += SimDuration::from_millis(1);
            let got = cluster.set_target(now, req);
            prop_assert!(got >= min && got <= max);
            cluster.advance(now + SimDuration::from_micros(500));
            prop_assert!(cluster.current_index() >= min && cluster.current_index() <= max);
        }
    }

    /// Running the same job at a lower OPP never uses more busy energy on
    /// the preset SoCs *above* the energy-per-cycle optimum, and the busy
    /// time is always longer at lower frequency.
    #[test]
    fn slower_is_longer(mcycles in 10u64..500) {
        let table = SocModel::Flagship2016.opp_table();
        let mut durations = Vec::new();
        for opp in 0..table.len() {
            let mut cluster = SocModel::Flagship2016.build_cluster();
            cluster.set_target(SimTime::ZERO, opp);
            // Let the transition land before starting work.
            let start = SimTime::from_millis(1);
            cluster.start_job(start, 0, Cycles::from_mega(mcycles as f64));
            let done = cluster.completion_time(start, 0).unwrap();
            durations.push(done - start);
        }
        for w in durations.windows(2) {
            prop_assert!(w[1] <= w[0], "higher OPP must not be slower: {durations:?}");
        }
    }
}
