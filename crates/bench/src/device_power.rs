//! Whole-device energy experiments: the F28 component breakdown and the
//! F29 radio tail-timer sensitivity sweep.
//!
//! Both figures attach the phone preset of [`DevicePowerModel`] to an
//! LTE drive scenario. Accounting is post-hoc over the finished timeline
//! (download activity intervals, chosen bitrates, manifest, seed), so the
//! sessions here are byte-identical to their unmodeled twins — every row
//! shares the same replay prefix, and the committed golden CSVs of the
//! other 28 experiments are provably untouched (`tests/power_noop.rs`).

use crate::harness::{
    governor, manifest_1080p30, run_parallel_labeled, run_session, single_manifest,
    COMPARISON_GOVERNORS, SEED,
};
use eavs_core::session::{GovernorChoice, SessionBuilder, StreamingSession};
use eavs_metrics::table::Table;
use eavs_net::radio::RadioModel;
use eavs_power::{DevicePowerModel, RrcRadioModel};
use eavs_sim::time::SimDuration;
use eavs_trace::content::ContentProfile;
use eavs_trace::net_gen::NetworkProfile;

/// The shared workload of both figures: 60 s of 1080p30 film streamed
/// over the LTE drive trace with the legacy net-layer LTE radio — bursty
/// downloads with real gaps, so the RRC state machine has promotions and
/// tails to account.
fn lte_session(gov: GovernorChoice, power: DevicePowerModel) -> SessionBuilder {
    let duration = SimDuration::from_secs(60);
    StreamingSession::builder(gov)
        .manifest(manifest_1080p30(60))
        .content(ContentProfile::Film)
        .network(NetworkProfile::LteDrive.generate(duration * 3, SEED))
        .radio(RadioModel::lte())
        .power(power)
        .seed(SEED)
}

/// The F28 workload on the EAVS governor under the phone model — the
/// probe session `bench_report` runs for its `power` counter block.
pub fn powered_lte_session() -> SessionBuilder {
    lte_session(governor("eavs"), DevicePowerModel::phone())
}

/// F28: whole-device energy breakdown by governor.
///
/// Every comparison governor streams the same LTE drive workload under
/// the phone power model. CPU energy separates the governors as in F5;
/// the radio, display and decoder components are near-constant across
/// them — which is the figure's point: on a whole-device budget the
/// governor's CPU savings compete with component draws it cannot touch.
pub fn f28_device_breakdown() -> Table {
    let reports = run_parallel_labeled(
        COMPARISON_GOVERNORS
            .iter()
            .map(|&name| {
                let job =
                    move || run_session(lte_session(governor(name), DevicePowerModel::phone()));
                (format!("f28 {name}"), job)
            })
            .collect(),
    );
    let mut t = Table::new(&[
        "governor",
        "cpu (J)",
        "rrc radio (J)",
        "promos",
        "display (J)",
        "decoder (J)",
        "device (J)",
        "cpu share %",
    ]);
    t.set_title("F28: whole-device energy breakdown — 60 s 1080p30 film, LTE drive, phone model");
    for (name, r) in COMPARISON_GOVERNORS.iter().zip(&reports) {
        let device = r.cpu_joules() + r.power.total_j();
        t.row(&[
            name,
            &format!("{:.1}", r.cpu_joules()),
            &format!("{:.1}", r.power.radio_j),
            &r.power.radio_promotions.to_string(),
            &format!("{:.1}", r.power.display_j),
            &format!("{:.1}", r.power.decoder_j),
            &format!("{device:.1}"),
            &format!("{:.1}", r.cpu_joules() * 100.0 / device),
        ]);
    }
    t
}

/// The tail timers F29 sweeps, in milliseconds.
pub fn f29_tail_timers_ms() -> Vec<u64> {
    vec![500, 1_000, 2_500, 5_000, 10_000, 20_000]
}

/// F29: RRC tail-timer sensitivity.
///
/// EAVS streams a 480p rung over the same LTE drive trace — the low
/// bitrate leaves the link idle between segment fetches, which is the
/// bursty regime where the timer matters — while the radio tail timer
/// sweeps from 0.5 s to 20 s. Short timers demote in every gap: many
/// promotions, little tail energy. Long ones hold the radio hot through
/// every inter-burst gap. The download timeline itself never changes
/// (accounting is post-hoc), so the sweep isolates the timer exactly.
pub fn f29_radio_tail_sweep() -> Table {
    let reports = run_parallel_labeled(
        f29_tail_timers_ms()
            .into_iter()
            .map(|ms| {
                let job = move || {
                    let mut model = DevicePowerModel::phone();
                    model.radio =
                        Some(RrcRadioModel::lte().with_tail_timer(SimDuration::from_millis(ms)));
                    run_session(
                        StreamingSession::builder(governor("eavs"))
                            .manifest(single_manifest(1_200, 854, 480, 60, 30))
                            .content(ContentProfile::Film)
                            .network(
                                NetworkProfile::LteDrive
                                    .generate(SimDuration::from_secs(60) * 3, SEED),
                            )
                            .radio(RadioModel::lte())
                            .power(model)
                            .seed(SEED),
                    )
                };
                (format!("f29 tail {ms} ms"), job)
            })
            .collect(),
    );
    let mut t = Table::new(&[
        "tail timer (s)",
        "promos",
        "idle (s)",
        "promo (s)",
        "active (s)",
        "tail (s)",
        "rrc radio (J)",
        "device (J)",
    ]);
    t.set_title("F29: radio tail-timer sensitivity — EAVS, 60 s 480p film, LTE drive");
    for (ms, r) in f29_tail_timers_ms().iter().zip(&reports) {
        t.row(&[
            &format!("{:.1}", *ms as f64 / 1000.0),
            &r.power.radio_promotions.to_string(),
            &format!("{:.1}", r.power.radio_idle_time.as_secs_f64()),
            &format!("{:.2}", r.power.radio_promo_time.as_secs_f64()),
            &format!("{:.1}", r.power.radio_active_time.as_secs_f64()),
            &format!("{:.1}", r.power.radio_tail_time.as_secs_f64()),
            &format!("{:.1}", r.power.radio_j),
            &format!("{:.1}", r.power.total_j()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f29_energy_is_monotone_in_the_tail_timer() {
        // Longer tails can only add energy: same timeline, more time in
        // the expensive TAIL state instead of IDLE.
        let table = f29_radio_tail_sweep();
        let csv = table.to_csv();
        let radio_j: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(6).unwrap().parse().unwrap())
            .collect();
        assert_eq!(radio_j.len(), f29_tail_timers_ms().len());
        for pair in radio_j.windows(2) {
            assert!(pair[1] >= pair[0], "tail sweep not monotone: {radio_j:?}");
        }
    }
}
