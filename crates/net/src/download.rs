//! The segment downloader.
//!
//! One HTTP-like transfer at a time (DASH players fetch segments
//! sequentially): a request costs one RTT, then bytes flow at the
//! bandwidth trace's rate. Completion times are computed in closed form
//! from the piecewise-constant trace, so the session can schedule a single
//! completion event per segment. Activity intervals are recorded for radio
//! energy accounting, and per-segment throughput samples feed the ABR.

use std::sync::Arc;

use crate::bandwidth::BandwidthTrace;
use crate::radio::ActivityInterval;
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::time::{SimDuration, SimTime};

/// Retry behavior for failed (stalled or corrupt) segment downloads.
///
/// A transfer that has not completed within `timeout` is aborted and
/// retried after an exponential backoff: attempt `n` (0-based) waits
/// `backoff_base * backoff_factor^n`, capped at `backoff_cap`. After
/// `max_retries` failed retries the segment is abandoned and the session
/// moves on. The default policy has no timeout, so clean sessions
/// schedule no watchdog events at all.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RetryPolicy {
    /// Abort a transfer that has not completed within this span.
    /// `None` disables the watchdog (and with it, stall recovery).
    pub timeout: Option<SimDuration>,
    /// Maximum number of retries per segment before giving up.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base: SimDuration,
    /// Multiplier applied to the backoff per failed attempt.
    pub backoff_factor: f64,
    /// Upper bound on any single backoff wait.
    pub backoff_cap: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: None,
            max_retries: 4,
            backoff_base: SimDuration::from_millis(200),
            backoff_factor: 2.0,
            backoff_cap: SimDuration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// A policy with a watchdog timeout and the default backoff schedule.
    pub fn with_timeout(timeout: SimDuration) -> Self {
        RetryPolicy {
            timeout: Some(timeout),
            ..RetryPolicy::default()
        }
    }

    /// Backoff wait before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let cap = self.backoff_cap.as_nanos() as f64;
        let mut nanos = self.backoff_base.as_nanos() as f64;
        for _ in 0..attempt.min(64) {
            nanos *= self.backoff_factor.max(0.0);
            if nanos >= cap {
                break;
            }
        }
        SimDuration::from_nanos(nanos.min(cap).round() as u64)
    }

    /// Feed every policy knob into a fingerprint.
    pub fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_opt_u64(self.timeout.map(SimDuration::as_nanos));
        fp.write_u32(self.max_retries);
        fp.write_u64(self.backoff_base.as_nanos());
        fp.write_f64(self.backoff_factor);
        fp.write_u64(self.backoff_cap.as_nanos());
    }
}

/// A completed transfer's measurement, as the ABR sees it.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ThroughputSample {
    /// Bytes transferred.
    pub bytes: u64,
    /// Transfer wall time including the request RTT.
    pub duration: SimDuration,
}

impl ThroughputSample {
    /// The measured goodput in bits/second.
    pub fn bps(&self) -> f64 {
        if self.duration.is_zero() {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / self.duration.as_secs_f64()
    }
}

/// State of the in-flight transfer.
#[derive(Clone, Copy, PartialEq, Debug)]
struct InFlight {
    started: SimTime,
    completes: SimTime,
    bytes: u64,
}

/// Sequential segment downloader over a bandwidth trace.
///
/// The trace is held behind an [`Arc`]: generated traces can be large
/// (per-second samples over long sessions), and parallel sweeps share one
/// copy across jobs instead of deep-cloning per session.
#[derive(Clone, Debug)]
pub struct Downloader {
    trace: Arc<BandwidthTrace>,
    rtt: SimDuration,
    in_flight: Option<InFlight>,
    activity: Vec<ActivityInterval>,
    samples: Vec<ThroughputSample>,
    bytes_total: u64,
}

impl Downloader {
    /// Creates a downloader over `trace` with the given request RTT.
    /// Accepts either an owned `BandwidthTrace` or a shared `Arc`.
    pub fn new(trace: impl Into<Arc<BandwidthTrace>>, rtt: SimDuration) -> Self {
        Downloader {
            trace: trace.into(),
            rtt,
            in_flight: None,
            activity: Vec::new(),
            samples: Vec::new(),
            bytes_total: 0,
        }
    }

    /// `true` if a transfer is in progress.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Starts fetching `bytes` at `now`; returns the completion instant,
    /// or `None` if the trace's bandwidth drops to zero forever before the
    /// transfer can finish (the session should treat this as a stalled
    /// network).
    ///
    /// # Panics
    ///
    /// Panics if a transfer is already in flight.
    pub fn start(&mut self, now: SimTime, bytes: u64) -> Option<SimTime> {
        assert!(self.in_flight.is_none(), "downloader is busy");
        let data_start = now + self.rtt;
        let completes = self.trace.completion_time(data_start, bytes as f64)?;
        self.in_flight = Some(InFlight {
            started: now,
            completes,
            bytes,
        });
        Some(completes)
    }

    /// Starts a transfer that will never complete on its own: the radio
    /// stays active (and burning energy) but no completion instant exists.
    /// Used by fault injection to model a stalled server; only a watchdog
    /// timeout ([`Downloader::abort`]) can free the downloader again.
    ///
    /// # Panics
    ///
    /// Panics if a transfer is already in flight.
    pub fn start_stalled(&mut self, now: SimTime, bytes: u64) {
        assert!(self.in_flight.is_none(), "downloader is busy");
        self.in_flight = Some(InFlight {
            started: now,
            completes: SimTime::MAX,
            bytes,
        });
    }

    /// Aborts the in-flight transfer at `now`. The radio activity up to
    /// the abort is recorded (the bytes were partially sent and the radio
    /// was powered), but no throughput sample is produced — the ABR never
    /// sees failed transfers.
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight or `now` precedes the transfer start.
    pub fn abort(&mut self, now: SimTime) {
        let f = self.in_flight.take().expect("no transfer in flight");
        assert!(now >= f.started, "abort before transfer start");
        self.activity.push(ActivityInterval {
            start: f.started,
            end: now.min(f.completes),
        });
    }

    /// Marks the in-flight transfer complete at `now` (the instant returned
    /// by [`Downloader::start`]) and returns its throughput sample.
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight or `now` differs from the promised
    /// completion instant.
    pub fn complete(&mut self, now: SimTime) -> ThroughputSample {
        let f = self.in_flight.take().expect("no transfer in flight");
        assert_eq!(now, f.completes, "completion at unexpected time");
        self.activity.push(ActivityInterval {
            start: f.started,
            end: now,
        });
        let sample = ThroughputSample {
            bytes: f.bytes,
            duration: now - f.started,
        };
        self.samples.push(sample);
        self.bytes_total += f.bytes;
        sample
    }

    /// All completed-transfer throughput samples, oldest first.
    pub fn samples(&self) -> &[ThroughputSample] {
        &self.samples
    }

    /// Total bytes downloaded.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Radio activity intervals so far (including any in-flight transfer,
    /// truncated at `now`).
    pub fn activity(&self, now: SimTime) -> Vec<ActivityInterval> {
        let mut out = self.activity.clone();
        if let Some(f) = self.in_flight {
            out.push(ActivityInterval {
                start: f.started,
                end: now.min(f.completes),
            });
        }
        out
    }

    /// The bandwidth trace.
    pub fn trace(&self) -> &BandwidthTrace {
        &self.trace
    }

    /// The configured request RTT.
    pub fn rtt(&self) -> SimDuration {
        self.rtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> SimTime {
        SimTime::from_secs(n)
    }

    #[test]
    fn transfer_lifecycle() {
        let trace = BandwidthTrace::constant(8e6); // 1 MB/s
        let mut d = Downloader::new(trace, SimDuration::from_millis(50));
        assert!(!d.is_busy());
        let done = d.start(s(1), 1_000_000).unwrap();
        assert!(d.is_busy());
        assert_eq!(done, s(2) + SimDuration::from_millis(50));
        let sample = d.complete(done);
        assert!(!d.is_busy());
        assert_eq!(sample.bytes, 1_000_000);
        assert_eq!(sample.duration, SimDuration::from_millis(1050));
        // Goodput below link rate because of the RTT.
        assert!(sample.bps() < 8e6);
        assert!(sample.bps() > 7e6);
        assert_eq!(d.bytes_total(), 1_000_000);
        assert_eq!(d.samples().len(), 1);
    }

    #[test]
    fn activity_includes_in_flight() {
        let mut d = Downloader::new(BandwidthTrace::constant(8e6), SimDuration::ZERO);
        let done = d.start(s(0), 4_000_000).unwrap();
        assert_eq!(done, s(4));
        let act = d.activity(s(2));
        assert_eq!(act.len(), 1);
        assert_eq!(act[0].end, s(2));
        d.complete(done);
        let act = d.activity(s(10));
        assert_eq!(act[0].end, s(4));
    }

    #[test]
    fn stalled_network_returns_none() {
        let trace = BandwidthTrace::from_mbps_steps(&[(0, 1.0), (2, 0.0)]);
        let mut d = Downloader::new(trace, SimDuration::ZERO);
        assert!(d.start(s(0), 10_000_000).is_none());
        assert!(!d.is_busy(), "failed start leaves downloader free");
    }

    #[test]
    #[should_panic(expected = "busy")]
    fn concurrent_start_panics() {
        let mut d = Downloader::new(BandwidthTrace::constant(8e6), SimDuration::ZERO);
        d.start(s(0), 1000).unwrap();
        d.start(s(0), 1000).unwrap();
    }

    #[test]
    #[should_panic(expected = "unexpected time")]
    fn complete_at_wrong_time_panics() {
        let mut d = Downloader::new(BandwidthTrace::constant(8e6), SimDuration::ZERO);
        d.start(s(0), 8_000_000).unwrap();
        d.complete(s(3));
    }

    #[test]
    fn stalled_transfer_never_completes_and_abort_frees() {
        let mut d = Downloader::new(BandwidthTrace::constant(8e6), SimDuration::ZERO);
        d.start_stalled(s(1), 1_000_000);
        assert!(d.is_busy());
        // The radio is active for as long as the stall persists.
        let act = d.activity(s(5));
        assert_eq!(act.len(), 1);
        assert_eq!(act[0].start, s(1));
        assert_eq!(act[0].end, s(5));
        d.abort(s(3));
        assert!(!d.is_busy());
        // Aborted transfers leave radio activity but no ABR sample.
        assert_eq!(d.samples().len(), 0);
        assert_eq!(d.bytes_total(), 0);
        let act = d.activity(s(10));
        assert_eq!(act.len(), 1);
        assert_eq!(act[0].end, s(3));
    }

    #[test]
    fn abort_mid_transfer_records_partial_activity() {
        let mut d = Downloader::new(BandwidthTrace::constant(8e6), SimDuration::ZERO);
        let done = d.start(s(0), 4_000_000).unwrap();
        assert_eq!(done, s(4));
        d.abort(s(2));
        assert!(!d.is_busy());
        let act = d.activity(s(10));
        assert_eq!(act.len(), 1);
        assert_eq!(act[0].end, s(2));
        // Downloader is free for a retry.
        assert!(d.start(s(2), 4_000_000).is_some());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            timeout: Some(SimDuration::from_secs(2)),
            max_retries: 8,
            backoff_base: SimDuration::from_millis(200),
            backoff_factor: 2.0,
            backoff_cap: SimDuration::from_secs(1),
        };
        assert_eq!(p.backoff(0), SimDuration::from_millis(200));
        assert_eq!(p.backoff(1), SimDuration::from_millis(400));
        assert_eq!(p.backoff(2), SimDuration::from_millis(800));
        assert_eq!(p.backoff(3), SimDuration::from_secs(1));
        assert_eq!(p.backoff(60), SimDuration::from_secs(1));
        // Enormous attempt counts must not overflow the clock.
        assert_eq!(p.backoff(u32::MAX), SimDuration::from_secs(1));
    }

    #[test]
    fn default_policy_has_no_timeout() {
        let p = RetryPolicy::default();
        assert_eq!(p.timeout, None);
        assert_eq!(
            RetryPolicy::with_timeout(SimDuration::from_secs(2)).timeout,
            Some(SimDuration::from_secs(2))
        );
    }

    #[test]
    fn retry_policy_fingerprint_distinguishes_knobs() {
        let fp_of = |p: &RetryPolicy| {
            let mut fp = Fingerprinter::new("test/retry");
            p.fingerprint(&mut fp);
            fp.finish().expect("not opaque")
        };
        let base = RetryPolicy::default();
        let variants = [
            RetryPolicy {
                timeout: Some(SimDuration::from_secs(2)),
                ..base
            },
            RetryPolicy {
                max_retries: 5,
                ..base
            },
            RetryPolicy {
                backoff_base: SimDuration::from_millis(201),
                ..base
            },
            RetryPolicy {
                backoff_factor: 3.0,
                ..base
            },
            RetryPolicy {
                backoff_cap: SimDuration::from_secs(6),
                ..base
            },
        ];
        let mut seen = vec![fp_of(&base)];
        for v in &variants {
            let fp = fp_of(v);
            assert!(!seen.contains(&fp), "fingerprint collision for {v:?}");
            seen.push(fp);
        }
    }

    #[test]
    fn throughput_sample_zero_duration() {
        let sample = ThroughputSample {
            bytes: 100,
            duration: SimDuration::ZERO,
        };
        assert_eq!(sample.bps(), 0.0);
    }
}
