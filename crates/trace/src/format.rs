//! Plain-text trace formats.
//!
//! Human-inspectable line formats for exchanging workloads between the
//! generator, the bench harness and external tools — and for replaying a
//! captured workload bit-for-bit. Two formats:
//!
//! **Video trace** (`.vtrace`):
//! ```text
//! # comments and blank lines ignored
//! video <fps> <frames_per_segment> <num_segments>
//! rep <id> <bitrate_kbps> <width> <height>
//! frame <rep_id> <index> <I|P|B> <size_bytes> <decode_cycles>
//! ```
//!
//! **Bandwidth trace** (`.btrace`):
//! ```text
//! bw <time_ns> <bits_per_second>
//! ```

use eavs_cpu::freq::Cycles;
use eavs_net::bandwidth::BandwidthTrace;
use eavs_sim::time::{SimDuration, SimTime};
use eavs_video::frame::{Frame, FrameType};
use eavs_video::manifest::{Manifest, Representation};
use eavs_video::segment::Segment;
use std::fmt;

/// A parsed video trace: a manifest plus every frame of every rung.
#[derive(Clone, PartialEq, Debug)]
pub struct VideoTrace {
    /// The manifest.
    pub manifest: Manifest,
    /// `frames[rep_id]` holds the full stream at that rung.
    pub frames: Vec<Vec<Frame>>,
}

impl VideoTrace {
    /// Reassembles segment `index` at `rep_id`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn segment(&self, index: u64, rep_id: usize) -> Segment {
        let fps = self.manifest.frames_per_segment;
        let start = (index * fps) as usize;
        let end = start + fps as usize;
        Segment::new(index, rep_id, self.frames[rep_id][start..end].to_vec())
    }
}

/// A parse error with its line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Serializes a video trace.
pub fn write_video_trace(manifest: &Manifest, frames_by_rep: &[Vec<Frame>]) -> String {
    let mut out = String::new();
    out.push_str("# eavs video trace v1\n");
    out.push_str(&format!(
        "video {} {} {}\n",
        manifest.fps, manifest.frames_per_segment, manifest.num_segments
    ));
    for rep in manifest.representations() {
        out.push_str(&format!(
            "rep {} {} {} {}\n",
            rep.id, rep.bitrate_kbps, rep.width, rep.height
        ));
    }
    for (rep_id, frames) in frames_by_rep.iter().enumerate() {
        for f in frames {
            out.push_str(&format!(
                "frame {} {} {} {} {:.0}\n",
                rep_id,
                f.index,
                f.frame_type,
                f.size_bytes,
                f.decode_cycles.get()
            ));
        }
    }
    out
}

/// Parses a video trace.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_video_trace(text: &str) -> Result<VideoTrace, ParseError> {
    let mut header: Option<(u32, u64, u64)> = None;
    let mut reps: Vec<Representation> = Vec::new();
    let mut frames: Vec<Vec<Frame>> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line");
        let rest: Vec<&str> = parts.collect();
        match tag {
            "video" => {
                if header.is_some() {
                    return Err(err(lineno, "duplicate video header"));
                }
                if rest.len() != 3 {
                    return Err(err(
                        lineno,
                        "video needs: fps frames_per_segment num_segments",
                    ));
                }
                let fps = rest[0].parse().map_err(|_| err(lineno, "bad fps"))?;
                let fseg = rest[1]
                    .parse()
                    .map_err(|_| err(lineno, "bad frames_per_segment"))?;
                let nseg = rest[2]
                    .parse()
                    .map_err(|_| err(lineno, "bad num_segments"))?;
                header = Some((fps, fseg, nseg));
            }
            "rep" => {
                if rest.len() != 4 {
                    return Err(err(lineno, "rep needs: id bitrate width height"));
                }
                let id: usize = rest[0].parse().map_err(|_| err(lineno, "bad rep id"))?;
                if id != reps.len() {
                    return Err(err(
                        lineno,
                        format!("rep ids must be dense, expected {}", reps.len()),
                    ));
                }
                reps.push(Representation {
                    id,
                    bitrate_kbps: rest[1].parse().map_err(|_| err(lineno, "bad bitrate"))?,
                    width: rest[2].parse().map_err(|_| err(lineno, "bad width"))?,
                    height: rest[3].parse().map_err(|_| err(lineno, "bad height"))?,
                });
                frames.push(Vec::new());
            }
            "frame" => {
                let (fps, _, _) = header.ok_or_else(|| err(lineno, "frame before video header"))?;
                if rest.len() != 5 {
                    return Err(err(lineno, "frame needs: rep_id index type size cycles"));
                }
                let rep_id: usize = rest[0].parse().map_err(|_| err(lineno, "bad rep id"))?;
                if rep_id >= frames.len() {
                    return Err(err(lineno, "frame references unknown rep"));
                }
                let index: u64 = rest[1].parse().map_err(|_| err(lineno, "bad index"))?;
                let frame_type = match rest[2] {
                    "I" => FrameType::I,
                    "P" => FrameType::P,
                    "B" => FrameType::B,
                    other => return Err(err(lineno, format!("bad frame type {other:?}"))),
                };
                let size_bytes: u32 = rest[3].parse().map_err(|_| err(lineno, "bad size"))?;
                let cycles: f64 = rest[4].parse().map_err(|_| err(lineno, "bad cycles"))?;
                if !cycles.is_finite() || cycles < 0.0 {
                    return Err(err(lineno, "bad cycles"));
                }
                frames[rep_id].push(Frame {
                    index,
                    frame_type,
                    size_bytes,
                    decode_cycles: Cycles::new(cycles),
                    duration: SimDuration::from_nanos(
                        (1_000_000_000 + u64::from(fps) / 2) / u64::from(fps),
                    ),
                });
            }
            other => return Err(err(lineno, format!("unknown record {other:?}"))),
        }
    }

    let (fps, fseg, nseg) = header.ok_or_else(|| err(0, "missing video header"))?;
    if reps.is_empty() {
        return Err(err(0, "no representations"));
    }
    let expected = fseg * nseg;
    for (rep_id, fs) in frames.iter().enumerate() {
        if fs.len() as u64 != expected {
            return Err(err(
                0,
                format!(
                    "rep {rep_id}: expected {expected} frames, found {}",
                    fs.len()
                ),
            ));
        }
        for (j, f) in fs.iter().enumerate() {
            if f.index != j as u64 {
                return Err(err(
                    0,
                    format!("rep {rep_id}: frame indices not dense at {j}"),
                ));
            }
        }
    }
    Ok(VideoTrace {
        manifest: Manifest::new(reps, fseg, nseg, fps),
        frames,
    })
}

/// Serializes a bandwidth trace.
pub fn write_bandwidth_trace(trace: &BandwidthTrace) -> String {
    let mut out = String::new();
    out.push_str("# eavs bandwidth trace v1\n");
    for &(t, bps) in trace.points() {
        out.push_str(&format!("bw {} {:.3}\n", t.as_nanos(), bps));
    }
    out
}

/// Parses a bandwidth trace.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_bandwidth_trace(text: &str) -> Result<BandwidthTrace, ParseError> {
    let mut points = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 || parts[0] != "bw" {
            return Err(err(lineno, "expected: bw <time_ns> <bps>"));
        }
        let t: u64 = parts[1].parse().map_err(|_| err(lineno, "bad time"))?;
        let bps: f64 = parts[2].parse().map_err(|_| err(lineno, "bad rate"))?;
        if !bps.is_finite() || bps < 0.0 {
            return Err(err(lineno, "bad rate"));
        }
        points.push((SimTime::from_nanos(t), bps));
    }
    if points.is_empty() {
        return Err(err(0, "empty bandwidth trace"));
    }
    Ok(BandwidthTrace::from_points(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentProfile;
    use crate::video_gen::VideoGenerator;

    #[test]
    fn video_trace_roundtrip() {
        let manifest = Manifest::single(1_000, 640, 360, SimDuration::from_secs(4), 30);
        let gen = VideoGenerator::new(manifest.clone(), ContentProfile::Film, 9);
        let frames: Vec<Vec<Frame>> = vec![gen
            .all_segments(0)
            .into_iter()
            .flat_map(Segment::into_frames)
            .collect()];
        let text = write_video_trace(&manifest, &frames);
        let parsed = parse_video_trace(&text).unwrap();
        assert_eq!(parsed.manifest, manifest);
        assert_eq!(parsed.frames.len(), 1);
        assert_eq!(parsed.frames[0].len(), frames[0].len());
        // Sizes and types survive exactly; cycles to the nearest cycle.
        for (a, b) in parsed.frames[0].iter().zip(&frames[0]) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.frame_type, b.frame_type);
            assert_eq!(a.size_bytes, b.size_bytes);
            assert!((a.decode_cycles.get() - b.decode_cycles.get()).abs() < 1.0);
        }
        // Segments reassemble.
        let seg = parsed.segment(1, 0);
        assert_eq!(seg.first_frame_index(), 60);
        assert_eq!(seg.num_frames(), 60);
    }

    #[test]
    fn bandwidth_trace_roundtrip() {
        let tr = BandwidthTrace::from_mbps_steps(&[(0, 5.0), (10, 1.0), (20, 8.0)]);
        let text = write_bandwidth_trace(&tr);
        let parsed = parse_bandwidth_trace(&text).unwrap();
        assert_eq!(parsed.points().len(), 3);
        assert_eq!(parsed.rate_at(SimTime::from_secs(15)), 1e6);
    }

    #[test]
    fn parse_errors_name_lines() {
        let bad = "video 30 60 2\nrep 0 1000 640 360\nfranme 0 0 I 10 10\n";
        let e = parse_video_trace(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("unknown record"));

        let e = parse_video_trace("rep 0 1000 640 360\nframe 0 0 I 1 1\n").unwrap_err();
        assert!(e.message.contains("before video header"));

        let e = parse_bandwidth_trace("bw abc 5\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(parse_bandwidth_trace("# only comments\n").is_err());
    }

    #[test]
    fn missing_frames_detected() {
        let text = "video 30 60 2\nrep 0 1000 640 360\n";
        let e = parse_video_trace(text).unwrap_err();
        assert!(e.message.contains("expected 120 frames"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let tr =
            parse_bandwidth_trace("# header\n\nbw 0 1000000.0\n  \nbw 1000000000 2e6\n").unwrap();
        assert_eq!(tr.points().len(), 2);
    }
}
