//! Checkpoint serialization: merged aggregates + shard cursor.
//!
//! The format is a versioned, line-oriented text file. Every value
//! roundtrips exactly — floats are serialized as hexadecimal bit
//! patterns, sums as their raw fixed-point integers — so a resumed
//! campaign continues from *bit-identical* state and the final output is
//! byte-for-byte the same as an uninterrupted run. Writes go through a
//! temp file + rename, so a kill mid-write leaves the previous
//! checkpoint intact.

use std::path::Path;

use eavs_metrics::histogram::Histogram;
use eavs_metrics::stats::ExactSum;

use crate::aggregate::{FleetAggregate, GovAggregate};

/// Format magic + version line.
const MAGIC: &str = "eavs-fleet-checkpoint/v1";

pub(crate) fn push_hist(out: &mut String, key: &str, h: &Histogram) {
    out.push_str(key);
    out.push(' ');
    out.push_str(&format!(
        "{:016x} {:016x} {} {}",
        h.lo().to_bits(),
        h.hi().to_bits(),
        h.underflow(),
        h.overflow()
    ));
    for i in 0..h.num_bins() {
        out.push_str(&format!(" {}", h.bin_count(i)));
    }
    out.push('\n');
}

pub(crate) fn push_sum(out: &mut String, key: &str, s: &ExactSum) {
    let (nanos, count) = s.raw();
    out.push_str(&format!("{key} {nanos} {count}\n"));
}

fn push_f64_bits(out: &mut String, key: &str, v: f64) {
    out.push_str(&format!("{key} {:016x}\n", v.to_bits()));
}

/// Encodes an aggregate as checkpoint text.
pub fn encode(agg: &FleetAggregate) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("campaign {:032x}\n", agg.campaign));
    out.push_str(&format!("shards_done {}\n", agg.shards_done));
    out.push_str(&format!("sessions_done {}\n", agg.sessions_done));
    push_hist(&mut out, "arrivals", &agg.arrivals);
    out.push_str(&format!("govs {}\n", agg.govs.len()));
    for g in &agg.govs {
        out.push_str(&format!("gov {}\n", g.name));
        out.push_str(&format!("sessions {}\n", g.sessions));
        push_hist(&mut out, "cpu_j", &g.cpu_j);
        push_sum(&mut out, "cpu_j_sum", &g.cpu_j_sum);
        push_f64_bits(&mut out, "cpu_j_min", g.cpu_j_min);
        push_f64_bits(&mut out, "cpu_j_max", g.cpu_j_max);
        push_sum(&mut out, "radio_j_sum", &g.radio_j_sum);
        push_sum(&mut out, "device_radio_j_sum", &g.device_radio_j_sum);
        push_sum(&mut out, "device_display_j_sum", &g.device_display_j_sum);
        push_sum(&mut out, "device_decoder_j_sum", &g.device_decoder_j_sum);
        out.push_str(&format!("radio_promotions {}\n", g.radio_promotions));
        push_hist(&mut out, "qoe", &g.qoe);
        push_sum(&mut out, "qoe_sum", &g.qoe_sum);
        push_hist(&mut out, "startup_ms", &g.startup_ms);
        push_sum(&mut out, "startup_ms_sum", &g.startup_ms_sum);
        out.push_str(&format!("rebuffer_events {}\n", g.rebuffer_events));
        push_sum(&mut out, "rebuffer_secs", &g.rebuffer_secs);
        out.push_str(&format!("late_vsyncs {}\n", g.late_vsyncs));
        out.push_str(&format!("frames_dropped {}\n", g.frames_dropped));
        out.push_str(&format!("frames_displayed {}\n", g.frames_displayed));
        out.push_str(&format!("total_frames {}\n", g.total_frames));
        out.push_str(&format!("transitions {}\n", g.transitions));
        push_sum(&mut out, "mean_freq_mhz_sum", &g.mean_freq_mhz_sum);
        push_sum(&mut out, "bitrate_kbps_sum", &g.bitrate_kbps_sum);
        push_sum(&mut out, "session_secs", &g.session_secs);
        out.push_str(&format!("perfect_sessions {}\n", g.perfect_sessions));
        out.push_str(&format!("panic_races {}\n", g.panic_races));
        out.push_str(&format!("download_retries {}\n", g.download_retries));
    }
    // The workload-prior section rides between the governor lanes and the
    // terminator. An empty store still writes its `prior 0` header, but
    // decode tolerates checkpoints written before the section existed.
    crate::prior::encode_body(&mut out, &agg.prior);
    out.push_str("end\n");
    out
}

/// Line cursor with keyed-field helpers for decoding (shared with the
/// prior codec in [`crate::prior`]).
pub(crate) struct Lines<'a> {
    iter: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Lines<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        Lines {
            iter: text.lines(),
            line_no: 0,
        }
    }

    pub(crate) fn next(&mut self) -> Result<&'a str, String> {
        self.line_no += 1;
        self.iter
            .next()
            .ok_or(format!("checkpoint truncated at line {}", self.line_no))
    }

    /// Next line, which must start with `key `; returns the rest.
    pub(crate) fn field(&mut self, key: &str) -> Result<&'a str, String> {
        let line = self.next()?;
        line.strip_prefix(key)
            .and_then(|rest| {
                rest.strip_prefix(' ')
                    .or(Some(rest).filter(|r| r.is_empty()))
            })
            .ok_or(format!(
                "checkpoint line {}: expected {key:?}, got {line:?}",
                self.line_no
            ))
    }

    pub(crate) fn parse<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, String> {
        let raw = self.field(key)?;
        raw.parse()
            .map_err(|_| format!("checkpoint: bad {key} value {raw:?}"))
    }

    fn f64_bits(&mut self, key: &str) -> Result<f64, String> {
        let raw = self.field(key)?;
        u64::from_str_radix(raw, 16)
            .map(f64::from_bits)
            .map_err(|_| format!("checkpoint: bad {key} bits {raw:?}"))
    }

    pub(crate) fn sum(&mut self, key: &str) -> Result<ExactSum, String> {
        let raw = self.field(key)?;
        let mut parts = raw.split(' ');
        let nanos: i128 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or(format!("checkpoint: bad {key} sum"))?;
        let count: u64 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or(format!("checkpoint: bad {key} count"))?;
        Ok(ExactSum::from_raw(nanos, count))
    }

    pub(crate) fn hist(&mut self, key: &str) -> Result<Histogram, String> {
        let raw = self.field(key)?;
        let mut parts = raw.split(' ');
        let mut bits = |what: &str| -> Result<f64, String> {
            parts
                .next()
                .and_then(|p| u64::from_str_radix(p, 16).ok())
                .map(f64::from_bits)
                .ok_or(format!("checkpoint: bad {key} {what}"))
        };
        let lo = bits("lo")?;
        let hi = bits("hi")?;
        let mut ints = parts.map(|p| {
            p.parse::<u64>()
                .map_err(|_| format!("checkpoint: bad {key} count {p:?}"))
        });
        let underflow = ints
            .next()
            .ok_or(format!("checkpoint: {key} truncated"))??;
        let overflow = ints
            .next()
            .ok_or(format!("checkpoint: {key} truncated"))??;
        let bins = ints.collect::<Result<Vec<u64>, String>>()?;
        if bins.is_empty() {
            return Err(format!("checkpoint: {key} has no bins"));
        }
        Ok(Histogram::from_parts(lo, hi, bins, underflow, overflow))
    }
}

/// Decodes checkpoint text.
///
/// # Errors
///
/// Returns a message on version mismatch, truncation or malformed values.
pub fn decode(text: &str) -> Result<FleetAggregate, String> {
    let mut lines = Lines::new(text);
    let magic = lines.next()?;
    if magic != MAGIC {
        return Err(format!(
            "unsupported checkpoint format {magic:?} (want {MAGIC:?})"
        ));
    }
    let campaign = {
        let raw = lines.field("campaign")?;
        u128::from_str_radix(raw, 16).map_err(|_| format!("bad campaign fingerprint {raw:?}"))?
    };
    let shards_done = lines.parse("shards_done")?;
    let sessions_done = lines.parse("sessions_done")?;
    let arrivals = lines.hist("arrivals")?;
    let gov_count: usize = lines.parse("govs")?;
    let mut govs = Vec::with_capacity(gov_count);
    for _ in 0..gov_count {
        let name = lines.field("gov")?.to_owned();
        let sessions = lines.parse("sessions")?;
        let cpu_j = lines.hist("cpu_j")?;
        let cpu_j_sum = lines.sum("cpu_j_sum")?;
        let cpu_j_min = lines.f64_bits("cpu_j_min")?;
        let cpu_j_max = lines.f64_bits("cpu_j_max")?;
        let radio_j_sum = lines.sum("radio_j_sum")?;
        let device_radio_j_sum = lines.sum("device_radio_j_sum")?;
        let device_display_j_sum = lines.sum("device_display_j_sum")?;
        let device_decoder_j_sum = lines.sum("device_decoder_j_sum")?;
        let radio_promotions = lines.parse("radio_promotions")?;
        let qoe = lines.hist("qoe")?;
        let qoe_sum = lines.sum("qoe_sum")?;
        let startup_ms = lines.hist("startup_ms")?;
        let startup_ms_sum = lines.sum("startup_ms_sum")?;
        let rebuffer_events = lines.parse("rebuffer_events")?;
        let rebuffer_secs = lines.sum("rebuffer_secs")?;
        let late_vsyncs = lines.parse("late_vsyncs")?;
        let frames_dropped = lines.parse("frames_dropped")?;
        let frames_displayed = lines.parse("frames_displayed")?;
        let total_frames = lines.parse("total_frames")?;
        let transitions = lines.parse("transitions")?;
        let mean_freq_mhz_sum = lines.sum("mean_freq_mhz_sum")?;
        let bitrate_kbps_sum = lines.sum("bitrate_kbps_sum")?;
        let session_secs = lines.sum("session_secs")?;
        let perfect_sessions = lines.parse("perfect_sessions")?;
        let panic_races = lines.parse("panic_races")?;
        let download_retries = lines.parse("download_retries")?;
        govs.push(GovAggregate {
            name,
            sessions,
            cpu_j,
            cpu_j_sum,
            cpu_j_min,
            cpu_j_max,
            radio_j_sum,
            device_radio_j_sum,
            device_display_j_sum,
            device_decoder_j_sum,
            radio_promotions,
            qoe,
            qoe_sum,
            startup_ms,
            startup_ms_sum,
            rebuffer_events,
            rebuffer_secs,
            late_vsyncs,
            frames_dropped,
            frames_displayed,
            total_frames,
            transitions,
            mean_freq_mhz_sum,
            bitrate_kbps_sum,
            session_secs,
            perfect_sessions,
            panic_races,
            download_retries,
        });
    }
    // Tolerant prior section: same-version checkpoints written before the
    // fleet knowledge store existed end right after the governor lanes,
    // and decode as an empty store.
    let line = lines.next()?;
    let prior = match line.strip_prefix("prior ") {
        Some(raw) => {
            let entries: usize = raw
                .parse()
                .map_err(|_| format!("checkpoint: bad prior count {raw:?}"))?;
            let store = crate::prior::decode_body(&mut lines, entries)?;
            lines.field("end")?;
            store
        }
        None if line == "end" => crate::prior::PriorStore::new(),
        None => {
            return Err(format!(
                "checkpoint: expected \"prior\" or \"end\", got {line:?}"
            ))
        }
    };
    Ok(FleetAggregate {
        campaign,
        shards_done,
        sessions_done,
        arrivals,
        govs,
        prior,
    })
}

/// Writes a checkpoint atomically (temp file in the same directory, then
/// rename).
///
/// # Errors
///
/// Returns a message on I/O failure.
pub fn save(path: &Path, agg: &FleetAggregate) -> Result<(), String> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, encode(agg))
        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot rename {} to {}: {e}", tmp.display(), path.display()))
}

/// Loads a checkpoint, `Ok(None)` when the file does not exist.
///
/// # Errors
///
/// Returns a message on I/O failure or a corrupt/incompatible file.
pub fn load(path: &Path) -> Result<Option<FleetAggregate>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    decode(&text).map(Some).map_err(|e| {
        format!(
            "corrupt checkpoint {} ({e}); delete it to restart the campaign",
            path.display()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{builder_for, draw_session};
    use crate::spec::CampaignSpec;

    fn populated_aggregate() -> (CampaignSpec, FleetAggregate) {
        // A powered spec, so the device-power sums round-trip with real
        // (non-zero) values rather than the trivial empty ones.
        let mut spec = CampaignSpec::smoke();
        spec.power = eavs_power::DevicePowerModel::phone();
        let mut agg = FleetAggregate::new(&spec);
        for id in 0..3 {
            let draw = draw_session(&spec, id);
            agg.observe_arrival(draw.arrival_s);
            for (gov_index, gov) in spec.governors.iter().enumerate() {
                let report = builder_for(&draw, gov).unwrap().run();
                agg.observe(gov_index, &report);
            }
        }
        agg.shards_done = 1;
        (spec, agg)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let (_, agg) = populated_aggregate();
        assert!(agg.govs[0].device_radio_j_sum.value() > 0.0);
        assert!(agg.govs[0].radio_promotions > 0);
        let decoded = decode(&encode(&agg)).unwrap();
        assert_eq!(decoded, agg);
        // Including the empty-lane sentinels.
        let empty = FleetAggregate::new(&CampaignSpec::smoke());
        let decoded = decode(&encode(&empty)).unwrap();
        assert_eq!(decoded, empty);
        assert!(decoded.govs[0].cpu_j_min.is_infinite());
    }

    #[test]
    fn save_load_roundtrips_and_missing_is_none() {
        let (_, agg) = populated_aggregate();
        let dir = std::env::temp_dir().join(format!("eavs-fleet-ckpt-{}", std::process::id()));
        let path = dir.join("smoke.ckpt");
        save(&path, &agg).unwrap();
        assert_eq!(load(&path).unwrap().unwrap(), agg);
        assert!(load(&dir.join("absent.ckpt")).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prior_section_roundtrips_through_the_checkpoint() {
        let (spec, mut agg) = populated_aggregate();
        let draw = draw_session(&spec, 0);
        let report = builder_for(&draw, &spec.governors[0]).unwrap().run();
        agg.observe_prior(&draw.title.key(), draw.content.name(), &report.frame_cycles);
        assert!(!agg.prior.is_empty());
        let decoded = decode(&encode(&agg)).unwrap();
        assert_eq!(decoded, agg);
        assert_eq!(decoded.prior.total_frames(), agg.prior.total_frames());
    }

    #[test]
    fn checkpoints_without_a_prior_section_decode_to_an_empty_store() {
        // Pre-prior checkpoints end right after the governor lanes; they
        // must keep resuming (to an empty fleet prior), not be rejected.
        let (_, agg) = populated_aggregate();
        let text = encode(&agg);
        let legacy = text.replace("prior 0\n", "");
        assert_ne!(legacy, text);
        let decoded = decode(&legacy).unwrap();
        assert_eq!(decoded, agg);
        assert!(decoded.prior.is_empty());
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        assert!(decode("not a checkpoint")
            .unwrap_err()
            .contains("unsupported"));
        let (_, agg) = populated_aggregate();
        let text = encode(&agg);
        // Truncation.
        let cut = &text[..text.len() / 2];
        assert!(decode(cut).is_err());
        // Field corruption.
        let bad = text.replace("shards_done 1", "shards_done banana");
        assert!(decode(&bad).unwrap_err().contains("shards_done"));
    }
}
