//! # eavs-trace — workload generation and trace formats
//!
//! Synthetic-but-structured workloads for the EAVS experiments:
//!
//! * [`content`] — content classes (animation/film/sport) with the
//!   complexity and burstiness knobs that stress workload prediction.
//! * [`video_gen`] — deterministic, position-addressable video generation
//!   (same `(segment, rung)` is identical regardless of ABR path).
//! * [`net_gen`] — Markov-modulated bandwidth presets (WiFi/LTE/HSPA).
//! * [`memo`] — process-wide keyed caches so identical generator inputs
//!   build their segments and traces once and share them as `Arc`s.
//! * [`format`](mod@format) — plain-text `.vtrace`/`.btrace` round-trip formats.
//!
//! Why synthetic: the paper uses commercial clips and drive traces we
//! cannot redistribute; these generators reproduce the statistical
//! structure that makes the problem hard (heavy-tailed I-frames,
//! scene-change correlation, sticky network states). See DESIGN.md §2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod format;
pub mod memo;
pub mod net_gen;
pub mod video_gen;

pub use content::ContentProfile;
pub use format::{
    parse_bandwidth_trace, parse_video_trace, write_bandwidth_trace, write_video_trace, ParseError,
    VideoTrace,
};
pub use net_gen::NetworkProfile;
pub use video_gen::VideoGenerator;
