//! Property tests for the session fingerprint: it must be *sound* (equal
//! fingerprints always mean byte-identical reports) and *sensitive* (any
//! single-knob change produces a different fingerprint, so the cache can
//! never serve a stale report for a perturbed configuration).

use eavs_core::session::{ClusterSelect, SessionBuilder, StreamingSession};
use eavs_cpu::soc::SocModel;
use eavs_net::abr::FixedAbr;
use eavs_sim::time::{SimDuration, SimTime};
use eavs_trace::content::ContentProfile;
use eavs_video::display::LatePolicy;
use eavs_video::manifest::Manifest;
use proptest::prelude::*;

fn content(i: u8) -> ContentProfile {
    ContentProfile::ALL[i as usize % ContentProfile::ALL.len()]
}

/// A short session parameterized by the proptest-chosen knobs.
fn builder(seed: u64, secs: u64, content_idx: u8, rtt_ms: u64, buffer_s: u64) -> SessionBuilder {
    StreamingSession::builder(eavs_bench::harness::governor("eavs"))
        .manifest(Manifest::single(
            3_000,
            1280,
            720,
            SimDuration::from_secs(secs),
            30,
        ))
        .content(content(content_idx))
        .seed(seed)
        .rtt(SimDuration::from_millis(rtt_ms))
        .max_buffer(SimDuration::from_secs(buffer_s))
}

proptest! {
    /// Soundness: two builders with equal fingerprints produce identical
    /// reports — every field the CSV rows are derived from matches bit
    /// for bit, so a cache hit is indistinguishable from a rerun.
    #[test]
    fn equal_fingerprints_mean_identical_reports(
        seed in 0u64..1_000,
        secs in 2u64..5,
        content_idx in 0u8..8,
        rtt_ms in 10u64..80,
        buffer_s in 4u64..12,
    ) {
        let a = builder(seed, secs, content_idx, rtt_ms, buffer_s);
        let b = builder(seed, secs, content_idx, rtt_ms, buffer_s);
        let fa = a.fingerprint().expect("cacheable");
        let fb = b.fingerprint().expect("cacheable");
        prop_assert_eq!(fa, fb);

        let ra = a.run();
        let rb = b.run();
        prop_assert_eq!(ra.summary(), rb.summary());
        prop_assert_eq!(ra.cpu_energy.busy_j.to_bits(), rb.cpu_energy.busy_j.to_bits());
        prop_assert_eq!(ra.cpu_energy.idle_j.to_bits(), rb.cpu_energy.idle_j.to_bits());
        prop_assert_eq!(ra.radio.energy_j.to_bits(), rb.radio.energy_j.to_bits());
        prop_assert_eq!(ra.transitions, rb.transitions);
        prop_assert_eq!(ra.events_processed, rb.events_processed);
        prop_assert_eq!(&ra.time_in_state, &rb.time_in_state);
        prop_assert_eq!(&*ra.cluster, &*rb.cluster);
    }

    /// Sensitivity: perturbing any single knob yields a fingerprint
    /// distinct from the base configuration's.
    #[test]
    fn single_knob_perturbation_changes_fingerprint(
        seed in 0u64..1_000,
        secs in 2u64..5,
        content_idx in 0u8..8,
        rtt_ms in 10u64..80,
        buffer_s in 4u64..12,
    ) {
        let base = builder(seed, secs, content_idx, rtt_ms, buffer_s)
            .fingerprint()
            .expect("cacheable");

        let mk = || builder(seed, secs, content_idx, rtt_ms, buffer_s);
        let perturbed: Vec<(&str, SessionBuilder)> = vec![
            ("seed", mk().seed(seed + 1)),
            ("content", builder(seed, secs, content_idx + 1, rtt_ms, buffer_s)),
            ("manifest", mk().manifest(Manifest::single(
                3_001, 1280, 720, SimDuration::from_secs(secs), 30))),
            ("soc", mk().soc(SocModel::MidRange)),
            ("governor", StreamingSession::builder(
                eavs_bench::harness::governor("ondemand"))
                .manifest(Manifest::single(3_000, 1280, 720, SimDuration::from_secs(secs), 30))
                .content(content(content_idx))
                .seed(seed)
                .rtt(SimDuration::from_millis(rtt_ms))
                .max_buffer(SimDuration::from_secs(buffer_s))),
            ("rtt", mk().rtt(SimDuration::from_millis(rtt_ms + 1))),
            ("max_buffer", mk().max_buffer(SimDuration::from_secs(buffer_s + 1))),
            ("decoded_cap", mk().decoded_cap(7)),
            ("startup_frames", mk().startup_frames(9)),
            ("resume_frames", mk().resume_frames(11)),
            ("record_series", mk().record_series(true)),
            ("drive_via_sysfs", mk().drive_via_sysfs(true)),
            ("horizon", mk().horizon(SimTime::from_secs(1))),
            ("late_policy", mk().late_policy(LatePolicy::Drop)),
            ("cluster", mk().cluster(ClusterSelect::Little)),
            ("background", mk().background_load(0.2, SimDuration::from_millis(50))),
            // The builder default is FixedAbr rung 0, so rung 1 is the
            // minimal ABR perturbation.
            ("abr", mk().abr(Box::new(FixedAbr::new(1)))),
        ];
        for (knob, b) in perturbed {
            let fp = b.fingerprint().expect("cacheable");
            prop_assert!(fp != base, "knob {knob} did not change the fingerprint");
        }
    }
}
