//! Integration tests for the `eavsd` fleet-campaign daemon: a campaign
//! served over the HTTP control plane must produce bytes identical to a
//! direct in-process `run_campaign` — at any worker count, across a
//! daemon kill/restart, and after a cancel/resubmit — and malformed
//! input must map to structured HTTP errors, never a crash or a silent
//! wrong answer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eavs::daemon::http::client;
use eavs::daemon::worker::{run_worker, SharedRunner};
use eavs::daemon::{codec, json, registry, Daemon, DaemonOptions};
use eavs_fleet::campaign::RunOptions;
use eavs_fleet::{checkpoint, CampaignSpec};

fn pooled() -> SharedRunner {
    Arc::new(eavs_bench::fleet::pooled_runner)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("eavsd-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small but real campaign: 3 shards, 2 governor lanes.
fn small_spec(name: &str) -> CampaignSpec {
    let mut spec = CampaignSpec::smoke();
    spec.name = name.to_owned();
    spec.sessions = 12;
    spec.shard_size = 4;
    spec
}

fn daemon_opts(tag: &str) -> DaemonOptions {
    let mut opts = DaemonOptions::new(temp_dir(tag));
    opts.checkpoint_every = 1;
    opts
}

/// The reference bytes: a direct, single-process run of the same spec,
/// encoded exactly as `GET /campaigns/{id}/result` serves them.
fn reference_bytes(spec: &CampaignSpec) -> String {
    let outcome = eavs_fleet::run_campaign(
        spec,
        &RunOptions::default(),
        &eavs_bench::fleet::pooled_runner,
    )
    .unwrap();
    checkpoint::encode(&outcome.aggregate)
}

/// Polls progress until the campaign leaves `running`; returns the
/// final phase name.
fn wait_terminal(addr: &str, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = client::request_text(addr, "GET", &format!("/campaigns/{id}"), "")
            .expect("progress poll");
        assert_eq!(status, 200, "{body}");
        let v = json::parse(&body).unwrap();
        let phase = v.get("phase").and_then(json::Value::as_str).unwrap().to_owned();
        if phase != "running" {
            return phase;
        }
        assert!(Instant::now() < deadline, "campaign {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn http_campaign_matches_direct_run_bytes() {
    let spec = small_spec("daemon-direct");
    let expected = reference_bytes(&spec);

    let daemon = Daemon::start(daemon_opts("direct"), pooled()).unwrap();
    let addr = daemon.addr();

    let (status, body) =
        client::request_text(&addr, "POST", "/campaigns", &codec::encode_spec(&spec)).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    let id = v.get("id").and_then(json::Value::as_str).unwrap().to_owned();
    assert_eq!(id, registry::campaign_id(&spec));
    assert_eq!(v.get("resumed").and_then(json::Value::as_bool), Some(false));

    assert_eq!(wait_terminal(&addr, &id), "complete");
    let (status, served) =
        client::request_text(&addr, "GET", &format!("/campaigns/{id}/result"), "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(served, expected, "HTTP result must be byte-identical to a direct run");

    // The progress body reports real throughput and full lane snapshots.
    let (_, progress) =
        client::request_text(&addr, "GET", &format!("/campaigns/{id}"), "").unwrap();
    let v = json::parse(&progress).unwrap();
    assert_eq!(v.get("shards_done").and_then(json::Value::as_u64), Some(3));
    assert_eq!(v.get("sessions_done").and_then(json::Value::as_u64), Some(12));
    let govs = v.get("govs").and_then(json::Value::as_arr).unwrap();
    assert_eq!(govs.len(), spec.governors.len());
    assert!(govs[0].get("mean_cpu_j").and_then(json::Value::as_f64).unwrap() > 0.0);

    // /metrics serves the fleet families with the 0.0.4 content type,
    // scrape-conformant.
    let (status, content_type, page) =
        client::request_full(&addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(status, 200);
    assert_eq!(content_type, eavs_obs::TEXT_FORMAT);
    let page = String::from_utf8(page).unwrap();
    eavs_obs::check_conformance(&page).unwrap();
    assert!(page.contains(&format!("campaign=\"{}\"", spec.name)), "{page}");

    let (status, body) = client::request_text(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // The completed campaign taught the daemon its workload prior:
    // GET /priors serves exactly the prior a direct run would train.
    let direct = eavs_fleet::run_campaign(
        &spec,
        &RunOptions::default(),
        &eavs_bench::fleet::pooled_runner,
    )
    .unwrap();
    let (status, served_prior) = client::request_text(&addr, "GET", "/priors", "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        served_prior,
        eavs_fleet::prior::encode(&direct.aggregate.prior),
        "served prior must match the direct run's training bytes"
    );

    // POST /priors merges a document in and reports the new totals.
    let (status, body) =
        client::request_text(&addr, "POST", "/priors", &served_prior).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(
        v.get("frames").and_then(json::Value::as_u64),
        Some(2 * direct.aggregate.prior.total_frames()),
        "{body}"
    );
    let (status, body) = client::request_text(&addr, "POST", "/priors", "garbage").unwrap();
    assert_eq!(status, 400, "{body}");
    daemon.shutdown();
}

#[test]
fn two_http_workers_and_a_daemon_restart_stay_byte_identical() {
    let spec = small_spec("daemon-scaleout");
    let expected = reference_bytes(&spec);
    let state = temp_dir("scaleout");

    // Phase 1: coordinator with NO local workers; two remote workers
    // drive every shard over HTTP. Kill the coordinator mid-campaign.
    let first_id;
    {
        let mut opts = DaemonOptions::new(state.clone());
        opts.checkpoint_every = 1;
        opts.workers = 0;
        let daemon = Daemon::start(opts, pooled()).unwrap();
        let addr = daemon.addr();

        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || run_worker(&addr, &pooled(), &stop))
            })
            .collect();

        let (status, body) =
            client::request_text(&addr, "POST", "/campaigns", &codec::encode_spec(&spec))
                .unwrap();
        assert_eq!(status, 200, "{body}");
        first_id = json::parse(&body)
            .unwrap()
            .get("id")
            .and_then(json::Value::as_str)
            .unwrap()
            .to_owned();

        // Wait for at least one checkpointed shard, then tear the
        // coordinator down mid-campaign (workers and all).
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let (_, body) =
                client::request_text(&addr, "GET", &format!("/campaigns/{first_id}"), "")
                    .unwrap();
            let v = json::parse(&body).unwrap();
            let done = v.get("shards_done").and_then(json::Value::as_u64).unwrap();
            let phase = v.get("phase").and_then(json::Value::as_str).unwrap().to_owned();
            if done >= 1 || phase != "running" {
                break;
            }
            assert!(Instant::now() < deadline, "no shard ever completed");
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::SeqCst);
        for w in workers {
            w.join().unwrap();
        }
        daemon.shutdown();
    }

    // Phase 2: a fresh daemon on the same state dir recovers the
    // campaign from its checkpoint; resubmitting the same spec is
    // idempotent and rides the resume. Local workers finish it.
    {
        let mut opts = DaemonOptions::new(state.clone());
        opts.checkpoint_every = 1;
        opts.workers = 2;
        let daemon = Daemon::start(opts, pooled()).unwrap();
        let addr = daemon.addr();

        let (status, body) =
            client::request_text(&addr, "POST", "/campaigns", &codec::encode_spec(&spec))
                .unwrap();
        assert_eq!(status, 200, "{body}");
        let v = json::parse(&body).unwrap();
        assert_eq!(
            v.get("id").and_then(json::Value::as_str),
            Some(first_id.as_str()),
            "same spec, same id"
        );
        assert_eq!(v.get("resumed").and_then(json::Value::as_bool), Some(true));

        assert_eq!(wait_terminal(&addr, &first_id), "complete");
        let (status, served) =
            client::request_text(&addr, "GET", &format!("/campaigns/{first_id}/result"), "")
                .unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            served, expected,
            "2 workers + kill/restart must not change a single byte"
        );
        daemon.shutdown();
    }
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn cancel_then_resubmit_resumes_to_identical_bytes() {
    let spec = small_spec("daemon-cancel");
    let expected = reference_bytes(&spec);

    // No local workers: the campaign sits claimable, so the cancel is
    // deterministic — nothing has run yet when it lands.
    let state = temp_dir("cancel");
    let mut opts = DaemonOptions::new(state.clone());
    opts.checkpoint_every = 1;
    opts.workers = 0;
    let daemon = Daemon::start(opts, pooled()).unwrap();
    let addr = daemon.addr();

    let (status, body) =
        client::request_text(&addr, "POST", "/campaigns", &codec::encode_spec(&spec)).unwrap();
    assert_eq!(status, 200, "{body}");
    let id = json::parse(&body)
        .unwrap()
        .get("id")
        .and_then(json::Value::as_str)
        .unwrap()
        .to_owned();

    let (status, body) =
        client::request_text(&addr, "DELETE", &format!("/campaigns/{id}"), "").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"phase\":\"cancelled\""), "{body}");

    // A cancelled campaign refuses its result with a structured 409…
    let (status, body) =
        client::request_text(&addr, "GET", &format!("/campaigns/{id}/result"), "").unwrap();
    assert_eq!(status, 409);
    assert!(body.contains("\"error\""), "{body}");
    daemon.shutdown();

    // …and a fresh daemon on the same state dir picks the campaign up
    // from its cancel checkpoint and runs it to the reference bytes.
    let mut opts = DaemonOptions::new(state.clone());
    opts.checkpoint_every = 1;
    let daemon = Daemon::start(opts, pooled()).unwrap();
    let addr = daemon.addr();
    assert_eq!(wait_terminal(&addr, &id), "complete");
    let (status, served) =
        client::request_text(&addr, "GET", &format!("/campaigns/{id}/result"), "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(served, expected);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn malformed_input_maps_to_structured_errors() {
    let daemon = Daemon::start(daemon_opts("errors"), pooled()).unwrap();
    let addr = daemon.addr();

    // Invalid JSON, wrong shape, unknown field, invalid spec → 400 with
    // a structured {"error", "detail"} body.
    for bad in [
        "{not json",
        "[]",
        "{\"name\":\"x\"}",
        &codec::encode_spec(&small_spec("bad")).replace("\"seed\"", "\"turbo\""),
    ] {
        let (status, body) = client::request_text(&addr, "POST", "/campaigns", bad).unwrap();
        assert_eq!(status, 400, "{bad:?} → {body}");
        let v = json::parse(&body).expect("error body is JSON");
        assert_eq!(
            v.get("error").and_then(json::Value::as_str),
            Some("invalid spec"),
            "{body}"
        );
        assert!(v.get("detail").is_some(), "{body}");
    }

    // Unknown ids and routes.
    let (status, body) =
        client::request_text(&addr, "GET", "/campaigns/deadbeef", "").unwrap();
    assert_eq!(status, 404, "{body}");
    let (status, _) = client::request_text(&addr, "GET", "/nope", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::request_text(&addr, "DELETE", "/metrics", "").unwrap();
    assert_eq!(status, 405);

    // A shard partial for an unknown campaign, and garbage partials.
    let (status, body) =
        client::request_text(&addr, "POST", "/campaigns/deadbeef/shards/0", "junk").unwrap();
    assert_eq!(status, 400, "{body}");

    // Oversized bodies are refused from the Content-Length header
    // alone — the daemon never buffers the payload.
    let huge = "x".repeat(2 * 1024 * 1024);
    let (status, body) = client::request_text(&addr, "POST", "/campaigns", &huge).unwrap();
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("\"error\""), "{body}");
    daemon.shutdown();
}

#[test]
fn a_tampered_checkpoint_is_refused_on_restart() {
    let spec = small_spec("daemon-tamper");
    let state = temp_dir("tamper");

    // Run the campaign to completion so the state dir holds a spec and
    // checkpoint pair.
    let daemon = Daemon::start(
        {
            let mut opts = DaemonOptions::new(state.clone());
            opts.checkpoint_every = 1;
            opts
        },
        pooled(),
    )
    .unwrap();
    let addr = daemon.addr();
    let (status, body) =
        client::request_text(&addr, "POST", "/campaigns", &codec::encode_spec(&spec)).unwrap();
    assert_eq!(status, 200, "{body}");
    let id = json::parse(&body)
        .unwrap()
        .get("id")
        .and_then(json::Value::as_str)
        .unwrap()
        .to_owned();
    assert_eq!(wait_terminal(&addr, &id), "complete");
    daemon.shutdown();

    // Swap the checkpoint for one belonging to a different campaign.
    let mut other = spec.clone();
    other.seed ^= 1;
    let foreign = eavs_fleet::FleetAggregate::new(&other);
    checkpoint::save(&state.join(format!("{id}.ckpt")), &foreign).unwrap();

    // The restarted daemon must refuse to open rather than resume into
    // a silently wrong aggregate.
    let err = Daemon::start(
        {
            let mut opts = DaemonOptions::new(state.clone());
            opts.checkpoint_every = 1;
            opts
        },
        pooled(),
    )
    .err()
    .expect("tampered checkpoint must refuse recovery");
    assert!(err.contains("CheckpointMismatch"), "{err}");
    let _ = std::fs::remove_dir_all(&state);
}
