//! Regenerates experiment `f13_ablations` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f13_ablations")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
