//! Per-phase cost breakdowns for a session.
//!
//! A [`PhaseProfile`] splits a session's activity across the pipeline
//! phases (download / decode / display / governor / other) on two
//! clocks:
//!
//! - **simulated time** — how long each phase occupied the modeled
//!   hardware (deterministic, part of the reproducibility surface);
//! - **wall time** — how long the host spent executing each phase's
//!   handlers (non-deterministic by nature, reported for perf work and
//!   explicitly excluded from trace dumps and fingerprints).
//!
//! `bench_report --profile` embeds one of these per benchmark run in
//! `BENCH_sim.json`.

use crate::event::Phase;

/// Aggregate cost of one pipeline phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Events attributed to the phase.
    pub events: u64,
    /// Host wall-clock spent in the phase's handlers, in nanoseconds.
    pub wall_ns: u64,
    /// Simulated time occupied by the phase, in nanoseconds.
    pub sim_ns: u64,
}

/// Per-phase breakdown of one session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Segment transfer activity.
    pub download: PhaseStats,
    /// Decode job activity.
    pub decode: PhaseStats,
    /// Vsync/presentation activity.
    pub display: PhaseStats,
    /// Governor sampling and decisions.
    pub governor: PhaseStats,
    /// Batched-kernel shard-runner overhead.
    pub batch_step: PhaseStats,
    /// Everything else.
    pub other: PhaseStats,
}

impl PhaseProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable stats bucket for one phase.
    pub fn stats_mut(&mut self, phase: Phase) -> &mut PhaseStats {
        match phase {
            Phase::Download => &mut self.download,
            Phase::Decode => &mut self.decode,
            Phase::Display => &mut self.display,
            Phase::Governor => &mut self.governor,
            Phase::BatchStep => &mut self.batch_step,
            Phase::Other => &mut self.other,
        }
    }

    /// Stats bucket for one phase.
    pub fn stats(&self, phase: Phase) -> &PhaseStats {
        match phase {
            Phase::Download => &self.download,
            Phase::Decode => &self.decode,
            Phase::Display => &self.display,
            Phase::Governor => &self.governor,
            Phase::BatchStep => &self.batch_step,
            Phase::Other => &self.other,
        }
    }

    /// Counts one event and its handler wall-time against a phase.
    pub fn note(&mut self, phase: Phase, wall_ns: u64) {
        let s = self.stats_mut(phase);
        s.events += 1;
        s.wall_ns += wall_ns;
    }

    /// Sets the simulated-time occupancy of a phase (filled once at
    /// end of session from the authoritative model state, not summed
    /// incrementally, so it cannot drift from the report).
    pub fn set_sim_ns(&mut self, phase: Phase, sim_ns: u64) {
        self.stats_mut(phase).sim_ns = sim_ns;
    }

    /// Total events across all phases.
    pub fn total_events(&self) -> u64 {
        Phase::ALL.iter().map(|p| self.stats(*p).events).sum()
    }

    /// Total handler wall-time across all phases, in nanoseconds.
    pub fn total_wall_ns(&self) -> u64 {
        Phase::ALL.iter().map(|p| self.stats(*p).wall_ns).sum()
    }

    /// Renders the profile as a JSON object string, matching the repo's
    /// hand-rolled-JSON house style:
    ///
    /// ```text
    /// {"download":{"events":12,"sim_ms":482.125,"wall_us":13},...}
    /// ```
    ///
    /// Simulated time is exact (nanoseconds rendered as fixed-point
    /// milliseconds); wall time is integer microseconds.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        out.push('{');
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let s = self.stats(*phase);
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                r#""{}":{{"events":{},"sim_ms":{}.{:06},"wall_us":{}}}"#,
                phase.name(),
                s.events,
                s.sim_ns / 1_000_000,
                s.sim_ns % 1_000_000,
                s.wall_ns / 1_000
            );
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_accumulates_per_phase() {
        let mut p = PhaseProfile::new();
        p.note(Phase::Download, 500);
        p.note(Phase::Download, 1_500);
        p.note(Phase::Governor, 250);
        assert_eq!(p.download.events, 2);
        assert_eq!(p.download.wall_ns, 2_000);
        assert_eq!(p.governor.events, 1);
        assert_eq!(p.total_events(), 3);
        assert_eq!(p.total_wall_ns(), 2_250);
    }

    #[test]
    fn sim_time_is_set_not_summed() {
        let mut p = PhaseProfile::new();
        p.set_sim_ns(Phase::Decode, 5_000_000);
        p.set_sim_ns(Phase::Decode, 7_000_000);
        assert_eq!(p.decode.sim_ns, 7_000_000);
    }

    #[test]
    fn json_shape_is_exact() {
        let mut p = PhaseProfile::new();
        p.note(Phase::Download, 13_000);
        p.set_sim_ns(Phase::Download, 482_125_000);
        let json = p.to_json();
        assert!(json
            .starts_with(r#"{"download":{"events":1,"sim_ms":482.125000,"wall_us":13},"decode":"#));
        assert!(json.ends_with(r#""other":{"events":0,"sim_ms":0.000000,"wall_us":0}}"#));
        // All six phases present, in order.
        for p in Phase::ALL {
            assert!(json.contains(&format!(r#""{}":{{"#, p.name())));
        }
    }
}
