//! Trace determinism: a seeded session's event timeline is a pure
//! function of the builder. The same builder traced twice — directly,
//! through the work-stealing pool, or under any `EAVS_JOBS` — must dump
//! byte-identical JSONL. CI enforces the cross-process version of this
//! (same `eavsctl trace` under `EAVS_JOBS=1` vs `8`, `cmp`); these
//! tests pin the in-process contract the gate relies on.

use eavs::faults::FaultPlan;
use eavs::obs::{shared, RingSink};
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::predictor_by_name;
use eavs::scaling::session::{GovernorChoice, SessionBuilder, StreamingSession};
use eavs::sim::time::SimDuration;
use eavs::tracegen::content::ContentProfile;
use eavs::video::manifest::Manifest;
use eavs_governors::by_name;
use proptest::prelude::*;

fn governor(name: &str) -> GovernorChoice {
    if name == "eavs" {
        GovernorChoice::Eavs(EavsGovernor::new(
            predictor_by_name("hybrid").unwrap(),
            EavsConfig::default(),
        ))
    } else {
        GovernorChoice::Baseline(by_name(name).unwrap())
    }
}

fn base(gov: &str, seed: u64) -> SessionBuilder {
    StreamingSession::builder(governor(gov))
        .manifest(Manifest::single(
            3_000,
            1280,
            720,
            SimDuration::from_secs(8),
            30,
        ))
        .content(ContentProfile::Film)
        .seed(seed)
}

/// Runs `builder` with a fresh ring sink and returns the JSONL dump.
fn jsonl_of(builder: SessionBuilder) -> String {
    let ring = shared(RingSink::new(1 << 17));
    let sink: eavs::obs::SharedSink = ring.clone();
    builder.trace(sink).run();
    let ring = ring.lock().expect("trace sink poisoned");
    assert_eq!(ring.dropped(), 0, "ring must be large enough for the test");
    ring.to_jsonl()
}

#[test]
fn same_builder_dumps_identical_jsonl() {
    let a = jsonl_of(base("eavs", 7));
    let b = jsonl_of(base("eavs", 7));
    assert_eq!(a, b);
    assert!(!a.is_empty());
    // Different seeds must diverge (the dump actually depends on input).
    let c = jsonl_of(base("eavs", 8));
    assert_ne!(a, c);
}

#[test]
fn pooled_and_direct_traces_are_identical() {
    // The direct dump on this thread...
    let direct = jsonl_of(base("eavs", 13));
    // ...must match dumps produced inside the shared work-stealing
    // pool, whatever worker (or helping caller) runs the job.
    let pooled = eavs_bench::executor::run_parallel(
        (0..4)
            .map(|_| || jsonl_of(base("eavs", 13)))
            .collect::<Vec<_>>(),
    );
    for dump in pooled {
        assert_eq!(direct, dump);
    }
}

#[test]
fn chrome_dump_is_deterministic_too() {
    let mk = || {
        let ring = shared(RingSink::new(1 << 17));
        let sink: eavs::obs::SharedSink = ring.clone();
        base("eavs", 19).trace(sink).run();
        let ring = ring.lock().expect("trace sink poisoned");
        ring.to_chrome_trace("trace-determinism")
    };
    assert_eq!(mk(), mk());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Byte-identical JSONL holds for any governor/fault/seed draw —
    /// fault-heavy timelines (retries, spikes, stalls) included.
    #[test]
    fn jsonl_is_deterministic_for_any_draw(
        gov_pick in 0u8..3,
        faulty in any::<bool>(),
        seed in 1u64..300,
    ) {
        let gov = ["ondemand", "schedutil", "eavs"][gov_pick as usize];
        let mk = || {
            let b = base(gov, seed);
            if faulty {
                b.faults(FaultPlan::standard_storm())
            } else {
                b
            }
        };
        prop_assert_eq!(jsonl_of(mk()), jsonl_of(mk()));
    }
}
