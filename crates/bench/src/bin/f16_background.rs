//! Regenerates experiment `f16_background` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f16_background")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
