//! Prometheus text-exposition export of a campaign aggregate.
//!
//! `eavsctl fleet --metrics-out metrics.prom` writes the page produced
//! here so a node-exporter textfile collector (or anything that speaks
//! the 0.0.4 text format) can scrape fleet campaigns: shard progress,
//! per-governor energy/QoE histograms, and the population fault
//! counters. Rendering goes through [`eavs_obs::PromWriter`], so the
//! page is deterministic: the same aggregate always produces the same
//! bytes, regardless of `EAVS_JOBS`, sharding or resume splits.

use eavs_obs::PromWriter;
pub use eavs_obs::{check_conformance, TEXT_FORMAT};

use crate::aggregate::{FleetAggregate, GovAggregate};
use crate::campaign::CampaignOutcome;
use crate::spec::CampaignSpec;

/// One per-lane scalar family: metric name, help text, lane accessor.
type CounterFamily = (&'static str, &'static str, fn(&GovAggregate) -> f64);

/// One per-lane histogram family: the accessor also supplies the exact
/// sum [`eavs_obs::PromWriter::histogram`] needs.
type HistFamily = (
    &'static str,
    &'static str,
    fn(&GovAggregate) -> (&eavs_metrics::histogram::Histogram, f64),
);

/// Renders the full campaign page.
pub fn render(agg: &FleetAggregate, spec: &CampaignSpec) -> String {
    let mut w = PromWriter::new();
    write_into(&mut w, agg, spec);
    w.finish()
}

/// Writes the campaign families into an existing page, so callers can
/// append process-local extras (e.g. the bench session-cache counters)
/// after the campaign block.
pub fn write_into(w: &mut PromWriter, agg: &FleetAggregate, spec: &CampaignSpec) {
    write_all_into(w, &[(agg, spec)]);
}

/// Writes the campaign families for *several* campaigns on one page —
/// the daemon's `/metrics` endpoint serves every resident campaign.
/// Each family's HELP/TYPE appears exactly once with the samples of all
/// campaigns grouped under it, as the exposition format requires; for a
/// single campaign the output is byte-identical to [`write_into`].
pub fn write_all_into(w: &mut PromWriter, campaigns: &[(&FleetAggregate, &CampaignSpec)]) {
    w.help(
        "eavs_fleet_shards_done",
        "Shards fully folded into the aggregate.",
    )
    .type_("eavs_fleet_shards_done", "gauge");
    for (agg, spec) in campaigns {
        w.sample(
            "eavs_fleet_shards_done",
            &[("campaign", spec.name.as_str())],
            agg.shards_done as f64,
        );
    }
    w.help("eavs_fleet_shards_total", "Shards in the campaign plan.")
        .type_("eavs_fleet_shards_total", "gauge");
    for (_, spec) in campaigns {
        w.sample(
            "eavs_fleet_shards_total",
            &[("campaign", spec.name.as_str())],
            spec.num_shards() as f64,
        );
    }
    w.help(
        "eavs_fleet_sessions_done",
        "Sessions folded in (counted once, not per lane).",
    )
    .type_("eavs_fleet_sessions_done", "counter");
    for (agg, spec) in campaigns {
        w.sample(
            "eavs_fleet_sessions_done",
            &[("campaign", spec.name.as_str())],
            agg.sessions_done as f64,
        );
    }

    // Per-lane counter families: HELP/TYPE once, then one sample per
    // campaign × governor so every family stays contiguous as the
    // format requires.
    let counters: &[CounterFamily] = &[
        (
            "eavs_fleet_lane_sessions",
            "Sessions folded into this governor lane.",
            |g| g.sessions as f64,
        ),
        (
            "eavs_fleet_rebuffer_events_total",
            "Rebuffer events across the lane population.",
            |g| g.rebuffer_events as f64,
        ),
        (
            "eavs_fleet_rebuffer_seconds_total",
            "Total rebuffering time across the lane, seconds.",
            |g| g.rebuffer_secs.value(),
        ),
        (
            "eavs_fleet_download_retries_total",
            "Segment downloads re-attempted after a timeout or corruption.",
            |g| g.download_retries as f64,
        ),
        (
            "eavs_fleet_panic_races_total",
            "EAVS panic re-races triggered across the lane.",
            |g| g.panic_races as f64,
        ),
        (
            "eavs_fleet_transitions_total",
            "CPU frequency transitions across the lane.",
            |g| g.transitions as f64,
        ),
        (
            "eavs_fleet_perfect_sessions_total",
            "Sessions with no deadline misses and no rebuffering.",
            |g| g.perfect_sessions as f64,
        ),
    ];
    for (name, help, get) in counters {
        w.help(name, help).type_(name, "counter");
        for (agg, spec) in campaigns {
            for g in &agg.govs {
                w.sample(
                    name,
                    &[("campaign", spec.name.as_str()), ("governor", &g.name)],
                    get(g),
                );
            }
        }
    }

    w.help(
        "eavs_fleet_deadline_miss_ratio",
        "Late plus dropped frames over offered vsync ticks.",
    )
    .type_("eavs_fleet_deadline_miss_ratio", "gauge");
    for (agg, spec) in campaigns {
        for g in &agg.govs {
            w.sample(
                "eavs_fleet_deadline_miss_ratio",
                &[("campaign", spec.name.as_str()), ("governor", &g.name)],
                g.miss_rate(),
            );
        }
    }

    // Distribution families: per-governor histograms with the matching
    // exact sums the aggregate already carries.
    let hists: &[HistFamily] = &[
        (
            "eavs_fleet_cpu_joules",
            "Per-session CPU energy, joules.",
            |g| (&g.cpu_j, g.cpu_j_sum.value()),
        ),
        (
            "eavs_fleet_qoe_score",
            "Per-session composite QoE score.",
            |g| (&g.qoe, g.qoe_sum.value()),
        ),
        (
            "eavs_fleet_startup_milliseconds",
            "Per-session startup delay, milliseconds.",
            |g| (&g.startup_ms, g.startup_ms_sum.value()),
        ),
    ];
    for (name, help, get) in hists {
        w.help(name, help).type_(name, "histogram");
        for (agg, spec) in campaigns {
            for g in &agg.govs {
                let (h, sum) = get(g);
                w.histogram(
                    name,
                    &[("campaign", spec.name.as_str()), ("governor", &g.name)],
                    h,
                    sum,
                );
            }
        }
    }
}

/// Writes the execution counters of one [`CampaignOutcome`]: how many
/// session-runs this invocation answered by differential decision
/// replay and how many went through the batched SoA kernel. Kept
/// separate from [`write_into`] because these describe how the
/// invocation executed, not the mergeable population aggregate —
/// resumed shards contribute nothing here. Both counts are
/// deterministic for a given spec and environment (the wave scheduler
/// decides replay roles on the submitting thread, independent of
/// `EAVS_JOBS`).
pub fn write_outcome_into(w: &mut PromWriter, outcome: &CampaignOutcome, spec: &CampaignSpec) {
    let base: &[(&str, &str)] = &[("campaign", spec.name.as_str())];
    w.help(
        "eavs_fleet_sessions_replayed_total",
        "Session-runs answered by differential decision replay.",
    )
    .type_("eavs_fleet_sessions_replayed_total", "counter")
    .sample(
        "eavs_fleet_sessions_replayed_total",
        base,
        outcome.replayed as f64,
    );
    w.help(
        "eavs_fleet_sessions_batched_total",
        "Session-runs executed through the batched SoA kernel.",
    )
    .type_("eavs_fleet_sessions_batched_total", "counter")
    .sample(
        "eavs_fleet_sessions_batched_total",
        base,
        outcome.batched as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{builder_for, draw_session};

    fn small_aggregate() -> (FleetAggregate, CampaignSpec) {
        let spec = CampaignSpec::smoke();
        let mut agg = FleetAggregate::new(&spec);
        for id in 0..3u64 {
            let draw = draw_session(&spec, id);
            let report = builder_for(&draw, "eavs").unwrap().run();
            agg.observe_arrival(id as f64 * 7.0);
            agg.observe(0, &report);
            agg.observe(1, &report);
        }
        agg.shards_done = 2;
        (agg, spec)
    }

    #[test]
    fn page_has_every_family_once_and_each_lane() {
        let (agg, spec) = small_aggregate();
        let page = render(&agg, &spec);
        for family in [
            "eavs_fleet_shards_done",
            "eavs_fleet_sessions_done",
            "eavs_fleet_lane_sessions",
            "eavs_fleet_deadline_miss_ratio",
            "eavs_fleet_cpu_joules",
            "eavs_fleet_qoe_score",
            "eavs_fleet_startup_milliseconds",
        ] {
            let type_lines = page
                .lines()
                .filter(|l| l.starts_with("# TYPE ") && l.split(' ').nth(2) == Some(family))
                .count();
            assert_eq!(type_lines, 1, "one TYPE line for {family}\n{page}");
        }
        for gov in &spec.governors {
            assert!(
                page.contains(&format!("governor=\"{gov}\"")),
                "lane {gov} missing\n{page}"
            );
        }
        assert!(page.contains("eavs_fleet_cpu_joules_bucket"));
        assert!(page.contains("le=\"+Inf\""));
    }

    #[test]
    fn rendering_is_deterministic() {
        let (agg, spec) = small_aggregate();
        assert_eq!(render(&agg, &spec), render(&agg, &spec));
    }

    #[test]
    fn campaign_page_is_scrape_conformant() {
        let (agg, spec) = small_aggregate();
        let mut w = PromWriter::new();
        write_into(&mut w, &agg, &spec);
        let outcome = crate::run_campaign(
            &spec,
            &crate::RunOptions {
                halt_after_shards: Some(0),
                ..crate::RunOptions::default()
            },
            &crate::campaign::serial_runner,
        )
        .unwrap();
        write_outcome_into(&mut w, &outcome, &spec);
        check_conformance(w.as_str()).unwrap();
        assert_eq!(TEXT_FORMAT, "text/plain; version=0.0.4");
    }

    #[test]
    fn outcome_counters_render_with_campaign_label() {
        let spec = CampaignSpec::smoke();
        let outcome = crate::run_campaign(
            &spec,
            &crate::RunOptions::default(),
            &crate::campaign::serial_runner,
        )
        .unwrap();
        let mut w = PromWriter::new();
        write_outcome_into(&mut w, &outcome, &spec);
        let page = w.finish();
        assert!(page.contains("# TYPE eavs_fleet_sessions_replayed_total counter"));
        assert!(page.contains(&format!(
            "eavs_fleet_sessions_replayed_total{{campaign=\"{}\"}} {}",
            spec.name, outcome.replayed
        )));
        assert!(page.contains(&format!(
            "eavs_fleet_sessions_batched_total{{campaign=\"{}\"}} {}",
            spec.name, outcome.batched
        )));
        // The serial runner never replays or batches.
        assert_eq!(outcome.replayed, 0);
        assert_eq!(outcome.batched, 0);
    }

    #[test]
    fn multi_campaign_page_groups_families_once() {
        let (agg_a, spec_a) = small_aggregate();
        let mut spec_b = CampaignSpec::smoke();
        spec_b.name = "second".to_owned();
        let agg_b = FleetAggregate::new(&spec_b);
        let mut w = PromWriter::new();
        write_all_into(&mut w, &[(&agg_a, &spec_a), (&agg_b, &spec_b)]);
        let page = w.finish();
        check_conformance(&page).unwrap();
        assert!(page.contains("campaign=\"smoke\""));
        assert!(page.contains("campaign=\"second\""));
        let shards_type_lines = page
            .lines()
            .filter(|l| l.starts_with("# TYPE eavs_fleet_shards_done "))
            .count();
        assert_eq!(shards_type_lines, 1, "family header must appear once");
    }

    #[test]
    fn write_into_appends_after_existing_content() {
        let (agg, spec) = small_aggregate();
        let mut w = PromWriter::new();
        w.sample("eavs_custom_preamble", &[], 1.0);
        write_into(&mut w, &agg, &spec);
        let page = w.finish();
        assert!(page.starts_with("eavs_custom_preamble 1\n"));
        assert!(page.contains("eavs_fleet_shards_done"));
    }
}
