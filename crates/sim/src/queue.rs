//! The pending-event queue.
//!
//! A binary-heap priority queue keyed on `(time, sequence)` so that events
//! scheduled for the same instant pop in FIFO order — a property several
//! state machines in the simulator rely on (e.g. "frequency applied" must be
//! observed before a decode-completion check scheduled afterwards at the same
//! instant).
//!
//! Cancellation is *lazy*: [`EventQueue::cancel`] marks the event id and the
//! entry is dropped when it reaches the top of the heap. This keeps both
//! scheduling and cancellation `O(log n)` amortized.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

use crate::time::SimTime;

/// A handle identifying a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number. Mostly useful for logging.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev#{}", self.0)
    }
}

struct Entry<E> {
    time: SimTime,
    event: E,
}

/// Orders entries by `(time, id)`; wrapped in `Reverse` for min-heap usage.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Key(SimTime, EventId);

/// A time-ordered queue of pending simulation events.
///
/// ```
/// use eavs_sim::queue::EventQueue;
/// use eavs_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// let a = q.push(SimTime::from_millis(5), "late");
/// let _b = q.push(SimTime::from_millis(1), "early");
/// q.cancel(a);
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_millis(1), "early"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    // The heap holds only ordering keys; the payloads live in `entries` so
    // that `E` needs no `Ord` bound and cancellation can reclaim memory.
    heap: BinaryHeap<Reverse<Key>>,
    entries: HashMap<EventId, Entry<E>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            entries: HashMap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`, returning its id.
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let id = EventId(self.next_seq);
        self.next_seq += 1;
        self.entries.insert(id, Entry { time, event });
        self.heap.push(Reverse(Key(time, id)));
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.entries.remove(&id).is_some() {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.purge_cancelled();
        self.heap.peek().map(|Reverse(Key(t, _))| *t)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.purge_cancelled();
        let Reverse(Key(time, id)) = self.heap.pop()?;
        let entry = self
            .entries
            .remove(&id)
            .expect("heap key without live entry after purge");
        debug_assert_eq!(entry.time, time);
        Some((time, entry.event))
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops cancelled entries sitting at the top of the heap.
    fn purge_cancelled(&mut self) {
        while let Some(Reverse(Key(_, id))) = self.heap.peek() {
            if self.cancelled.remove(id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.entries.len())
            .field("scheduled_total", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 'c');
        q.push(t(10), 'a');
        q.push(t(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_pending() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 'a');
        let b = q.push(t(2), 'b');
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), 'b')));
        assert!(!q.cancel(b), "cancel after pop must report false");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 'a');
        q.push(t(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        let id = q.push(t(1), ());
        assert_eq!(q.len(), 1);
        q.cancel(id);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_cancel() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..50u64 {
            ids.push(q.push(t(i % 7), i));
        }
        for id in ids.iter().step_by(3) {
            q.cancel(*id);
        }
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        while let Some((time, v)) = q.pop() {
            assert!(time >= last);
            last = time;
            assert!(v % 3 != 0, "cancelled event {v} popped");
            seen += 1;
        }
        assert_eq!(seen, 50 - ids.iter().step_by(3).count());
    }
}
