//! The pending-event queue.
//!
//! A slab-backed, generation-tagged indexed priority queue. Event payloads
//! live in a `Vec` slab; the binary heap holds only compact `(time, seq,
//! slot)` keys, so scheduling, cancellation and popping never touch a hash
//! table. Events scheduled for the same instant pop in FIFO order (ordered by
//! the monotonically increasing `seq`) — a property several state machines in
//! the simulator rely on (e.g. "frequency applied" must be observed before a
//! decode-completion check scheduled afterwards at the same instant).
//!
//! [`EventId`] carries `(slot, generation)`. The generation is bumped every
//! time a slot is vacated, so a stale id — one whose event already fired or
//! was cancelled — can never cancel an unrelated event that happens to reuse
//! the same slot.
//!
//! Cancellation is an *O(1)* tombstone write: the slab entry is cleared and
//! the heap key is left behind, to be purged lazily when it surfaces at the
//! top of the heap (a key is stale when its `seq` no longer matches the
//! slot's live entry). This keeps `push` and `pop` `O(log n)` amortized and
//! `cancel` `O(1)`, with zero per-event hashing anywhere.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::SimTime;

/// A handle identifying a scheduled event, usable for cancellation.
///
/// Packs the slab slot and its generation at scheduling time; both must still
/// match for [`EventQueue::cancel`] to take effect, so ids are immune to slot
/// reuse.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

impl EventId {
    /// The raw packed representation (`generation << 32 | slot`). Mostly
    /// useful for logging.
    pub fn as_u64(self) -> u64 {
        (self.gen as u64) << 32 | self.slot as u64
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev#{}g{}", self.slot, self.gen)
    }
}

/// One slab cell. `gen` counts how many times the cell has been vacated.
struct Slot<E> {
    gen: u32,
    entry: Option<SlotEntry<E>>,
}

struct SlotEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// A time-ordered queue of pending simulation events.
///
/// ```
/// use eavs_sim::queue::EventQueue;
/// use eavs_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// let a = q.push(SimTime::from_millis(5), "late");
/// let _b = q.push(SimTime::from_millis(1), "early");
/// q.cancel(a);
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_millis(1), "early"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    /// Min-heap (via `Reverse`) of `(time, seq, slot)`. `seq` is unique and
    /// monotonic, so ties at the same time break FIFO; `slot` is never
    /// reached during comparison and merely locates the payload.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    slab: Vec<Slot<E>>,
    /// Vacated slots available for reuse, most recently freed last.
    free: Vec<u32>,
    next_seq: u64,
    live: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Schedules `event` at absolute time `time`, returning its id.
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = SlotEntry { time, seq, event };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize].entry = Some(entry);
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("event slab exceeded u32 slots");
                self.slab.push(Slot {
                    gen: 0,
                    entry: Some(entry),
                });
                slot
            }
        };
        self.heap.push(Reverse((time, seq, slot)));
        self.live += 1;
        EventId {
            slot,
            gen: self.slab[slot as usize].gen,
        }
    }

    /// Cancels a previously scheduled event in O(1).
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled (including when its slot has since
    /// been reused by a newer event — the generation tag disambiguates).
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slab.get_mut(id.slot as usize) {
            Some(slot) if slot.gen == id.gen && slot.entry.is_some() => {
                slot.entry = None;
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(id.slot);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// `true` if `id` still names a pending (not fired, not cancelled)
    /// event. Stale ids whose slot has been recycled report `false`.
    pub fn contains(&self, id: EventId) -> bool {
        matches!(
            self.slab.get(id.slot as usize),
            Some(slot) if slot.gen == id.gen && slot.entry.is_some()
        )
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((time, seq, slot))) = self.heap.peek() {
            if self.key_is_live(seq, slot) {
                return Some(time);
            }
            self.heap.pop();
        }
        None
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse((time, seq, slot))) = self.heap.pop() {
            if !self.key_is_live(seq, slot) {
                continue; // stale key: cancelled, or the slot was reused
            }
            let cell = &mut self.slab[slot as usize];
            let entry = cell.entry.take().expect("live key without slab entry");
            cell.gen = cell.gen.wrapping_add(1);
            self.free.push(slot);
            self.live -= 1;
            debug_assert_eq!(entry.time, time);
            return Some((time, entry.event));
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// A heap key is live iff the slot still holds the entry it was pushed
    /// for; `seq` is globally unique, so one comparison settles it.
    fn key_is_live(&self, seq: u64, slot: u32) -> bool {
        matches!(&self.slab[slot as usize].entry, Some(e) if e.seq == seq)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.live)
            .field("scheduled_total", &self.next_seq)
            .field("slab_slots", &self.slab.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 'c');
        q.push(t(10), 'a');
        q.push(t(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_pending() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 'a');
        let b = q.push(t(2), 'b');
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), 'b')));
        assert!(!q.cancel(b), "cancel after pop must report false");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 'a');
        q.push(t(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        let id = q.push(t(1), ());
        assert_eq!(q.len(), 1);
        q.cancel(id);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_cancel() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..50u64 {
            ids.push(q.push(t(i % 7), i));
        }
        for id in ids.iter().step_by(3) {
            q.cancel(*id);
        }
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        while let Some((time, v)) = q.pop() {
            assert!(time >= last);
            last = time;
            assert!(v % 3 != 0, "cancelled event {v} popped");
            seen += 1;
        }
        assert_eq!(seen, 50 - ids.iter().step_by(3).count());
    }

    #[test]
    fn stale_id_cannot_cancel_reused_slot() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "old");
        assert!(q.cancel(a));
        // The vacated slot is reused immediately, but with a bumped
        // generation: the stale id must bounce off the new tenant.
        let b = q.push(t(2), "new");
        assert_ne!(a, b);
        assert_ne!(a.as_u64(), b.as_u64());
        assert!(!q.cancel(a), "stale id cancelled a reused slot");
        assert_eq!(q.pop(), Some((t(2), "new")));
    }

    #[test]
    fn popped_slot_reuse_bumps_generation() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1u32);
        assert_eq!(q.pop(), Some((t(1), 1)));
        let b = q.push(t(2), 2u32);
        assert!(!q.cancel(a), "id of a popped event cancelled its successor");
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn slab_slots_are_reused_not_grown() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            let ids: Vec<_> = (0..8).map(|i| q.push(t(round * 10 + i), i)).collect();
            for id in ids {
                q.cancel(id);
            }
        }
        // 80 events total but never more than 8 alive at once.
        assert!(q.slab.len() <= 8, "slab grew to {} slots", q.slab.len());
        assert!(q.is_empty());
    }
}
