//! The cpufreq governor interface.
//!
//! Baseline governors are *workload-oblivious*: they see only periodic
//! [`LoadSample`]s (busy fraction per sampling window) plus the OPP table
//! and policy limits — exactly the information their kernel counterparts
//! have. The video-aware EAVS governor lives in `eavs-core` and receives
//! additional pipeline hooks; comparing the two information models is the
//! point of the paper.

use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::load::LoadSample;
use eavs_cpu::opp::{OppIndex, OppTable};
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::time::SimDuration;

/// A sampling cpufreq governor.
pub trait CpufreqGovernor: std::fmt::Debug + Send {
    /// The governor's sysfs name.
    fn name(&self) -> &'static str;

    /// How often the governor wants to be sampled.
    fn sampling_interval(&self) -> SimDuration;

    /// Hashes the governor's identity and tunables into `fp` for session
    /// memoization. The default marks the fingerprint opaque (uncacheable);
    /// concrete governors override it, and implementations carrying learned
    /// state must mark opaque unless that state is still at its
    /// freshly-constructed default.
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.mark_opaque();
    }

    /// The OPP index to select when the governor starts.
    fn initial_index(&self, table: &OppTable, limits: PolicyLimits) -> OppIndex {
        let _ = table;
        limits.min_index
    }

    /// Processes one load sample and returns the desired OPP index
    /// (will be clamped to `limits` by the caller as well, but governors
    /// should respect them like their kernel counterparts do).
    fn on_sample(
        &mut self,
        sample: &LoadSample,
        table: &OppTable,
        limits: PolicyLimits,
    ) -> OppIndex;
}

/// Helper shared by several governors: the lowest OPP index whose
/// frequency is at least `target_khz`, clamped to limits.
pub fn lowest_index_for_khz(table: &OppTable, limits: PolicyLimits, target_khz: f64) -> OppIndex {
    let mut idx = limits.max_index;
    for i in limits.min_index..=limits.max_index {
        if table.freq(i).khz() as f64 >= target_khz {
            idx = i;
            break;
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_index_respects_limits() {
        let table =
            OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap();
        let full = PolicyLimits::full(&table);
        assert_eq!(lowest_index_for_khz(&table, full, 0.0), 0);
        assert_eq!(lowest_index_for_khz(&table, full, 600_000.0), 1);
        assert_eq!(lowest_index_for_khz(&table, full, 9_999_999.0), 3);
        let narrow = PolicyLimits {
            min_index: 1,
            max_index: 2,
        };
        assert_eq!(lowest_index_for_khz(&table, narrow, 0.0), 1);
        assert_eq!(lowest_index_for_khz(&table, narrow, 1_800_000.0), 2);
    }
}
