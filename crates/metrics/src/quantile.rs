//! Quantile estimation: exact (stored samples) and streaming (P²).

/// Exact quantiles over a stored sample set.
///
/// Stores all observations; suitable for per-run experiment metrics
/// (thousands to millions of points), not unbounded streams — use
/// [`P2Quantile`] for those.
///
/// ```
/// use eavs_metrics::quantile::Quantiles;
///
/// let mut q: Quantiles = (1..=100).map(f64::from).collect();
/// assert_eq!(q.quantile(0.0), 1.0);
/// assert_eq!(q.quantile(1.0), 100.0);
/// assert!((q.quantile(0.5) - 50.5).abs() < 1.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Quantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Quantiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) with linear interpolation between
    /// order statistics (type-7, the R/numpy default).
    ///
    /// # Panics
    ///
    /// Panics if empty or `q` is outside [0, 1].
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!(!self.is_empty(), "quantile of empty sample set");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN crept in"));
            self.sorted = true;
        }
        let n = self.samples.len();
        if n == 1 {
            return self.samples[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
    }

    /// Convenience: the median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Convenience: common percentiles (p50, p90, p95, p99).
    pub fn standard_percentiles(&mut self) -> [f64; 4] {
        [
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.95),
            self.quantile(0.99),
        ]
    }
}

impl Extend<f64> for Quantiles {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Quantiles {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut q = Quantiles::new();
        q.extend(iter);
        q
    }
}

/// Streaming quantile estimation with the P² algorithm (Jain & Chlamtac,
/// 1985): five markers, O(1) memory, no stored samples.
///
/// Accuracy is adequate for dashboards and long traces; experiment tables
/// use [`Quantiles`] for exactness.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Position increments.
    dn: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "P² requires 0 < p < 1, got {p}");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN"));
                for i in 0..5 {
                    self.q[i] = self.initial[i];
                }
            }
            return;
        }

        // Find the cell k containing x and update extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x > self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[0] <= x <= q[4]; find the first marker above x.
            let mut k = 3;
            for i in 1..5 {
                if x < self.q[i] {
                    k = i - 1;
                    break;
                }
            }
            k
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers with parabolic (or linear) interpolation.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let right = self.n[i + 1] - self.n[i];
            let left = self.n[i - 1] - self.n[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d_sign = d.signum();
                let qp = self.parabolic(i, d_sign);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d_sign)
                };
                self.n[i] += d_sign;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let n = &self.n;
        let q = &self.q;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current estimate.
    ///
    /// # Panics
    ///
    /// Panics if no observations have been added.
    pub fn estimate(&self) -> f64 {
        assert!(self.count > 0, "estimate with no observations");
        if self.initial.len() < 5 {
            // Fewer than 5 samples: exact quantile of what we have.
            let mut v = self.initial.clone();
            v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN"));
            let pos = self.p * (v.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            return v[lo] * (1.0 - frac) + v[hi] * frac;
        }
        self.q[2]
    }

    /// The target quantile.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations seen.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quantiles_of_uniform_ramp() {
        let mut q: Quantiles = (0..=1000).map(f64::from).collect();
        assert_eq!(q.quantile(0.0), 0.0);
        assert_eq!(q.quantile(1.0), 1000.0);
        assert_eq!(q.quantile(0.5), 500.0);
        assert_eq!(q.quantile(0.25), 250.0);
        assert_eq!(q.median(), 500.0);
    }

    #[test]
    fn interpolates_between_order_statistics() {
        let mut q: Quantiles = [10.0, 20.0].into_iter().collect();
        assert_eq!(q.quantile(0.5), 15.0);
        assert!((q.quantile(0.75) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        let mut q: Quantiles = [42.0].into_iter().collect();
        assert_eq!(q.quantile(0.0), 42.0);
        assert_eq!(q.quantile(0.37), 42.0);
        assert_eq!(q.quantile(1.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_quantile_panics() {
        Quantiles::new().quantile(0.5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_q_panics() {
        let mut q: Quantiles = [1.0].into_iter().collect();
        q.quantile(1.5);
    }

    #[test]
    fn standard_percentiles_ordering() {
        let mut q: Quantiles = (0..10_000).map(|i| (i as f64).powf(1.3)).collect();
        let [p50, p90, p95, p99] = q.standard_percentiles();
        assert!(p50 <= p90 && p90 <= p95 && p95 <= p99);
    }

    #[test]
    fn p2_close_to_exact_on_uniform() {
        let mut exact = Quantiles::new();
        let mut p2 = P2Quantile::new(0.9);
        // Deterministic pseudo-uniform sequence.
        let mut x = 0.5f64;
        for _ in 0..50_000 {
            x = (x * 9301.0 + 49297.0) % 233280.0 / 233280.0;
            exact.push(x);
            p2.push(x);
        }
        let truth = exact.quantile(0.9);
        assert!(
            (p2.estimate() - truth).abs() < 0.01,
            "p2={} exact={}",
            p2.estimate(),
            truth
        );
    }

    #[test]
    fn p2_exact_below_five_samples() {
        let mut p2 = P2Quantile::new(0.5);
        p2.push(1.0);
        p2.push(3.0);
        assert_eq!(p2.estimate(), 2.0);
        assert_eq!(p2.count(), 2);
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn p2_rejects_bad_p() {
        P2Quantile::new(1.0);
    }

    #[test]
    fn p2_monotone_input() {
        let mut p2 = P2Quantile::new(0.5);
        for i in 0..10_001 {
            p2.push(f64::from(i));
        }
        let est = p2.estimate();
        assert!((est - 5000.0).abs() < 150.0, "estimate {est}");
    }
}
