//! Regenerates every table and figure of the evaluation (DESIGN.md §4),
//! printing each and writing CSVs under `results/`.

fn main() {
    let started = std::time::Instant::now();
    for (id, f) in eavs_bench::all_experiments() {
        eprintln!("== running {id} ==");
        eavs_bench::harness::emit(id, &f());
    }
    eprintln!("all experiments regenerated in {:.1} s", started.elapsed().as_secs_f64());
}
