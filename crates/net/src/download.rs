//! The segment downloader.
//!
//! One HTTP-like transfer at a time (DASH players fetch segments
//! sequentially): a request costs one RTT, then bytes flow at the
//! bandwidth trace's rate. Completion times are computed in closed form
//! from the piecewise-constant trace, so the session can schedule a single
//! completion event per segment. Activity intervals are recorded for radio
//! energy accounting, and per-segment throughput samples feed the ABR.

use std::sync::Arc;

use crate::bandwidth::BandwidthTrace;
use crate::radio::ActivityInterval;
use eavs_sim::time::{SimDuration, SimTime};

/// A completed transfer's measurement, as the ABR sees it.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ThroughputSample {
    /// Bytes transferred.
    pub bytes: u64,
    /// Transfer wall time including the request RTT.
    pub duration: SimDuration,
}

impl ThroughputSample {
    /// The measured goodput in bits/second.
    pub fn bps(&self) -> f64 {
        if self.duration.is_zero() {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / self.duration.as_secs_f64()
    }
}

/// State of the in-flight transfer.
#[derive(Clone, Copy, PartialEq, Debug)]
struct InFlight {
    started: SimTime,
    completes: SimTime,
    bytes: u64,
}

/// Sequential segment downloader over a bandwidth trace.
///
/// The trace is held behind an [`Arc`]: generated traces can be large
/// (per-second samples over long sessions), and parallel sweeps share one
/// copy across jobs instead of deep-cloning per session.
#[derive(Clone, Debug)]
pub struct Downloader {
    trace: Arc<BandwidthTrace>,
    rtt: SimDuration,
    in_flight: Option<InFlight>,
    activity: Vec<ActivityInterval>,
    samples: Vec<ThroughputSample>,
    bytes_total: u64,
}

impl Downloader {
    /// Creates a downloader over `trace` with the given request RTT.
    /// Accepts either an owned `BandwidthTrace` or a shared `Arc`.
    pub fn new(trace: impl Into<Arc<BandwidthTrace>>, rtt: SimDuration) -> Self {
        Downloader {
            trace: trace.into(),
            rtt,
            in_flight: None,
            activity: Vec::new(),
            samples: Vec::new(),
            bytes_total: 0,
        }
    }

    /// `true` if a transfer is in progress.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Starts fetching `bytes` at `now`; returns the completion instant,
    /// or `None` if the trace's bandwidth drops to zero forever before the
    /// transfer can finish (the session should treat this as a stalled
    /// network).
    ///
    /// # Panics
    ///
    /// Panics if a transfer is already in flight.
    pub fn start(&mut self, now: SimTime, bytes: u64) -> Option<SimTime> {
        assert!(self.in_flight.is_none(), "downloader is busy");
        let data_start = now + self.rtt;
        let completes = self.trace.completion_time(data_start, bytes as f64)?;
        self.in_flight = Some(InFlight {
            started: now,
            completes,
            bytes,
        });
        Some(completes)
    }

    /// Marks the in-flight transfer complete at `now` (the instant returned
    /// by [`Downloader::start`]) and returns its throughput sample.
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight or `now` differs from the promised
    /// completion instant.
    pub fn complete(&mut self, now: SimTime) -> ThroughputSample {
        let f = self.in_flight.take().expect("no transfer in flight");
        assert_eq!(now, f.completes, "completion at unexpected time");
        self.activity.push(ActivityInterval {
            start: f.started,
            end: now,
        });
        let sample = ThroughputSample {
            bytes: f.bytes,
            duration: now - f.started,
        };
        self.samples.push(sample);
        self.bytes_total += f.bytes;
        sample
    }

    /// All completed-transfer throughput samples, oldest first.
    pub fn samples(&self) -> &[ThroughputSample] {
        &self.samples
    }

    /// Total bytes downloaded.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Radio activity intervals so far (including any in-flight transfer,
    /// truncated at `now`).
    pub fn activity(&self, now: SimTime) -> Vec<ActivityInterval> {
        let mut out = self.activity.clone();
        if let Some(f) = self.in_flight {
            out.push(ActivityInterval {
                start: f.started,
                end: now.min(f.completes),
            });
        }
        out
    }

    /// The bandwidth trace.
    pub fn trace(&self) -> &BandwidthTrace {
        &self.trace
    }

    /// The configured request RTT.
    pub fn rtt(&self) -> SimDuration {
        self.rtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> SimTime {
        SimTime::from_secs(n)
    }

    #[test]
    fn transfer_lifecycle() {
        let trace = BandwidthTrace::constant(8e6); // 1 MB/s
        let mut d = Downloader::new(trace, SimDuration::from_millis(50));
        assert!(!d.is_busy());
        let done = d.start(s(1), 1_000_000).unwrap();
        assert!(d.is_busy());
        assert_eq!(done, s(2) + SimDuration::from_millis(50));
        let sample = d.complete(done);
        assert!(!d.is_busy());
        assert_eq!(sample.bytes, 1_000_000);
        assert_eq!(sample.duration, SimDuration::from_millis(1050));
        // Goodput below link rate because of the RTT.
        assert!(sample.bps() < 8e6);
        assert!(sample.bps() > 7e6);
        assert_eq!(d.bytes_total(), 1_000_000);
        assert_eq!(d.samples().len(), 1);
    }

    #[test]
    fn activity_includes_in_flight() {
        let mut d = Downloader::new(BandwidthTrace::constant(8e6), SimDuration::ZERO);
        let done = d.start(s(0), 4_000_000).unwrap();
        assert_eq!(done, s(4));
        let act = d.activity(s(2));
        assert_eq!(act.len(), 1);
        assert_eq!(act[0].end, s(2));
        d.complete(done);
        let act = d.activity(s(10));
        assert_eq!(act[0].end, s(4));
    }

    #[test]
    fn stalled_network_returns_none() {
        let trace = BandwidthTrace::from_mbps_steps(&[(0, 1.0), (2, 0.0)]);
        let mut d = Downloader::new(trace, SimDuration::ZERO);
        assert!(d.start(s(0), 10_000_000).is_none());
        assert!(!d.is_busy(), "failed start leaves downloader free");
    }

    #[test]
    #[should_panic(expected = "busy")]
    fn concurrent_start_panics() {
        let mut d = Downloader::new(BandwidthTrace::constant(8e6), SimDuration::ZERO);
        d.start(s(0), 1000).unwrap();
        d.start(s(0), 1000).unwrap();
    }

    #[test]
    #[should_panic(expected = "unexpected time")]
    fn complete_at_wrong_time_panics() {
        let mut d = Downloader::new(BandwidthTrace::constant(8e6), SimDuration::ZERO);
        d.start(s(0), 8_000_000).unwrap();
        d.complete(s(3));
    }

    #[test]
    fn throughput_sample_zero_duration() {
        let sample = ThroughputSample {
            bytes: 100,
            duration: SimDuration::ZERO,
        };
        assert_eq!(sample.bps(), 0.0);
    }
}
