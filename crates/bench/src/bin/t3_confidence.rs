//! Regenerates experiment `t3_confidence` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "t3_confidence")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
