//! Implementing your own governor against the public trait.
//!
//! Shows the extension point downstream users care about: write a
//! [`CpufreqGovernor`], plug it into a [`StreamingSession`], and compare
//! it against EAVS. The example implements a "ladder" governor that walks
//! one OPP up when load exceeds 85% and one down below 40%.
//!
//! ```text
//! cargo run --release --example custom_governor
//! ```

use eavs::cpu::cluster::PolicyLimits;
use eavs::cpu::load::LoadSample;
use eavs::cpu::opp::{OppIndex, OppTable};
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::Hybrid;
use eavs::scaling::session::{GovernorChoice, StreamingSession};
use eavs::sim::time::SimDuration;
use eavs::video::manifest::Manifest;
use eavs_governors::CpufreqGovernor;

/// One-step-at-a-time load ladder.
#[derive(Debug, Default)]
struct LadderGovernor;

impl CpufreqGovernor for LadderGovernor {
    fn name(&self) -> &'static str {
        "ladder"
    }

    fn sampling_interval(&self) -> SimDuration {
        SimDuration::from_millis(20)
    }

    fn on_sample(
        &mut self,
        sample: &LoadSample,
        _table: &OppTable,
        limits: PolicyLimits,
    ) -> OppIndex {
        let cur = sample.cur_index;
        let load = sample.load_pct();
        if load > 85.0 {
            limits.clamp(cur + 1)
        } else if load < 40.0 && cur > 0 {
            limits.clamp(cur - 1)
        } else {
            limits.clamp(cur)
        }
    }
}

fn main() {
    // Sport content at 1080p: heavy-tailed I-frame bursts that a reactive
    // load ladder only sees after they have already eaten the deadline.
    let manifest = || Manifest::single(6_000, 1920, 1080, SimDuration::from_secs(60), 30);
    let build = |gov: GovernorChoice| {
        StreamingSession::builder(gov)
            .manifest(manifest())
            .content(eavs::tracegen::content::ContentProfile::Sport)
            .seed(11)
            .run()
    };

    let ladder = build(GovernorChoice::Baseline(Box::new(LadderGovernor)));
    let eavs_report = build(GovernorChoice::Eavs(EavsGovernor::new(
        Box::new(Hybrid::default()),
        EavsConfig::default(),
    )));

    println!("custom 'ladder' governor: {}", ladder.summary());
    println!("eavs reference:           {}", eavs_report.summary());

    let energy_delta = (ladder.cpu_joules() / eavs_report.cpu_joules() - 1.0) * 100.0;
    println!(
        "\nOn bursty sport content the ladder spends {energy_delta:+.1}% CPU energy vs EAVS,\n\
         misses {} deadlines (EAVS: {}) and makes {} transitions (EAVS: {}).\n\
         A load-only governor reacts to bursts after the fact; EAVS predicts\n\
         them from frame metadata and the vsync schedule.",
        ladder.qoe.late_vsyncs,
        eavs_report.qoe.late_vsyncs,
        ladder.transitions,
        eavs_report.transitions,
    );
}
