//! Trace sinks: where session events go.
//!
//! The session hot path holds an `Option<SharedSink>` and calls
//! [`TraceSink::record`] through it. Three implementations cover the
//! spectrum:
//!
//! - [`NullSink`] — discards events. Emit sites construct the event
//!   lazily (closure-deferred), so with no sink attached the cost is a
//!   single branch, and with a `NullSink` it is one virtual call.
//! - [`RingSink`] — a bounded ring buffer of timestamped events,
//!   oldest-dropped, dumpable as JSONL or Chrome trace-event JSON.
//! - [`CounterSink`] — folds event kinds into an
//!   [`eavs_metrics::histogram::Counter`], for aggregate-only callers.
//!
//! All sinks are deterministic: they observe simulated time only and
//! never feed anything back into the simulation.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use eavs_metrics::histogram::Counter;
use eavs_sim::time::SimTime;

use crate::event::TraceEvent;

/// A consumer of session trace events.
///
/// Implementations must not influence the simulation: `record` takes
/// `&mut self` so sinks can buffer freely, but the event stream they
/// see for a given seeded session is identical no matter which sink —
/// or how many threads' worth of sibling sessions — are running.
pub trait TraceSink: Send {
    /// Consumes one event stamped with the simulated time it occurred.
    fn record(&mut self, at: SimTime, ev: &TraceEvent);
}

/// A sink handle shareable between the builder, the session, and the
/// caller who wants the data back afterwards.
///
/// The mutex is uncontended in practice — sessions are single-threaded
/// — but makes the handle `Sync` so builders can cross the
/// work-stealing pool boundary.
pub type SharedSink = Arc<Mutex<dyn TraceSink>>;

/// Wraps a sink into a [`SharedSink`] handle.
pub fn shared<S: TraceSink + 'static>(sink: S) -> Arc<Mutex<S>> {
    Arc::new(Mutex::new(sink))
}

/// Discards every event. Exists so "tracing compiled in, nothing
/// listening" has a measurable-as-zero cost that tests can assert on.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _at: SimTime, _ev: &TraceEvent) {}
}

/// One event with its position on the session timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Monotone sequence number (0-based, counts *all* events recorded,
    /// including ones later evicted from the ring).
    pub seq: u64,
    /// Simulated time of the event.
    pub at: SimTime,
    /// The event itself.
    pub ev: TraceEvent,
}

/// A bounded in-memory event timeline.
///
/// Keeps the most recent `capacity` events; older events are evicted
/// (counted in [`RingSink::dropped`]). The ring never reallocates after
/// construction, so steady-state recording is allocation-free.
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<TimedEvent>,
    capacity: usize,
    seq: u64,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            seq: 0,
            dropped: 0,
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events recorded over the sink's lifetime.
    pub fn total_recorded(&self) -> u64 {
        self.seq
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates buffered events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        self.buf.iter()
    }

    /// Renders the buffered timeline as JSON Lines, one event per line:
    ///
    /// ```text
    /// {"seq":0,"t_ns":0,"ev":"download_start","segment":0,"attempt":0,"bytes":262144}
    /// ```
    ///
    /// Timestamps are simulated nanoseconds; all payloads are integers.
    /// The output is byte-deterministic for a given event stream.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.buf.len() * 64);
        for te in &self.buf {
            let _ = write!(
                out,
                r#"{{"seq":{},"t_ns":{},"ev":"{}""#,
                te.seq,
                te.at.as_nanos(),
                te.ev.kind()
            );
            te.ev.write_json_fields(&mut out);
            out.push_str("}\n");
        }
        out
    }

    /// Renders the buffered timeline in the Chrome trace-event JSON
    /// array format, loadable in `chrome://tracing` and Perfetto.
    ///
    /// Download transfers and decode jobs become `B`/`E` duration spans
    /// on their own tracks (tid 1 and 2); everything else becomes an
    /// instant (`i`) on tid 0; frequency changes additionally emit a
    /// `C` counter series so the CPU frequency renders as a graph.
    /// Timestamps are simulated microseconds with nanosecond precision
    /// kept as a fixed 3-digit fraction, so output stays byte-exact.
    pub fn to_chrome_trace(&self, process_name: &str) -> String {
        let mut out = String::with_capacity(self.buf.len() * 96 + 256);
        out.push_str("[\n");
        let _ = write!(
            out,
            r#"{{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{{"name":"{}"}}}}"#,
            json_escape(process_name)
        );
        for (tid, name) in [(0u32, "session"), (1, "download"), (2, "decode")] {
            let _ = write!(
                out,
                ",\n{}",
                format_args!(
                    r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{tid},"args":{{"name":"{name}"}}}}"#
                )
            );
        }
        let mut open_download: u32 = 0;
        let mut open_decode: u32 = 0;
        for te in &self.buf {
            let ts = ChromeTs(te.at.as_nanos());
            match te.ev {
                TraceEvent::DownloadStart { segment, .. } => {
                    open_download += 1;
                    let _ = write!(
                        out,
                        ",\n{}",
                        format_args!(
                            r#"{{"name":"segment {segment}","cat":"download","ph":"B","pid":1,"tid":1,"ts":{ts}}}"#
                        )
                    );
                }
                TraceEvent::DownloadDone { .. }
                | TraceEvent::DownloadTimeout { .. }
                | TraceEvent::DownloadStalled { .. } => {
                    // Timeouts and stalls end the transfer slot too; only
                    // close a span if one is actually open (stalls can
                    // precede the B when the fault fires pre-transfer).
                    if open_download > 0 {
                        open_download -= 1;
                        let _ = write!(
                            out,
                            ",\n{}",
                            format_args!(
                                r#"{{"cat":"download","ph":"E","pid":1,"tid":1,"ts":{ts}}}"#
                            )
                        );
                    }
                    if !matches!(te.ev, TraceEvent::DownloadDone { .. }) {
                        write_instant(&mut out, &te.ev, ts, 1);
                    }
                }
                TraceEvent::DecodeStart { frame, .. } => {
                    open_decode += 1;
                    let _ = write!(
                        out,
                        ",\n{}",
                        format_args!(
                            r#"{{"name":"frame {frame}","cat":"decode","ph":"B","pid":1,"tid":2,"ts":{ts}}}"#
                        )
                    );
                }
                TraceEvent::DecodeDone { .. } => {
                    if open_decode > 0 {
                        open_decode -= 1;
                        let _ = write!(
                            out,
                            ",\n{}",
                            format_args!(
                                r#"{{"cat":"decode","ph":"E","pid":1,"tid":2,"ts":{ts}}}"#
                            )
                        );
                    }
                }
                TraceEvent::FreqChange { to_khz, .. } => {
                    write_instant(&mut out, &te.ev, ts, 0);
                    let _ = write!(
                        out,
                        ",\n{}",
                        format_args!(
                            r#"{{"name":"cpu_freq_khz","ph":"C","pid":1,"tid":0,"ts":{ts},"args":{{"khz":{to_khz}}}}}"#
                        )
                    );
                }
                _ => {
                    let tid = match te.ev.phase() {
                        crate::event::Phase::Download => 1,
                        crate::event::Phase::Decode => 2,
                        _ => 0,
                    };
                    write_instant(&mut out, &te.ev, ts, tid);
                }
            }
        }
        // Close any spans left open at the end of the buffer so the
        // JSON stays well-formed for viewers that require balance.
        if let Some(last) = self.buf.back() {
            let ts = ChromeTs(last.at.as_nanos());
            for _ in 0..open_download {
                let _ = write!(
                    out,
                    ",\n{}",
                    format_args!(r#"{{"cat":"download","ph":"E","pid":1,"tid":1,"ts":{ts}}}"#)
                );
            }
            for _ in 0..open_decode {
                let _ = write!(
                    out,
                    ",\n{}",
                    format_args!(r#"{{"cat":"decode","ph":"E","pid":1,"tid":2,"ts":{ts}}}"#)
                );
            }
        }
        out.push_str("\n]\n");
        out
    }
}

/// A simulated-nanosecond timestamp rendered as Chrome-trace
/// microseconds with exactly three fractional digits (`12.345`).
#[derive(Clone, Copy)]
struct ChromeTs(u64);

impl std::fmt::Display for ChromeTs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{:03}", self.0 / 1_000, self.0 % 1_000)
    }
}

fn write_instant(out: &mut String, ev: &TraceEvent, ts: ChromeTs, tid: u32) {
    let _ = write!(
        out,
        ",\n{}",
        format_args!(
            r#"{{"name":"{}","cat":"{}","ph":"i","s":"t","pid":1,"tid":{tid},"ts":{ts}}}"#,
            ev.kind(),
            ev.phase().name()
        )
    );
}

/// Minimal JSON string escaping for names we interpolate into traces.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl TraceSink for RingSink {
    fn record(&mut self, at: SimTime, ev: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TimedEvent {
            seq: self.seq,
            at,
            ev: *ev,
        });
        self.seq += 1;
    }
}

/// Folds events into per-kind counts using the deterministic
/// first-seen-order [`Counter`] from `eavs-metrics`.
#[derive(Debug, Default)]
pub struct CounterSink {
    counts: Counter,
}

impl CounterSink {
    /// Creates an empty counter sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Occurrences of one event kind.
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.count(kind)
    }

    /// Borrows the underlying counter (first-seen order, mergeable).
    pub fn counter(&self) -> &Counter {
        &self.counts
    }

    /// Consumes the sink, returning the counter for merging into
    /// existing metrics aggregates.
    pub fn into_counter(self) -> Counter {
        self.counts
    }
}

impl TraceSink for CounterSink {
    fn record(&mut self, _at: SimTime, ev: &TraceEvent) {
        self.counts.incr(ev.kind());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(frame: u64) -> TraceEvent {
        TraceEvent::VsyncDisplayed { frame }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(SimTime::from_nanos(i), &ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_recorded(), 5);
        assert_eq!(ring.dropped(), 2);
        let seqs: Vec<u64> = ring.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn ring_capacity_clamped_to_one() {
        let mut ring = RingSink::new(0);
        ring.record(SimTime::ZERO, &ev(0));
        ring.record(SimTime::ZERO, &ev(1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn jsonl_is_one_exact_line_per_event() {
        let mut ring = RingSink::new(8);
        ring.record(
            SimTime::from_micros(16),
            &TraceEvent::DownloadStart {
                segment: 2,
                attempt: 0,
                bytes: 4096,
            },
        );
        ring.record(SimTime::from_micros(33), &TraceEvent::PlaybackStart);
        let jsonl = ring.to_jsonl();
        assert_eq!(
            jsonl,
            concat!(
                "{\"seq\":0,\"t_ns\":16000,\"ev\":\"download_start\",",
                "\"segment\":2,\"attempt\":0,\"bytes\":4096}\n",
                "{\"seq\":1,\"t_ns\":33000,\"ev\":\"playback_start\"}\n",
            )
        );
    }

    #[test]
    fn chrome_trace_pairs_spans_and_closes_leftovers() {
        let mut ring = RingSink::new(16);
        ring.record(
            SimTime::from_nanos(1_500),
            &TraceEvent::DownloadStart {
                segment: 0,
                attempt: 0,
                bytes: 10,
            },
        );
        ring.record(
            SimTime::from_nanos(9_000),
            &TraceEvent::DownloadDone {
                segment: 0,
                bytes: 10,
            },
        );
        ring.record(
            SimTime::from_nanos(10_000),
            &TraceEvent::DecodeStart {
                frame: 0,
                freq_khz: 300_000,
            },
        );
        let trace = ring.to_chrome_trace("test");
        assert!(trace.starts_with("[\n"));
        assert!(trace.ends_with("\n]\n"));
        assert!(trace.contains(r#""ph":"B","pid":1,"tid":1,"ts":1.500"#));
        assert!(trace.contains(r#""ph":"E","pid":1,"tid":1,"ts":9.000"#));
        // The dangling decode span is closed at the last buffered time.
        assert!(trace.contains(r#""cat":"decode","ph":"E","pid":1,"tid":2,"ts":10.000"#));
        // Balanced span events overall.
        assert_eq!(trace.matches(r#""ph":"B""#).count(), 2);
        assert_eq!(trace.matches(r#""ph":"E""#).count(), 2);
    }

    #[test]
    fn chrome_trace_emits_freq_counter_series() {
        let mut ring = RingSink::new(4);
        ring.record(
            SimTime::from_micros(100),
            &TraceEvent::FreqChange {
                from_khz: 300_000,
                to_khz: 652_800,
            },
        );
        let trace = ring.to_chrome_trace("cpu");
        assert!(trace.contains(r#""name":"cpu_freq_khz","ph":"C""#));
        assert!(trace.contains(r#""args":{"khz":652800}"#));
    }

    #[test]
    fn counter_sink_folds_kinds() {
        let mut sink = CounterSink::new();
        sink.record(SimTime::ZERO, &ev(0));
        sink.record(SimTime::ZERO, &ev(1));
        sink.record(SimTime::ZERO, &TraceEvent::PanicRace);
        assert_eq!(sink.count("vsync_displayed"), 2);
        assert_eq!(sink.count("panic_race"), 1);
        assert_eq!(sink.count("rebuffer"), 0);
        assert_eq!(sink.counter().total(), 3);
        let kinds: Vec<&str> = sink.counter().iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec!["vsync_displayed", "panic_race"]);
    }

    #[test]
    fn shared_handle_is_dyn_compatible() {
        let ring = shared(RingSink::new(4));
        let as_dyn: SharedSink = ring.clone();
        as_dyn.lock().unwrap().record(SimTime::ZERO, &ev(7));
        assert_eq!(ring.lock().unwrap().len(), 1);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
