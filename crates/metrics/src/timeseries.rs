//! Step-function time series.
//!
//! Records piecewise-constant signals (CPU frequency, buffer level) as
//! `(time, value)` change points, supporting time-weighted averaging,
//! resampling for plots, and value lookup — the backing store for the
//! timeline figures (F2, F11).

use eavs_sim::time::{SimDuration, SimTime};

/// A piecewise-constant signal sampled at change points.
///
/// ```
/// use eavs_metrics::timeseries::StepSeries;
/// use eavs_sim::time::SimTime;
///
/// let mut s = StepSeries::new();
/// s.set(SimTime::ZERO, 1.0);
/// s.set(SimTime::from_secs(2), 3.0);
/// assert_eq!(s.value_at(SimTime::from_secs(1)), Some(1.0));
/// assert_eq!(s.value_at(SimTime::from_secs(2)), Some(3.0));
/// // mean over [0, 4): (1*2 + 3*2)/4 = 2
/// assert!((s.time_weighted_mean(SimTime::ZERO, SimTime::from_secs(4)).unwrap() - 2.0) < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepSeries {
    points: Vec<(SimTime, f64)>,
}

impl StepSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        StepSeries { points: Vec::new() }
    }

    /// Records that the signal takes `value` from `time` onward.
    ///
    /// Consecutive equal values are coalesced; updating at the same time
    /// overwrites the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last change point or `value` is NaN.
    pub fn set(&mut self, time: SimTime, value: f64) {
        assert!(!value.is_nan(), "NaN sample");
        if let Some(&(last_t, last_v)) = self.points.last() {
            assert!(time >= last_t, "series time went backwards");
            if time == last_t {
                self.points.last_mut().expect("non-empty").1 = value;
                return;
            }
            if last_v == value {
                return; // coalesce
            }
        }
        self.points.push((time, value));
    }

    /// Number of retained change points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The signal value at `time`, or `None` before the first point.
    pub fn value_at(&self, time: SimTime) -> Option<f64> {
        match self.points.partition_point(|&(t, _)| t <= time) {
            0 => None,
            i => Some(self.points[i - 1].1),
        }
    }

    /// Iterates the change points.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Time-weighted mean over `[from, to)`, or `None` if the series has no
    /// value anywhere in the window.
    ///
    /// # Panics
    ///
    /// Panics if `from > to`.
    pub fn time_weighted_mean(&self, from: SimTime, to: SimTime) -> Option<f64> {
        assert!(from <= to, "inverted window");
        if from == to {
            return self.value_at(from);
        }
        let integral = self.integral(from, to)?;
        Some(integral / (to - from).as_secs_f64())
    }

    /// Integral of the signal over `[from, to)` in value·seconds. `None` if
    /// the series is undefined over the whole window. Undefined leading
    /// portions (before the first point) are excluded from the integral but
    /// the full window length still divides the mean.
    pub fn integral(&self, from: SimTime, to: SimTime) -> Option<f64> {
        assert!(from <= to, "inverted window");
        let first = self.points.first()?.0;
        if first >= to {
            return None;
        }
        let start = from.max(first);
        let mut acc = 0.0;
        let mut t = start;
        let mut idx = self.points.partition_point(|&(pt, _)| pt <= start);
        let mut v = self.points[idx - 1].1;
        while t < to {
            let next_change = self
                .points
                .get(idx)
                .map(|&(pt, _)| pt)
                .unwrap_or(SimTime::MAX);
            let seg_end = next_change.min(to);
            acc += v * (seg_end - t).as_secs_f64();
            t = seg_end;
            if t == next_change {
                v = self.points[idx].1;
                idx += 1;
            }
        }
        Some(acc)
    }

    /// Resamples the series at a fixed interval over `[from, to]`,
    /// yielding `(time, value)` pairs for plotting. Times before the first
    /// change point yield the first value.
    pub fn resample(&self, from: SimTime, to: SimTime, step: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "zero resample step");
        let mut out = Vec::new();
        if self.points.is_empty() {
            return out;
        }
        let first_v = self.points[0].1;
        let mut t = from;
        while t <= to {
            out.push((t, self.value_at(t).unwrap_or(first_v)));
            match t.checked_add(step) {
                Some(next) => t = next,
                None => break,
            }
        }
        out
    }
}

impl FromIterator<(SimTime, f64)> for StepSeries {
    fn from_iter<T: IntoIterator<Item = (SimTime, f64)>>(iter: T) -> Self {
        let mut s = StepSeries::new();
        for (t, v) in iter {
            s.set(t, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> SimTime {
        SimTime::from_secs(n)
    }

    #[test]
    fn lookup_semantics() {
        let series: StepSeries = [(s(1), 10.0), (s(3), 20.0)].into_iter().collect();
        assert_eq!(series.value_at(s(0)), None);
        assert_eq!(series.value_at(s(1)), Some(10.0));
        assert_eq!(series.value_at(s(2)), Some(10.0));
        assert_eq!(series.value_at(s(3)), Some(20.0));
        assert_eq!(series.value_at(s(100)), Some(20.0));
    }

    #[test]
    fn coalesces_equal_values_and_overwrites_same_time() {
        let mut series = StepSeries::new();
        series.set(s(0), 5.0);
        series.set(s(1), 5.0); // coalesced
        assert_eq!(series.len(), 1);
        series.set(s(2), 7.0);
        series.set(s(2), 9.0); // overwrite
        assert_eq!(series.len(), 2);
        assert_eq!(series.value_at(s(2)), Some(9.0));
    }

    #[test]
    fn integral_and_mean() {
        let series: StepSeries = [(s(0), 2.0), (s(4), 6.0)].into_iter().collect();
        assert!((series.integral(s(0), s(8)).unwrap() - (2.0 * 4.0 + 6.0 * 4.0)).abs() < 1e-9);
        assert!((series.time_weighted_mean(s(0), s(8)).unwrap() - 4.0).abs() < 1e-12);
        // Window fully before the series start.
        let late: StepSeries = [(s(10), 1.0)].into_iter().collect();
        assert_eq!(late.integral(s(0), s(5)), None);
    }

    #[test]
    fn integral_partial_window() {
        let series: StepSeries = [(s(2), 10.0)].into_iter().collect();
        // Defined only from t=2; window [0, 4) integrates 2 s of coverage.
        assert!((series.integral(s(0), s(4)).unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn resample_grid() {
        let series: StepSeries = [(s(0), 1.0), (s(5), 2.0)].into_iter().collect();
        let pts = series.resample(s(0), s(10), SimDuration::from_secs(5));
        assert_eq!(pts, vec![(s(0), 1.0), (s(5), 2.0), (s(10), 2.0)]);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_backwards_panics() {
        let mut series = StepSeries::new();
        series.set(s(5), 1.0);
        series.set(s(4), 2.0);
    }

    #[test]
    fn zero_width_mean_is_lookup() {
        let series: StepSeries = [(s(0), 3.0)].into_iter().collect();
        assert_eq!(series.time_weighted_mean(s(1), s(1)), Some(3.0));
    }
}
