//! Headline comparisons: F5 (energy by governor), F6 (deadline misses),
//! T2 (full summary matrix).

use std::sync::Arc;

use crate::harness::{
    governor, manifest_1080p30, run_parallel_labeled, run_session, COMPARISON_GOVERNORS, SEED,
};
use eavs_core::report::SessionReport;
use eavs_core::session::StreamingSession;
use eavs_metrics::table::Table;
use eavs_trace::content::ContentProfile;

/// Runs the comparison set on one content, 60 s of 1080p30, in parallel.
/// Sessions go through the process-wide cache, so the figures sharing
/// this set (F5, F6, T2) simulate each governor × content pair once.
pub fn run_comparison(content: ContentProfile) -> Vec<Arc<SessionReport>> {
    let manifest = Arc::new(manifest_1080p30(60));
    run_parallel_labeled(
        COMPARISON_GOVERNORS
            .iter()
            .map(|&name| {
                let manifest = Arc::clone(&manifest);
                let job = move || {
                    run_session(
                        StreamingSession::builder(governor(name))
                            .manifest(manifest)
                            .content(content)
                            .seed(SEED),
                    )
                };
                (format!("comparison {name} {}", content.name()), job)
            })
            .collect(),
    )
}

fn joules_of(reports: &[Arc<SessionReport>], name: &str) -> f64 {
    reports
        .iter()
        .find(|r| r.governor.starts_with(name))
        .map(|r| r.cpu_joules())
        .unwrap_or(f64::NAN)
}

/// F5: CPU energy by governor (film content).
pub fn f5_energy_by_governor() -> Table {
    let reports = run_comparison(ContentProfile::Film);
    let ondemand = joules_of(&reports, "ondemand");
    let interactive = joules_of(&reports, "interactive");
    let mut t = Table::new(&[
        "governor",
        "cpu (J)",
        "vs ondemand",
        "vs interactive",
        "mean power (W)",
        "mean freq",
        "mJ/frame",
    ]);
    t.set_title("F5: CPU energy by governor — 60 s of 1080p30 film, flagship2016");
    for r in &reports {
        t.row(&[
            &r.governor,
            &format!("{:.2}", r.cpu_joules()),
            &format!("{:+.1}%", (r.cpu_joules() / ondemand - 1.0) * 100.0),
            &format!("{:+.1}%", (r.cpu_joules() / interactive - 1.0) * 100.0),
            &format!("{:.3}", r.mean_cpu_power()),
            &r.mean_freq.to_string(),
            &format!("{:.2}", r.mj_per_frame()),
        ]);
    }
    t
}

/// F6: QoE (deadline misses, rebuffering) by governor (film content).
pub fn f6_deadline_misses() -> Table {
    let reports = run_comparison(ContentProfile::Film);
    let mut t = Table::new(&[
        "governor",
        "late vsyncs",
        "miss %",
        "rebuffers",
        "frames shown",
        "session (s)",
        "transitions",
    ]);
    t.set_title("F6: playback quality by governor — 60 s of 1080p30 film");
    for r in &reports {
        t.row(&[
            &r.governor,
            &r.qoe.late_vsyncs.to_string(),
            &format!("{:.3}", r.qoe.deadline_miss_rate() * 100.0),
            &r.qoe.rebuffer_events.to_string(),
            &format!("{}/{}", r.qoe.frames_displayed, r.qoe.total_frames),
            &format!("{:.1}", r.session_length.as_secs_f64()),
            &r.transitions.to_string(),
        ]);
    }
    t
}

/// T2: the full summary matrix (governor × content).
pub fn t2_summary() -> Table {
    let mut t = Table::new(&[
        "governor",
        "content",
        "cpu (J)",
        "vs interactive",
        "miss %",
        "rebuf",
        "mean freq",
        "trans",
        "qoe score",
    ]);
    t.set_title("T2: summary — all governors × all contents, 60 s of 1080p30");
    for content in ContentProfile::ALL {
        let reports = run_comparison(content);
        let interactive = joules_of(&reports, "interactive");
        for r in &reports {
            t.row(&[
                &r.governor,
                content.name(),
                &format!("{:.2}", r.cpu_joules()),
                &format!("{:+.1}%", (r.cpu_joules() / interactive - 1.0) * 100.0),
                &format!("{:.3}", r.qoe.deadline_miss_rate() * 100.0),
                &r.qoe.rebuffer_events.to_string(),
                &r.mean_freq.to_string(),
                &r.transitions.to_string(),
                &format!("{:.2}", r.qoe.score()),
            ]);
        }
    }
    t
}
