//! Property-based tests for the EAVS core: predictors, the demand/selector
//! math, and governor decision invariants.

use eavs_core::governor::{EavsConfig, EavsGovernor, InFlightMeta, PipelineSnapshot};
use eavs_core::predictor::{
    predictor_by_name, Ewma, FrameMeta, Hybrid, WorkloadPredictor, PREDICTOR_NAMES,
};
use eavs_core::selector::{required_hz, DemandItem, OppSelector};
use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::freq::Cycles;
use eavs_cpu::opp::OppTable;
use eavs_sim::time::{SimDuration, SimTime};
use eavs_video::display::PlaybackPhase;
use eavs_video::frame::FrameType;
use proptest::prelude::*;

fn table() -> OppTable {
    OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap()
}

fn ftype(i: u8) -> FrameType {
    match i % 3 {
        0 => FrameType::I,
        1 => FrameType::P,
        _ => FrameType::B,
    }
}

proptest! {
    /// Predictions are always positive and finite, for every predictor,
    /// after any observation sequence.
    #[test]
    fn predictions_positive_and_finite(
        observations in proptest::collection::vec((0u8..3, 100u32..1_000_000, 1.0f64..100.0), 0..60),
        query_type in 0u8..3,
        query_size in 100u32..1_000_000,
    ) {
        for name in PREDICTOR_NAMES {
            let mut p = predictor_by_name(name).unwrap();
            for &(t, size, mcycles) in &observations {
                p.observe(
                    FrameMeta { index: 0, frame_type: ftype(t), size_bytes: size },
                    Cycles::from_mega(mcycles),
                );
            }
            let pred = p.predict(FrameMeta { index: 0, frame_type: ftype(query_type), size_bytes: query_size });
            prop_assert!(pred.get().is_finite() && pred.get() > 0.0, "{name}: {pred:?}");
        }
    }

    /// The monotonic-deque WindowMax matches a naive sliding-window max
    /// for arbitrary observation sequences.
    #[test]
    fn window_max_matches_naive(
        window in 1usize..20,
        values in proptest::collection::vec(0.1f64..1e8, 1..200),
    ) {
        let mut fast = eavs_core::predictor::WindowMax::new(window);
        let meta = FrameMeta { index: 0, frame_type: FrameType::P, size_bytes: 1000 };
        for (i, &v) in values.iter().enumerate() {
            fast.observe(meta, Cycles::new(v));
            let start = (i + 1).saturating_sub(window);
            let naive = values[start..=i]
                .iter()
                .cloned()
                .fold(f64::MIN, f64::max);
            let got = fast.predict(meta).get();
            prop_assert!(
                (got - naive).abs() < 1e-9 * naive.max(1.0),
                "at {i}: got {got}, naive {naive}"
            );
        }
    }

    /// A predictor trained on a constant per-type cost converges to it.
    #[test]
    fn constant_workload_is_learned(mcycles in 1.0f64..200.0, size in 1_000u32..100_000) {
        let meta = FrameMeta { index: 0, frame_type: FrameType::P, size_bytes: size };
        for name in ["last", "ewma", "window-max", "size-regression"] {
            let mut p = predictor_by_name(name).unwrap();
            for _ in 0..80 {
                p.observe(meta, Cycles::from_mega(mcycles));
            }
            let pred = p.predict(meta).mega();
            prop_assert!(
                (pred - mcycles).abs() / mcycles < 0.02,
                "{name}: predicted {pred} for constant {mcycles}"
            );
        }
    }

    /// required_hz is monotone: adding an item never lowers the rate, and
    /// shrinking slack never lowers it either.
    #[test]
    fn required_hz_monotone(
        items in proptest::collection::vec((1.0f64..100.0, 1u64..2_000), 1..20),
        extra in (1.0f64..100.0, 1u64..2_000),
    ) {
        let now = SimTime::from_millis(0);
        let mut sorted: Vec<(f64, u64)> = items;
        sorted.sort_by_key(|&(_, d)| d);
        let demand: Vec<DemandItem> = sorted
            .iter()
            .map(|&(mc, ms)| DemandItem {
                cycles: Cycles::from_mega(mc),
                deadline: SimTime::from_millis(ms),
            })
            .collect();
        let base = required_hz(now, &demand);
        // Adding one more item at the end (latest deadline) never lowers it.
        let mut more = demand.clone();
        more.push(DemandItem {
            cycles: Cycles::from_mega(extra.0),
            deadline: SimTime::from_millis(sorted.last().unwrap().1 + extra.1),
        });
        prop_assert!(required_hz(now, &more) >= base - 1e-9);
        // Advancing `now` (shrinking all slack) never lowers it.
        let later = required_hz(SimTime::from_micros(500), &demand);
        prop_assert!(later >= base - 1e-9);
    }

    /// The selector output is always within limits, and jumps up
    /// immediately when demand exceeds the current OPP's rate.
    #[test]
    fn selector_sound(
        requests in proptest::collection::vec(0.0f64..4e9, 1..50),
        margin in 0.0f64..0.5,
        hysteresis in 1u32..5,
    ) {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut sel = OppSelector::new(margin, hysteresis);
        let mut cur = 0;
        for required in requests {
            let idx = sel.select(&tbl, limits, cur, required);
            prop_assert!(idx <= limits.max_index);
            // Soundness: if a feasible OPP exists for the padded demand,
            // the chosen one satisfies it (up-switches are never delayed).
            let padded = required * (1.0 + margin);
            if padded <= tbl.max_freq().hz() as f64 && idx < limits.max_index {
                prop_assert!(
                    tbl.freq(idx).hz() as f64 >= padded - 1.0,
                    "chose {idx} ({}) for padded demand {padded:.3e}",
                    tbl.freq(idx)
                );
            }
            cur = idx;
        }
    }

    /// Governor decisions are always legal OPP indices, in any phase.
    #[test]
    fn governor_decisions_in_range(
        decoded in 0usize..8,
        upcoming in 0usize..16,
        phase in 0u8..3,
        executed_mega in 0.0f64..50.0,
        trained_mega in 1.0f64..60.0,
    ) {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut g = EavsGovernor::new(Box::new(Ewma::default()), EavsConfig::default());
        let meta = FrameMeta { index: 0, frame_type: FrameType::P, size_bytes: 10_000 };
        g.observe_decode(meta, Cycles::from_mega(trained_mega));
        let snap = PipelineSnapshot {
            now: SimTime::from_millis(50),
            phase: match phase {
                0 => PlaybackPhase::Startup,
                1 => PlaybackPhase::Playing,
                _ => PlaybackPhase::Rebuffering,
            },
            next_vsync: SimTime::from_millis(60),
            frame_period: SimDuration::from_millis(33),
            decoded_len: decoded,
            in_flight: Some(InFlightMeta {
                meta,
                executed: Cycles::from_mega(executed_mega),
            }),
            upcoming: vec![meta; upcoming],
        };
        let idx = g.decide(&snap, &tbl, limits, 1);
        prop_assert!(idx <= limits.max_index);
    }

    /// More decoded slack never *raises* the chosen OPP (fresh governors,
    /// identical demand otherwise).
    #[test]
    fn slack_monotonicity(
        upcoming in 1usize..10,
        trained_mega in 5.0f64..60.0,
        d1 in 0usize..6,
        extra in 1usize..6,
    ) {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let snap_with = |decoded: usize| PipelineSnapshot {
            now: SimTime::from_millis(50),
            phase: PlaybackPhase::Playing,
            next_vsync: SimTime::from_millis(60),
            frame_period: SimDuration::from_millis(33),
            decoded_len: decoded,
            in_flight: None,
            upcoming: vec![FrameMeta { index: 0, frame_type: FrameType::P, size_bytes: 10_000 }; upcoming],
        };
        let fresh = || {
            let mut g = EavsGovernor::new(
                Box::new(Hybrid::default()),
                EavsConfig { down_hysteresis: 1, ..EavsConfig::default() },
            );
            g.observe_decode(
                FrameMeta { index: 0, frame_type: FrameType::P, size_bytes: 10_000 },
                Cycles::from_mega(trained_mega),
            );
            g
        };
        let shallow = fresh().decide(&snap_with(d1), &tbl, limits, 3);
        let deep = fresh().decide(&snap_with(d1 + extra), &tbl, limits, 3);
        prop_assert!(deep <= shallow, "deep {deep} > shallow {shallow}");
    }
}
