//! Deterministic random number generation for simulations.
//!
//! Every experiment in EAVS derives all of its randomness from a single
//! `u64` seed so that runs are reproducible. [`SimRng`] wraps a counter-less
//! xoshiro256++ generator (implemented here to avoid external non-approved
//! crates) and layers the distributions the workload generators need:
//! uniform, normal, lognormal, exponential, Pareto and Bernoulli.
//!
//! Independent deterministic streams (e.g. "video workload" vs "network
//! trace") are derived with [`SimRng::fork`], which mixes a stream label
//! into the seed with SplitMix64 so streams don't correlate.
//!
//! ```
//! use eavs_sim::rng::SimRng;
//!
//! let mut a = SimRng::new(42).fork("net");
//! let mut b = SimRng::new(42).fork("net");
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed + label => same stream
//! ```

/// SplitMix64 step; used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable random number generator with the simulation's
/// standard distributions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second Box-Muller variate.
    gauss_spare: Option<u64>,
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent stream labeled `label`. Deterministic: the
    /// same parent seed and label always produce the same stream.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SimRng::new(self.s[0] ^ h.rotate_left(17))
    }

    /// The next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad uniform range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer in `[lo, hi)` using rejection-free Lemire mapping.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "bad uniform_u64 range [{lo}, {hi})");
        let span = hi - lo;
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A standard normal variate via Box–Muller (with caching of the pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(bits) = self.gauss_spare.take() {
            return f64::from_bits(bits);
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some((r * theta.sin()).to_bits());
        r * theta.cos()
    }

    /// A normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std dev {std_dev}");
        mean + std_dev * self.standard_normal()
    }

    /// A lognormal variate: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// A lognormal variate parameterized by the *target* mean and coefficient
    /// of variation of the lognormal itself (often more convenient than
    /// (mu, sigma) of the underlying normal).
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `cv >= 0`.
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        assert!(mean > 0.0 && cv >= 0.0, "bad lognormal mean={mean} cv={cv}");
        if cv == 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        self.lognormal(mu, sigma2.sqrt())
    }

    /// An exponential variate with the given rate (events per unit).
    ///
    /// # Panics
    ///
    /// Panics unless `rate > 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "non-positive exponential rate {rate}");
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// A Pareto variate with the given scale (minimum) and shape.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(
            scale > 0.0 && shape > 0.0,
            "bad pareto scale={scale} shape={shape}"
        );
        scale / (1.0 - self.next_f64()).powf(1.0 / shape)
    }

    /// Picks an index in `[0, weights.len())` proportionally to `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative value, or sums to 0.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "empty weight vector");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "bad weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_u64(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams with different seeds should diverge");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let root = SimRng::new(99);
        let mut x1 = root.fork("video");
        let mut x2 = root.fork("video");
        let mut y = root.fork("net");
        assert_eq!(x1.next_u64(), x2.next_u64());
        // Not a strict independence test, just divergence.
        let mut x3 = root.fork("video");
        let same = (0..64).filter(|_| x3.next_u64() == y.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
            let n = r.uniform_u64(10, 20);
            assert!((10..20).contains(&n));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(11);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let v = r.normal(5.0, 2.0);
            sum += v;
            sum2 += v * v;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_mean_cv_hits_target_mean() {
        let mut r = SimRng::new(13);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.lognormal_mean_cv(3.0, 0.4)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert_eq!(r.lognormal_mean_cv(2.0, 0.0), 2.0);
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(17);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::new(19);
        for _ in 0..10_000 {
            assert!(r.pareto(1.5, 2.5) >= 1.5);
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SimRng::new(23);
        assert!((0..100).all(|_| !r.bernoulli(0.0)));
        assert!((0..100).all(|_| r.bernoulli(1.0)));
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = SimRng::new(29);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let p2 = counts[2] as f64 / 30_000.0;
        assert!((p2 - 0.7).abs() < 0.02, "p2 {p2}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(31);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::new(37);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
