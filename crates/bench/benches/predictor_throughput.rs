//! Predictor throughput: predict+observe cycles per frame for each
//! predictor implementation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use eavs_core::predictor::{predictor_by_name, FrameMeta, PREDICTOR_NAMES};
use eavs_cpu::freq::Cycles;
use eavs_video::frame::FrameType;

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor");
    // A deterministic pseudo-random frame stream.
    let frames: Vec<(FrameMeta, Cycles)> = (0..1000u64)
        .map(|i| {
            let t = match i % 12 {
                0 => FrameType::I,
                k if k % 3 == 1 => FrameType::P,
                _ => FrameType::B,
            };
            let size = 5_000 + ((i * 2_654_435_761) % 60_000) as u32;
            let cycles = Cycles::new(2e6 + 400.0 * f64::from(size));
            (
                FrameMeta {
                    index: 0,
                    frame_type: t,
                    size_bytes: size,
                },
                cycles,
            )
        })
        .collect();

    for name in PREDICTOR_NAMES {
        group.throughput(Throughput::Elements(frames.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = predictor_by_name(name).expect("known");
                let mut acc = 0.0;
                for &(meta, actual) in &frames {
                    acc += p.predict(meta).get();
                    p.observe(meta, actual);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
