//! Regenerates experiment `f1_power_curve` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f1_power_curve")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
