//! Quality-of-experience metrics.
//!
//! Aggregates playback statistics into the QoE measures the paper's
//! evaluation reports next to energy: deadline misses, rebuffering,
//! startup delay, delivered bitrate and ladder switches, plus a composite
//! score in the style of the MPC/Pensieve QoE objective so schemes can be
//! ranked on a single axis.

use crate::display::Playback;
use eavs_sim::time::SimDuration;
use std::fmt;

/// Aggregated QoE for one session.
#[derive(Clone, PartialEq, Debug)]
pub struct QoeReport {
    /// Frames displayed on time.
    pub frames_displayed: u64,
    /// Total frames in the stream.
    pub total_frames: u64,
    /// Vsync deadlines missed because decode was late (CPU too slow).
    pub late_vsyncs: u64,
    /// Frames skipped under the drop-late policy (also deadline misses).
    pub frames_dropped: u64,
    /// Rebuffering events (network starvation).
    pub rebuffer_events: u64,
    /// Total rebuffering time.
    pub rebuffer_time: SimDuration,
    /// Time to first frame.
    pub startup_delay: SimDuration,
    /// Mean delivered bitrate over displayed segments, kbps.
    pub mean_bitrate_kbps: f64,
    /// Number of ladder switches.
    pub bitrate_switches: u64,
    /// Wall-clock session length.
    pub session_length: SimDuration,
}

impl QoeReport {
    /// Builds a report from playback accounting plus the per-segment
    /// bitrate history (kbps of each downloaded segment, in order).
    ///
    /// # Panics
    ///
    /// Panics if `session_length` is zero.
    pub fn from_playback(
        playback: &Playback,
        segment_bitrates_kbps: &[u32],
        startup_delay: SimDuration,
        session_length: SimDuration,
    ) -> Self {
        assert!(!session_length.is_zero(), "zero-length session");
        let switches = segment_bitrates_kbps
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count() as u64;
        let mean_bitrate = if segment_bitrates_kbps.is_empty() {
            0.0
        } else {
            segment_bitrates_kbps
                .iter()
                .map(|&b| f64::from(b))
                .sum::<f64>()
                / segment_bitrates_kbps.len() as f64
        };
        QoeReport {
            frames_displayed: playback.frames_displayed(),
            total_frames: playback.total_frames(),
            late_vsyncs: playback.late_vsyncs(),
            frames_dropped: playback.frames_dropped(),
            rebuffer_events: playback.rebuffer_events(),
            rebuffer_time: playback.rebuffer_time(),
            startup_delay,
            mean_bitrate_kbps: mean_bitrate,
            bitrate_switches: switches,
            session_length,
        }
    }

    /// Fraction of vsync deadlines missed due to late decode (stalled or
    /// dropped), over all displayed-or-missed ticks.
    pub fn deadline_miss_rate(&self) -> f64 {
        let missed = self.late_vsyncs + self.frames_dropped;
        let ticks = self.frames_displayed + missed;
        if ticks == 0 {
            0.0
        } else {
            missed as f64 / ticks as f64
        }
    }

    /// Fraction of session time spent rebuffering.
    pub fn rebuffer_ratio(&self) -> f64 {
        self.rebuffer_time.as_secs_f64() / self.session_length.as_secs_f64()
    }

    /// Composite QoE score (higher is better): mean bitrate in Mbps,
    /// minus 4.3 × rebuffer seconds per minute of session, minus 1 ×
    /// switch count per minute, minus 2 × deadline-miss percentage.
    ///
    /// Coefficients follow the MPC-style linear QoE with an added
    /// deadline-miss term (the paper's concern); the *ranking* of schemes
    /// is insensitive to the exact weights for the workloads here.
    pub fn score(&self) -> f64 {
        let minutes = self.session_length.as_secs_f64() / 60.0;
        let mbps = self.mean_bitrate_kbps / 1000.0;
        let rebuf_per_min = self.rebuffer_time.as_secs_f64() / minutes.max(1e-9);
        let switches_per_min = self.bitrate_switches as f64 / minutes.max(1e-9);
        mbps - 4.3 * rebuf_per_min
            - 1.0 * switches_per_min
            - 2.0 * (self.deadline_miss_rate() * 100.0)
    }

    /// `true` when playback was perfect: every frame on time, no
    /// rebuffering.
    pub fn is_perfect(&self) -> bool {
        self.frames_displayed == self.total_frames
            && self.late_vsyncs == 0
            && self.frames_dropped == 0
            && self.rebuffer_events == 0
    }
}

impl fmt::Display for QoeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} frames, {} late ({:.2}%), {} rebuffer ({}), startup {}, {:.0} kbps, {} switches, score {:.2}",
            self.frames_displayed,
            self.total_frames,
            self.late_vsyncs,
            self.deadline_miss_rate() * 100.0,
            self.rebuffer_events,
            self.rebuffer_time,
            self.startup_delay,
            self.mean_bitrate_kbps,
            self.bitrate_switches,
            self.score()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FrameType};
    use crate::pipeline::DecodePipeline;
    use eavs_cpu::freq::Cycles;
    use eavs_sim::time::SimTime;

    fn played_back(total: u64, display: u64) -> Playback {
        let mut pb = Playback::new(total, 1, 1);
        let mut p = DecodePipeline::new(1024);
        p.push_frames((0..display).map(|index| Frame {
            index,
            frame_type: FrameType::P,
            size_bytes: 100,
            decode_cycles: Cycles::from_mega(1.0),
            duration: SimDuration::from_nanos(33_333_333),
        }));
        while p.can_start_decode() {
            p.start_decode();
            p.finish_decode();
        }
        pb.maybe_start(SimTime::ZERO, display as usize, false);
        for i in 0..display {
            pb.on_vsync(SimTime::from_millis(i), &mut p);
        }
        pb
    }

    #[test]
    fn perfect_session_scores_its_bitrate() {
        let pb = played_back(10, 10);
        let q = QoeReport::from_playback(
            &pb,
            &[3000, 3000],
            SimDuration::from_millis(500),
            SimDuration::from_secs(60),
        );
        assert!(q.is_perfect());
        assert_eq!(q.deadline_miss_rate(), 0.0);
        assert_eq!(q.rebuffer_ratio(), 0.0);
        assert!((q.score() - 3.0).abs() < 1e-9);
        assert_eq!(q.bitrate_switches, 0);
    }

    #[test]
    fn switches_counted_and_penalized() {
        let pb = played_back(10, 10);
        let q = QoeReport::from_playback(
            &pb,
            &[1000, 3000, 1000],
            SimDuration::ZERO,
            SimDuration::from_secs(60),
        );
        assert_eq!(q.bitrate_switches, 2);
        let q_stable = QoeReport::from_playback(
            &pb,
            &[1666, 1667, 1668],
            SimDuration::ZERO,
            SimDuration::from_secs(60),
        );
        // Similar mean bitrate, fewer switches -> at least as good.
        assert!(q_stable.score() > q.score() - 1e-9);
    }

    #[test]
    fn deadline_misses_reduce_score() {
        let mut pb = played_back(10, 5);
        // Simulate 5 late vsyncs by running vsync against an empty (but not
        // drained) pipeline.
        let mut p = DecodePipeline::new(4);
        p.push_frames([Frame {
            index: 5,
            frame_type: FrameType::P,
            size_bytes: 100,
            decode_cycles: Cycles::from_mega(1.0),
            duration: SimDuration::from_nanos(33_333_333),
        }]);
        p.start_decode(); // in flight, decoded queue empty
        for i in 0..5 {
            pb.on_vsync(SimTime::from_secs(1 + i), &mut p);
        }
        let q =
            QoeReport::from_playback(&pb, &[3000], SimDuration::ZERO, SimDuration::from_secs(60));
        assert_eq!(q.late_vsyncs, 5);
        assert!((q.deadline_miss_rate() - 0.5).abs() < 1e-12);
        assert!(q.score() < 0.0, "heavy missing should tank the score");
        assert!(!q.is_perfect());
    }

    #[test]
    fn empty_bitrate_history() {
        let pb = played_back(10, 10);
        let q = QoeReport::from_playback(&pb, &[], SimDuration::ZERO, SimDuration::from_secs(1));
        assert_eq!(q.mean_bitrate_kbps, 0.0);
    }

    #[test]
    fn display_renders() {
        let pb = played_back(10, 10);
        let q = QoeReport::from_playback(
            &pb,
            &[3000],
            SimDuration::from_millis(100),
            SimDuration::from_secs(10),
        );
        let s = q.to_string();
        assert!(s.contains("10/10 frames"));
        assert!(s.contains("score"));
    }
}
