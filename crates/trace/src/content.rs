//! Content profiles.
//!
//! Different content classes stress a video-aware governor differently:
//! animation decodes cheaply and predictably, film sits in the middle, and
//! sport combines high complexity with frequent scene changes (heavy-
//! tailed frame costs). The profiles parameterize the synthetic workload
//! generator; their constants are chosen to reproduce the qualitative
//! structure of published decode-cost characterizations (I ≫ P > B,
//! content-dependent variance), not any specific clip.

/// A content class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ContentProfile {
    /// Flat-shaded animation: cheap, low variance.
    Animation,
    /// Live-action film: moderate complexity and variance.
    Film,
    /// Sports: high complexity, frequent scene changes, heavy tails.
    Sport,
}

impl ContentProfile {
    /// All profiles (for sweeps).
    pub const ALL: [ContentProfile; 3] = [
        ContentProfile::Animation,
        ContentProfile::Film,
        ContentProfile::Sport,
    ];

    /// Identifier for tables and CSV files.
    pub fn name(self) -> &'static str {
        match self {
            ContentProfile::Animation => "animation",
            ContentProfile::Film => "film",
            ContentProfile::Sport => "sport",
        }
    }

    /// Multiplier on mean decode cycles per pixel.
    pub fn complexity(self) -> f64 {
        match self {
            ContentProfile::Animation => 0.7,
            ContentProfile::Film => 1.0,
            ContentProfile::Sport => 1.3,
        }
    }

    /// Coefficient of variation of per-frame decode cycles (within type).
    pub fn cycle_cv(self) -> f64 {
        match self {
            ContentProfile::Animation => 0.10,
            ContentProfile::Film => 0.18,
            ContentProfile::Sport => 0.30,
        }
    }

    /// Coefficient of variation of per-frame coded sizes (within type).
    pub fn size_cv(self) -> f64 {
        match self {
            ContentProfile::Animation => 0.20,
            ContentProfile::Film => 0.35,
            ContentProfile::Sport => 0.50,
        }
    }

    /// Probability that any given GOP starts a new scene (which inflates
    /// its frames' sizes and costs).
    pub fn scene_change_prob(self) -> f64 {
        match self {
            ContentProfile::Animation => 0.05,
            ContentProfile::Film => 0.15,
            ContentProfile::Sport => 0.35,
        }
    }

    /// Multiplier applied to a scene-change GOP.
    pub fn scene_change_boost(self) -> f64 {
        match self {
            ContentProfile::Animation => 1.3,
            ContentProfile::Film => 1.5,
            ContentProfile::Sport => 1.7,
        }
    }
}

impl std::fmt::Display for ContentProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_difficulty() {
        assert!(ContentProfile::Sport.complexity() > ContentProfile::Film.complexity());
        assert!(ContentProfile::Film.complexity() > ContentProfile::Animation.complexity());
        assert!(ContentProfile::Sport.cycle_cv() > ContentProfile::Animation.cycle_cv());
        assert!(
            ContentProfile::Sport.scene_change_prob() > ContentProfile::Film.scene_change_prob()
        );
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = ContentProfile::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 3);
        assert_eq!(ContentProfile::Film.to_string(), "film");
    }
}
