//! Process-wide memoization of generated traces.
//!
//! Generation is deterministic in its inputs: segment `(manifest,
//! content, seed, index, rung)` and bandwidth `(profile, duration, step,
//! seed)` tuples always produce the same bytes. Experiments re-derive the
//! same workloads dozens of times (one per governor per figure), so the
//! generators keep keyed caches here and hand out `Arc`s instead of
//! rebuilding.
//!
//! Builders run *outside* the lock: two threads racing on the same key
//! may both build, but they build identical values, so whichever insert
//! wins is indistinguishable from the other.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use eavs_net::bandwidth::BandwidthTrace;
use eavs_video::segment::Segment;

/// Hit/miss counters of one cache since process start.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build the value.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Memo<K, V> {
    map: Mutex<HashMap<K, Arc<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> Memo<K, V> {
    fn new() -> Self {
        Memo {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> Arc<V> {
        if let Some(v) = self.map.lock().expect("memo poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build());
        Arc::clone(
            self.map
                .lock()
                .expect("memo poisoned")
                .entry(key)
                .or_insert(built),
        )
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Key: (generator identity digest, segment index, rung).
type SegmentKey = (u128, u64, usize);
/// Key: (profile name, duration ns, step ns, seed).
type TraceKey = (&'static str, u64, u64, u64);

fn segments() -> &'static Memo<SegmentKey, Segment> {
    static CACHE: OnceLock<Memo<SegmentKey, Segment>> = OnceLock::new();
    CACHE.get_or_init(Memo::new)
}

fn traces() -> &'static Memo<TraceKey, BandwidthTrace> {
    static CACHE: OnceLock<Memo<TraceKey, BandwidthTrace>> = OnceLock::new();
    CACHE.get_or_init(Memo::new)
}

pub(crate) fn shared_segment(key: SegmentKey, build: impl FnOnce() -> Segment) -> Arc<Segment> {
    segments().get_or_build(key, build)
}

pub(crate) fn shared_trace(
    key: TraceKey,
    build: impl FnOnce() -> BandwidthTrace,
) -> Arc<BandwidthTrace> {
    traces().get_or_build(key, build)
}

/// Counters of the segment cache.
pub fn segment_cache_stats() -> CacheStats {
    segments().stats()
}

/// Counters of the bandwidth-trace cache.
pub fn trace_cache_stats() -> CacheStats {
    traces().stats()
}

/// One recorded EAVS frequency decision, 16 bytes.
///
/// `kind` tags which branch of the governor's decision logic fired (the
/// constants in [`decision_kind`]); `required_bits` carries the raw
/// bit-pattern of the computed demand (`f64::to_bits`) for the branches
/// that compute one, so replay can substitute it bit-exactly without
/// re-running the predictor; `chosen` is the OPP index the recording
/// session selected, used by injectors to detect the divergence point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecisionRecord {
    /// Which decision branch fired ([`decision_kind`]).
    pub kind: u8,
    /// OPP index chosen by the recording session.
    pub chosen: u16,
    /// `f64::to_bits` of the demand in Hz (branches that compute one).
    pub required_bits: u64,
}

/// Branch tags for [`DecisionRecord::kind`].
pub mod decision_kind {
    /// Structural maximum: fill race or an open panic window.
    pub const STRUCTURAL_MAX: u8 = 0;
    /// Playback ended: policy minimum.
    pub const ENDED_MIN: u8 = 1;
    /// Paced fill (race disabled): demand recorded.
    pub const PACED_FILL: u8 = 2;
    /// Playing with an empty demand list: select on zero demand.
    pub const IDLE: u8 = 3;
    /// Playing with pending work: demand recorded.
    pub const DEMAND: u8 = 4;
}

/// The full decision timeline of one recorded session, in decision order.
#[derive(Clone, Debug, Default)]
pub struct DecisionTimeline {
    /// Every governor decision the session took, in order.
    pub records: Vec<DecisionRecord>,
}

impl DecisionTimeline {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.records.len() * std::mem::size_of::<DecisionRecord>()
    }
}

/// Resident-byte cap of the decision-timeline store. A 60 s session
/// records a few thousand 16-byte decisions (~100 KB); the cap holds a
/// few hundred distinct bases, far more than any sweep needs, while
/// bounding a pathological caller.
const TIMELINE_CAP_BYTES: usize = 32 << 20;

struct TimelineStore {
    map: Mutex<(HashMap<u128, Arc<DecisionTimeline>>, usize)>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn timelines() -> &'static TimelineStore {
    static CACHE: OnceLock<TimelineStore> = OnceLock::new();
    CACHE.get_or_init(|| TimelineStore {
        map: Mutex::new((HashMap::new(), 0)),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// Looks up the recorded decision timeline for a session replay-prefix
/// key. Counts a hit or miss: call this only where a replay could
/// actually be injected, so the hit rate measures replay opportunities.
pub fn decision_timeline(key: u128) -> Option<Arc<DecisionTimeline>> {
    let store = timelines();
    let found = peek_decision_timeline(key);
    match &found {
        Some(_) => store.hits.fetch_add(1, Ordering::Relaxed),
        None => store.misses.fetch_add(1, Ordering::Relaxed),
    };
    found
}

/// [`decision_timeline`] without touching the hit/miss counters — for
/// schedulers probing whether a key was recorded yet (a wave leader's
/// cold probe is not a replay opportunity and must not dilute the rate).
pub fn peek_decision_timeline(key: u128) -> Option<Arc<DecisionTimeline>> {
    timelines()
        .map
        .lock()
        .expect("timeline store poisoned")
        .0
        .get(&key)
        .cloned()
}

/// Stores a recorded timeline under a replay-prefix key. First store
/// wins (later recordings under the same key are discarded, keeping the
/// stored value a deterministic function of execution order), and the
/// store refuses new entries past `TIMELINE_CAP_BYTES`. Returns
/// whether the timeline was kept.
pub fn store_decision_timeline(key: u128, records: Vec<DecisionRecord>) -> bool {
    let timeline = DecisionTimeline { records };
    let bytes = timeline.approx_bytes();
    let store = timelines();
    let mut guard = store.map.lock().expect("timeline store poisoned");
    let (map, resident) = &mut *guard;
    if map.contains_key(&key) || *resident + bytes > TIMELINE_CAP_BYTES {
        return false;
    }
    map.insert(key, Arc::new(timeline));
    *resident += bytes;
    true
}

/// Counters of the decision-timeline store (hits/misses of
/// [`decision_timeline`] lookups).
pub fn decision_timeline_stats() -> CacheStats {
    timelines().stats_of()
}

impl TimelineStore {
    fn stats_of(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_returns_same_arc_and_counts() {
        let memo: Memo<u32, String> = Memo::new();
        let a = memo.get_or_build(1, || "one".to_owned());
        let b = memo.get_or_build(1, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = memo.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        let _ = memo.get_or_build(2, || "two".to_owned());
        assert_eq!(memo.stats().misses, 2);
    }

    #[test]
    fn timeline_store_is_first_write_wins() {
        // Keys salted to avoid colliding with other tests sharing the
        // process-wide store.
        let key = 0xfeed_0001_u128;
        assert!(decision_timeline(key).is_none());
        let rec = |chosen| DecisionRecord {
            kind: decision_kind::DEMAND,
            chosen,
            required_bits: 42,
        };
        assert!(store_decision_timeline(key, vec![rec(1)]));
        assert!(
            !store_decision_timeline(key, vec![rec(2)]),
            "second store under the same key must be discarded"
        );
        let got = decision_timeline(key).expect("stored");
        assert_eq!(got.records, vec![rec(1)]);
        let s = decision_timeline_stats();
        assert!(s.hits >= 1 && s.misses >= 1);
    }

    #[test]
    fn hit_rate_handles_empty_and_counts() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
