//! Decode-workload prediction.
//!
//! The EAVS governor must know how many cycles upcoming frames will take
//! *before* decoding them. Predictors observe `(frame metadata, actual
//! cycles)` pairs after each decode — frame metadata (type and coded size)
//! is container information available before decode; actual cycles are
//! what a per-thread cycle counter reports afterwards.
//!
//! Implemented predictors, in increasing sophistication (F4 compares
//! them, F13 ablates the governor across them):
//!
//! * [`LastValue`] — per-type last observation.
//! * [`Ewma`] — per-type exponentially weighted moving average.
//! * [`WindowMax`] — per-type max over a sliding window (conservative).
//! * [`SizeRegression`] — per-type online linear regression on coded size.
//! * [`Hybrid`] — size regression blended with an EWMA correction ratio
//!   plus a variance-based safety term; the paper-grade default.

use eavs_cpu::freq::Cycles;
use eavs_sim::fingerprint::Fingerprinter;
use eavs_video::frame::{Frame, FrameType};
use std::collections::VecDeque;

/// Container-visible frame metadata (what a predictor may look at).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FrameMeta {
    /// Global decode-order index (container timeline position).
    pub index: u64,
    /// Coding type.
    pub frame_type: FrameType,
    /// Coded size in bytes.
    pub size_bytes: u32,
}

impl From<&Frame> for FrameMeta {
    fn from(f: &Frame) -> Self {
        FrameMeta {
            index: f.index,
            frame_type: f.frame_type,
            size_bytes: f.size_bytes,
        }
    }
}

/// A decode-cost predictor.
pub trait WorkloadPredictor: std::fmt::Debug + Send {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// Predicted decode cost of a frame with the given metadata.
    fn predict(&self, meta: FrameMeta) -> Cycles;

    /// Feeds back the measured cost after the frame was decoded.
    fn observe(&mut self, meta: FrameMeta, actual: Cycles);

    /// Offers ground-truth costs for frames about to enter the pipeline.
    /// Real predictors ignore this; the [`Oracle`] stores it. Exists so
    /// the evaluation can bound how much better a perfect predictor could
    /// do (F13's `predictor=oracle` row).
    fn preload(&mut self, frames: &[(FrameMeta, Cycles)]) {
        let _ = frames;
    }

    /// Hashes the predictor's identity and parameters into `fp` for
    /// session memoization. The default marks the fingerprint opaque;
    /// concrete predictors override it and must mark opaque once they
    /// carry observations.
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.mark_opaque();
    }

    /// Whether [`observe`](Self::observe) can only ever change the
    /// predictions of frames sharing the observed frame's `frame_type`.
    /// Every built-in predictor keeps per-type (or, for the oracle,
    /// per-index) state and answers `true`; the session's steady-demand
    /// cache then refreshes only the observed type's cached items after
    /// a decode completes instead of rebuilding the whole list. The
    /// conservative default is `false`: cross-type coupling assumed,
    /// full rebuild after every observation.
    fn observe_is_type_local(&self) -> bool {
        false
    }
}

/// Cold-start estimate before any observation of a type: scale from coded
/// size with a generous cycles/byte factor so early frames are not
/// under-provisioned.
fn cold_start(meta: FrameMeta) -> Cycles {
    Cycles::new((f64::from(meta.size_bytes) * 600.0).max(5e6))
}

/// Per-type last observed value.
#[derive(Clone, Debug, Default)]
pub struct LastValue {
    last: [Option<f64>; 3],
}

impl LastValue {
    /// Creates the predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WorkloadPredictor for LastValue {
    fn name(&self) -> &'static str {
        "last"
    }

    fn observe_is_type_local(&self) -> bool {
        true
    }

    fn predict(&self, meta: FrameMeta) -> Cycles {
        match self.last[meta.frame_type.index()] {
            Some(v) => Cycles::new(v),
            None => cold_start(meta),
        }
    }

    fn observe(&mut self, meta: FrameMeta, actual: Cycles) {
        self.last[meta.frame_type.index()] = Some(actual.get());
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        if self.last.iter().any(Option::is_some) {
            fp.mark_opaque();
            return;
        }
        fp.write_str(self.name());
    }
}

/// Per-type exponentially weighted moving average.
#[derive(Clone, Debug)]
pub struct Ewma {
    alpha: f64,
    mean: [Option<f64>; 3],
}

impl Ewma {
    /// Creates the predictor with smoothing factor `alpha` (weight of the
    /// newest observation).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "bad EWMA alpha {alpha}");
        Ewma {
            alpha,
            mean: [None; 3],
        }
    }
}

impl Default for Ewma {
    fn default() -> Self {
        Ewma::new(0.25)
    }
}

impl WorkloadPredictor for Ewma {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn observe_is_type_local(&self) -> bool {
        true
    }

    fn predict(&self, meta: FrameMeta) -> Cycles {
        match self.mean[meta.frame_type.index()] {
            Some(v) => Cycles::new(v),
            None => cold_start(meta),
        }
    }

    fn observe(&mut self, meta: FrameMeta, actual: Cycles) {
        let slot = &mut self.mean[meta.frame_type.index()];
        *slot = Some(match *slot {
            Some(m) => m + self.alpha * (actual.get() - m),
            None => actual.get(),
        });
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        if self.mean.iter().any(Option::is_some) {
            fp.mark_opaque();
            return;
        }
        fp.write_str(self.name());
        fp.write_f64(self.alpha);
    }
}

/// Per-type maximum over a sliding window of observations.
///
/// The running maximum is maintained incrementally at
/// [`observe`](WorkloadPredictor::observe) time (re-scanning the window
/// only when the evicted entry *was* the maximum), so the much more
/// frequent [`predict`](WorkloadPredictor::predict) is a single cached
/// read. The max of a set does not depend on scan order, so the cached
/// value is bit-identical to the fold the predictor used to run per call.
#[derive(Clone, Debug)]
pub struct WindowMax {
    window: usize,
    history: [VecDeque<f64>; 3],
    /// Cached per-type window maximum; NaN encodes an empty window.
    max: [f64; 3],
}

impl WindowMax {
    /// Creates the predictor with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "zero window");
        WindowMax {
            window,
            history: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            max: [f64::NAN; 3],
        }
    }
}

impl Default for WindowMax {
    fn default() -> Self {
        WindowMax::new(30)
    }
}

impl WorkloadPredictor for WindowMax {
    fn name(&self) -> &'static str {
        "window-max"
    }

    fn observe_is_type_local(&self) -> bool {
        true
    }

    fn predict(&self, meta: FrameMeta) -> Cycles {
        match self.max[meta.frame_type.index()] {
            v if v.is_nan() => cold_start(meta),
            v => Cycles::new(v),
        }
    }

    fn observe(&mut self, meta: FrameMeta, actual: Cycles) {
        let i = meta.frame_type.index();
        let h = &mut self.history[i];
        let mut evicted = None;
        if h.len() == self.window {
            evicted = h.pop_front();
        }
        h.push_back(actual.get());
        let m = self.max[i];
        self.max[i] = if evicted.is_some_and(|e| e == m) {
            // The maximum may have just left the window; rescan.
            h.iter().cloned().fold(f64::NAN, f64::max)
        } else if m.is_nan() {
            actual.get()
        } else {
            m.max(actual.get())
        };
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        if self.history.iter().any(|h| !h.is_empty()) {
            fp.mark_opaque();
            return;
        }
        fp.write_str(self.name());
        fp.write_usize(self.window);
    }
}

/// Per-type online linear regression `cycles = a + b·size`.
///
/// Maintains running first and second moments; falls back to the mean when
/// size variance is degenerate.
///
/// The fitted line is refreshed once per [`observe`](WorkloadPredictor::observe)
/// and cached, so [`predict`](WorkloadPredictor::predict) — called an order
/// of magnitude more often (once per frame in the lookahead window, every
/// decision) — is a handful of flops instead of re-deriving the fit's
/// divisions each time. The cached coefficients are computed by the exact
/// same expressions the per-call fit used, so predictions are bit-identical.
#[derive(Clone, Debug, Default)]
pub struct SizeRegression {
    stats: [RegState; 3],
    fit: [Fit; 3],
}

/// The state of a cached per-type fit.
#[derive(Clone, Copy, Debug, Default)]
enum Fit {
    /// No observations yet: predictions fall back to [`cold_start`].
    #[default]
    Cold,
    /// Too few observations (or degenerate size variance): predict the
    /// per-type mean.
    Mean(f64),
    /// A trusted line, pre-clamped to the sane band around the mean.
    Line { a: f64, b: f64, lo: f64, hi: f64 },
}

impl Fit {
    /// Derives the cached fit from the raw moments — the same arithmetic,
    /// in the same order, as [`RegState::predict`] performed inline.
    fn from_state(s: &RegState) -> Fit {
        if s.n < 1.0 {
            return Fit::Cold;
        }
        let mean = s.sum_y / s.n;
        if s.n < 8.0 {
            return Fit::Mean(mean);
        }
        let var_x = s.sum_xx - s.sum_x * s.sum_x / s.n;
        if var_x < 1e-9 {
            return Fit::Mean(mean);
        }
        let cov = s.sum_xy - s.sum_x * s.sum_y / s.n;
        let b = cov / var_x;
        let a = (s.sum_y - b * s.sum_x) / s.n;
        Fit::Line {
            a,
            b,
            lo: mean / 4.0,
            hi: mean * 4.0,
        }
    }

    /// Applies the fit to a coded size; `None` means cold.
    #[inline]
    fn apply(&self, x: f64) -> Option<f64> {
        match *self {
            Fit::Cold => None,
            Fit::Mean(mean) => Some(mean),
            Fit::Line { a, b, lo, hi } => Some((a + b * x).clamp(lo, hi)),
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct RegState {
    n: f64,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_xy: f64,
}

impl RegState {
    fn observe(&mut self, x: f64, y: f64) {
        self.n += 1.0;
        self.sum_x += x;
        self.sum_y += y;
        self.sum_xx += x * x;
        self.sum_xy += x * y;
    }

    /// Reference implementation of the fit, derived inline per call.
    /// Production goes through the cached [`Fit`]; this stays as the
    /// oracle the equivalence test compares against, bit for bit.
    ///
    /// With few observations a fitted line extrapolates wildly; trust
    /// the per-type mean until the fit has support, and always clamp
    /// the line's output to a sane band around the mean.
    #[cfg(test)]
    fn predict(&self, x: f64) -> Option<f64> {
        if self.n < 1.0 {
            return None;
        }
        let mean = self.sum_y / self.n;
        if self.n < 8.0 {
            return Some(mean);
        }
        let var_x = self.sum_xx - self.sum_x * self.sum_x / self.n;
        if var_x < 1e-9 {
            return Some(mean);
        }
        let cov = self.sum_xy - self.sum_x * self.sum_y / self.n;
        let b = cov / var_x;
        let a = (self.sum_y - b * self.sum_x) / self.n;
        Some((a + b * x).clamp(mean / 4.0, mean * 4.0))
    }
}

impl SizeRegression {
    /// Creates the predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WorkloadPredictor for SizeRegression {
    fn name(&self) -> &'static str {
        "size-regression"
    }

    fn observe_is_type_local(&self) -> bool {
        true
    }

    fn predict(&self, meta: FrameMeta) -> Cycles {
        match self.fit[meta.frame_type.index()].apply(f64::from(meta.size_bytes)) {
            Some(v) => Cycles::new(v.max(10_000.0)),
            None => cold_start(meta),
        }
    }

    fn observe(&mut self, meta: FrameMeta, actual: Cycles) {
        let i = meta.frame_type.index();
        self.stats[i].observe(f64::from(meta.size_bytes), actual.get());
        self.fit[i] = Fit::from_state(&self.stats[i]);
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        if self.stats.iter().any(|s| s.n > 0.0) {
            fp.mark_opaque();
            return;
        }
        fp.write_str(self.name());
    }
}

/// The paper-grade predictor: per-type size regression, corrected by an
/// EWMA of the actual/predicted ratio (absorbs content drift), plus a
/// safety term proportional to the EWMA of the absolute residual (so
/// bursty content gets more headroom automatically).
#[derive(Clone, Debug)]
pub struct Hybrid {
    regression: SizeRegression,
    ratio: [f64; 3],
    residual: [f64; 3],
    ratio_alpha: f64,
    safety_sigmas: f64,
}

impl Hybrid {
    /// Creates the predictor with `safety_sigmas` residual headroom.
    ///
    /// # Panics
    ///
    /// Panics if `safety_sigmas` is negative.
    pub fn new(safety_sigmas: f64) -> Self {
        assert!(safety_sigmas >= 0.0, "negative safety");
        Hybrid {
            regression: SizeRegression::new(),
            ratio: [1.0; 3],
            residual: [0.0; 3],
            ratio_alpha: 0.2,
            safety_sigmas,
        }
    }
}

impl Default for Hybrid {
    fn default() -> Self {
        Hybrid::new(1.0)
    }
}

impl WorkloadPredictor for Hybrid {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn observe_is_type_local(&self) -> bool {
        true
    }

    fn predict(&self, meta: FrameMeta) -> Cycles {
        let base = self.regression.predict(meta).get();
        let i = meta.frame_type.index();
        let corrected = base * self.ratio[i] + self.safety_sigmas * self.residual[i];
        Cycles::new(corrected.max(10_000.0))
    }

    fn observe(&mut self, meta: FrameMeta, actual: Cycles) {
        let i = meta.frame_type.index();
        let base = self.regression.predict(meta).get();
        if base > 0.0 {
            let r = actual.get() / base;
            self.ratio[i] += self.ratio_alpha * (r - self.ratio[i]);
            let resid = (actual.get() - base * self.ratio[i]).abs();
            self.residual[i] += self.ratio_alpha * (resid - self.residual[i]);
        }
        self.regression.observe(meta, actual);
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        if self.ratio != [1.0; 3] || self.residual != [0.0; 3] {
            fp.mark_opaque();
            return;
        }
        // Delegates to the inner regression, which marks opaque once it
        // holds observations.
        fp.write_str(self.name());
        fp.write_f64(self.ratio_alpha);
        fp.write_f64(self.safety_sigmas);
        self.regression.fingerprint(fp);
    }
}

/// The cheating upper bound: returns the exact decode cost of every frame
/// it has been [`preload`](WorkloadPredictor::preload)ed with (the
/// streaming session preloads each downloaded segment). Not realizable on
/// a device — it exists to measure the *regret* of the real predictors:
/// how much energy/QoE a perfect predictor would buy.
#[derive(Clone, Debug, Default)]
pub struct Oracle {
    truth: std::collections::HashMap<u64, f64>,
}

impl Oracle {
    /// Creates an empty oracle (useless until preloaded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of frames whose truth is known.
    pub fn known(&self) -> usize {
        self.truth.len()
    }
}

impl WorkloadPredictor for Oracle {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn observe_is_type_local(&self) -> bool {
        true
    }

    fn predict(&self, meta: FrameMeta) -> Cycles {
        match self.truth.get(&meta.index) {
            Some(&cycles) => Cycles::new(cycles),
            None => cold_start(meta),
        }
    }

    fn observe(&mut self, meta: FrameMeta, actual: Cycles) {
        // Ground truth by definition; keep it anyway for frames that were
        // never preloaded.
        self.truth.insert(meta.index, actual.get());
    }

    fn preload(&mut self, frames: &[(FrameMeta, Cycles)]) {
        for (meta, cycles) in frames {
            self.truth.insert(meta.index, cycles.get());
        }
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        if !self.truth.is_empty() {
            fp.mark_opaque();
            return;
        }
        fp.write_str(self.name());
    }
}

/// Per-frame-type population prior learned by a fleet campaign for one
/// (title, content) key.
///
/// Each slot holds `(mean_cycles, weight)` for the type at
/// [`FrameType::index`]: the population mean decode cost and a pseudo-count
/// evidence weight (capped fleet-side so one giant campaign cannot drown
/// out local evidence). An empty prior is indistinguishable from no prior
/// at all — sessions treat it as absent, mirroring the null power-model
/// contract.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct SessionPrior {
    /// Per-type `(mean_cycles, weight)`, indexed by [`FrameType::index`].
    pub types: [Option<(f64, f64)>; 3],
}

impl SessionPrior {
    /// `true` when no type carries population evidence (≡ no prior).
    pub fn is_empty(&self) -> bool {
        self.types.iter().all(Option::is_none)
    }

    /// Hashes the prior's exact content (f64 bit patterns) into `fp`.
    pub fn fingerprint(&self, fp: &mut Fingerprinter) {
        for slot in &self.types {
            match slot {
                Some((mean, weight)) => {
                    fp.write_u8(1);
                    fp.write_f64(*mean);
                    fp.write_f64(*weight);
                }
                None => fp.write_u8(0),
            }
        }
    }
}

/// Local observations per type after which [`FleetPrior`] hands off
/// entirely to its inner predictor. Past this point a warmed session
/// predicts bit-identically to a cold one — the prior only shapes the
/// cold-start window.
pub const PRIOR_HANDOFF_OBS: u64 = 30;

/// A population-seeded predictor: starts from the fleet posterior, hands
/// off to the wrapped per-session predictor as local evidence accumulates.
///
/// Per frame type, with `n` local observations, prediction is the
/// pseudo-count blend `(w·prior_mean + n·inner) / (w + n)` where `w` is
/// the prior's evidence weight: the pure prior mean at `n = 0` (replacing
/// the size-scaled cold start), converging to the inner predictor and
/// switching to it outright at [`PRIOR_HANDOFF_OBS`].
#[derive(Debug)]
pub struct FleetPrior {
    inner: Box<dyn WorkloadPredictor>,
    prior: SessionPrior,
    seen: [u64; 3],
}

impl FleetPrior {
    /// Wraps `inner` with the given population prior.
    pub fn new(inner: Box<dyn WorkloadPredictor>, prior: SessionPrior) -> Self {
        FleetPrior {
            inner,
            prior,
            seen: [0; 3],
        }
    }

    /// The wrapped per-session predictor's name.
    pub fn inner_name(&self) -> &'static str {
        self.inner.name()
    }
}

impl WorkloadPredictor for FleetPrior {
    fn name(&self) -> &'static str {
        "fleet-prior"
    }

    fn observe_is_type_local(&self) -> bool {
        // The blend weight `seen` is per-type, so type locality is
        // inherited from the inner predictor.
        self.inner.observe_is_type_local()
    }

    fn predict(&self, meta: FrameMeta) -> Cycles {
        let t = meta.frame_type.index();
        let n = self.seen[t];
        let Some((mean, weight)) = self.prior.types[t] else {
            return self.inner.predict(meta);
        };
        if n >= PRIOR_HANDOFF_OBS {
            return self.inner.predict(meta);
        }
        if n == 0 {
            return Cycles::new(mean);
        }
        let local = self.inner.predict(meta).get();
        let n = n as f64;
        Cycles::new((weight * mean + n * local) / (weight + n))
    }

    fn observe(&mut self, meta: FrameMeta, actual: Cycles) {
        let t = meta.frame_type.index();
        self.seen[t] = self.seen[t].saturating_add(1);
        self.inner.observe(meta, actual);
    }

    fn preload(&mut self, frames: &[(FrameMeta, Cycles)]) {
        self.inner.preload(frames);
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        if self.seen != [0; 3] {
            fp.mark_opaque();
            return;
        }
        fp.write_str(self.name());
        self.prior.fingerprint(fp);
        self.inner.fingerprint(fp);
    }
}

/// Constructs a predictor by name (for experiment configs).
///
/// Known names: `last`, `ewma`, `window-max`, `size-regression`, `hybrid`,
/// plus the unrealizable `oracle` bound.
pub fn predictor_by_name(name: &str) -> Option<Box<dyn WorkloadPredictor>> {
    Some(match name {
        "last" => Box::new(LastValue::new()),
        "ewma" => Box::new(Ewma::default()),
        "window-max" => Box::new(WindowMax::default()),
        "size-regression" => Box::new(SizeRegression::new()),
        "hybrid" => Box::new(Hybrid::default()),
        "oracle" => Box::new(Oracle::new()),
        _ => return None,
    })
}

/// All predictor names, in F4/F13 presentation order.
pub const PREDICTOR_NAMES: [&str; 5] = ["last", "ewma", "window-max", "size-regression", "hybrid"];

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(t: FrameType, size: u32) -> FrameMeta {
        FrameMeta {
            index: 0,
            frame_type: t,
            size_bytes: size,
        }
    }

    fn mc(m: f64) -> Cycles {
        Cycles::from_mega(m)
    }

    #[test]
    fn cold_start_scales_with_size() {
        let p = LastValue::new();
        let small = p.predict(meta(FrameType::I, 10_000));
        let large = p.predict(meta(FrameType::I, 100_000));
        assert!(large > small);
    }

    #[test]
    fn last_value_tracks_per_type() {
        let mut p = LastValue::new();
        p.observe(meta(FrameType::I, 1000), mc(30.0));
        p.observe(meta(FrameType::B, 100), mc(5.0));
        assert_eq!(p.predict(meta(FrameType::I, 1000)), mc(30.0));
        assert_eq!(p.predict(meta(FrameType::B, 100)), mc(5.0));
        p.observe(meta(FrameType::I, 1000), mc(40.0));
        assert_eq!(p.predict(meta(FrameType::I, 999)), mc(40.0));
    }

    #[test]
    fn ewma_converges_to_constant_signal() {
        let mut p = Ewma::new(0.3);
        for _ in 0..100 {
            p.observe(meta(FrameType::P, 500), mc(10.0));
        }
        let pred = p.predict(meta(FrameType::P, 500));
        assert!((pred.mega() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn ewma_smooths_oscillation() {
        let mut p = Ewma::new(0.2);
        for i in 0..200 {
            let v = if i % 2 == 0 { 8.0 } else { 12.0 };
            p.observe(meta(FrameType::P, 500), mc(v));
        }
        let pred = p.predict(meta(FrameType::P, 500)).mega();
        assert!((pred - 10.0).abs() < 1.5, "pred {pred}");
    }

    #[test]
    fn window_max_is_conservative() {
        let mut p = WindowMax::new(5);
        for v in [5.0, 9.0, 6.0] {
            p.observe(meta(FrameType::P, 500), mc(v));
        }
        assert_eq!(p.predict(meta(FrameType::P, 500)), mc(9.0));
        // Max slides out of the window.
        for _ in 0..5 {
            p.observe(meta(FrameType::P, 500), mc(4.0));
        }
        assert_eq!(p.predict(meta(FrameType::P, 500)), mc(4.0));
    }

    #[test]
    fn regression_learns_linear_law() {
        let mut p = SizeRegression::new();
        // cycles = 1e6 + 100 * size
        for size in (1000u32..20_000).step_by(1000) {
            p.observe(
                meta(FrameType::P, size),
                Cycles::new(1e6 + 100.0 * f64::from(size)),
            );
        }
        let pred = p.predict(meta(FrameType::P, 10_500)).get();
        let truth = 1e6 + 100.0 * 10_500.0;
        assert!(
            (pred - truth).abs() / truth < 0.01,
            "pred {pred} truth {truth}"
        );
    }

    #[test]
    fn regression_degenerate_sizes_fall_back_to_mean() {
        let mut p = SizeRegression::new();
        p.observe(meta(FrameType::B, 700), mc(3.0));
        p.observe(meta(FrameType::B, 700), mc(5.0));
        let pred = p.predict(meta(FrameType::B, 700)).mega();
        assert!((pred - 4.0).abs() < 1e-9);
    }

    #[test]
    fn hybrid_beats_ewma_on_size_correlated_load() {
        // Workload where cost is strongly size-driven and sizes alternate:
        // EWMA smears; hybrid keys off size.
        let mut hybrid = Hybrid::new(0.0);
        let mut ewma = Ewma::default();
        let cost = |size: u32| Cycles::new(200.0 * f64::from(size));
        for i in 0..300 {
            let size = if i % 2 == 0 { 10_000 } else { 40_000 };
            let m = meta(FrameType::P, size);
            hybrid.observe(m, cost(size));
            ewma.observe(m, cost(size));
        }
        let m = meta(FrameType::P, 40_000);
        let truth = cost(40_000).get();
        let hybrid_err = (hybrid.predict(m).get() - truth).abs() / truth;
        let ewma_err = (ewma.predict(m).get() - truth).abs() / truth;
        assert!(
            hybrid_err < ewma_err / 2.0,
            "hybrid {hybrid_err:.3} vs ewma {ewma_err:.3}"
        );
    }

    #[test]
    fn hybrid_safety_adds_headroom_under_noise() {
        let mut tight = Hybrid::new(0.0);
        let mut safe = Hybrid::new(2.0);
        // Noisy-ish deterministic sequence.
        for i in 0..200u32 {
            let noise = 1.0 + 0.3 * f64::from(i % 7) / 6.0;
            let actual = Cycles::new(10e6 * noise);
            let m = meta(FrameType::P, 20_000);
            tight.observe(m, actual);
            safe.observe(m, actual);
        }
        let m = meta(FrameType::P, 20_000);
        assert!(safe.predict(m) > tight.predict(m));
    }

    #[test]
    fn regression_cached_fit_is_bit_identical_to_inline_fit() {
        // Deterministic varied stream: every (n, variance) regime of the
        // fit — cold, low-support mean, degenerate variance, full line —
        // must produce bit-for-bit the value the inline derivation gives.
        let mut p = SizeRegression::new();
        let types = [FrameType::I, FrameType::P, FrameType::B];
        for step in 0u32..64 {
            let ty = types[(step % 3) as usize];
            for &probe in &[400u32, 9_000, 25_000, 1 << 20] {
                let m = meta(ty, probe);
                let inline = p.stats[ty.index()]
                    .predict(f64::from(probe))
                    .map_or(cold_start(m), |v| Cycles::new(v.max(10_000.0)));
                assert_eq!(
                    p.predict(m).get().to_bits(),
                    inline.get().to_bits(),
                    "step {step} type {ty:?} probe {probe}"
                );
            }
            // Degenerate sizes for B (constant), spread for I/P.
            let size = match ty {
                FrameType::B => 700,
                _ => 1_000 + 517 * step,
            };
            let cost = 5e6 + 300.0 * f64::from(size) + 1e5 * f64::from(step % 5);
            p.observe(meta(ty, size), Cycles::new(cost));
        }
    }

    #[test]
    fn window_max_cached_max_matches_window_rescan() {
        // Eviction of the maximum, duplicated maxima, and growth from
        // empty all keep the cache equal to a full window scan.
        let mut p = WindowMax::new(4);
        let vals = [
            9.0, 2.0, 9.0, 1.0, 3.0, 8.0, 8.0, 7.0, 1.0, 1.0, 1.0, 1.0, 2.0,
        ];
        for (i, &v) in vals.iter().enumerate() {
            p.observe(meta(FrameType::P, 500), mc(v));
            let scan = p.history[FrameType::P.index()]
                .iter()
                .cloned()
                .fold(f64::NAN, f64::max);
            assert_eq!(
                p.predict(meta(FrameType::P, 500)),
                Cycles::new(scan),
                "after obs {i}"
            );
        }
    }

    #[test]
    fn by_name_covers_all() {
        for name in PREDICTOR_NAMES {
            let p = predictor_by_name(name).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(p.name(), name);
        }
        assert!(predictor_by_name("oracle").is_some());
        assert!(predictor_by_name("psychic").is_none());
    }

    #[test]
    fn oracle_returns_preloaded_truth_exactly() {
        let mut o = Oracle::new();
        let m1 = FrameMeta {
            index: 7,
            frame_type: FrameType::I,
            size_bytes: 50_000,
        };
        let m2 = FrameMeta {
            index: 8,
            frame_type: FrameType::B,
            size_bytes: 4_000,
        };
        o.preload(&[(m1, mc(42.0)), (m2, mc(3.0))]);
        assert_eq!(o.known(), 2);
        assert_eq!(o.predict(m1), mc(42.0));
        assert_eq!(o.predict(m2), mc(3.0));
        // Unknown frames fall back to the size-scaled cold start.
        let unknown = FrameMeta {
            index: 99,
            frame_type: FrameType::P,
            size_bytes: 10_000,
        };
        assert!(o.predict(unknown).get() > 0.0);
        // Observation also teaches it.
        o.observe(unknown, mc(11.0));
        assert_eq!(o.predict(unknown), mc(11.0));
    }

    #[test]
    fn real_predictors_ignore_preload() {
        let m = meta(FrameType::P, 10_000);
        for name in ["last", "ewma", "window-max", "size-regression", "hybrid"] {
            let mut p = predictor_by_name(name).unwrap();
            let before = p.predict(m).get();
            p.preload(&[(m, mc(500.0))]);
            assert_eq!(
                p.predict(m).get(),
                before,
                "{name} must not learn from preload"
            );
        }
    }

    fn prior(mean_mc: f64, weight: f64) -> SessionPrior {
        SessionPrior {
            types: [Some((mean_mc * 1e6, weight)); 3],
        }
    }

    #[test]
    fn fleet_prior_replaces_cold_start_with_population_mean() {
        let p = FleetPrior::new(Box::new(Ewma::default()), prior(25.0, 8.0));
        assert_eq!(p.predict(meta(FrameType::I, 50_000)), mc(25.0));
        assert_eq!(p.name(), "fleet-prior");
        assert_eq!(p.inner_name(), "ewma");
    }

    #[test]
    fn fleet_prior_blend_moves_toward_local_evidence() {
        let mut p = FleetPrior::new(Box::new(LastValue::new()), prior(25.0, 8.0));
        let m = meta(FrameType::P, 500);
        p.observe(m, mc(10.0));
        // n=1, w=8: (8*25 + 1*10) / 9.
        let expect = (8.0 * 25.0 + 10.0) / 9.0;
        assert!((p.predict(m).mega() - expect).abs() < 1e-9);
        for _ in 0..10 {
            p.observe(m, mc(10.0));
        }
        // More local evidence pulls the blend toward the local value.
        assert!((p.predict(m).mega() - 10.0).abs() < (expect - 10.0));
    }

    #[test]
    fn fleet_prior_hands_off_bit_exactly_after_warmup() {
        let mut warmed = FleetPrior::new(Box::new(Ewma::default()), prior(25.0, 8.0));
        let mut cold = Ewma::default();
        let m = meta(FrameType::P, 500);
        for i in 0..PRIOR_HANDOFF_OBS {
            let v = mc(10.0 + (i % 4) as f64);
            warmed.observe(m, v);
            cold.observe(m, v);
        }
        assert_eq!(
            warmed.predict(m).get().to_bits(),
            cold.predict(m).get().to_bits(),
            "past hand-off, warmed and cold sessions must agree exactly"
        );
    }

    #[test]
    fn fleet_prior_empty_prior_defers_to_inner() {
        let p = FleetPrior::new(Box::new(Ewma::default()), SessionPrior::default());
        let bare = Ewma::default();
        let m = meta(FrameType::B, 4_000);
        assert_eq!(p.predict(m), bare.predict(m));
        assert!(SessionPrior::default().is_empty());
    }

    #[test]
    fn fleet_prior_fingerprints_content_while_fresh() {
        let fp_of = |p: &dyn WorkloadPredictor| {
            let mut fp = Fingerprinter::new("test");
            p.fingerprint(&mut fp);
            fp.finish()
        };
        let a = FleetPrior::new(Box::new(Ewma::default()), prior(25.0, 8.0));
        let b = FleetPrior::new(Box::new(Ewma::default()), prior(25.0, 8.0));
        let c = FleetPrior::new(Box::new(Ewma::default()), prior(26.0, 8.0));
        assert_eq!(fp_of(&a), fp_of(&b));
        assert_ne!(fp_of(&a), fp_of(&c), "prior content must key the cache");
        // Once trained the fingerprint goes opaque (uncacheable).
        let mut d = FleetPrior::new(Box::new(Ewma::default()), prior(25.0, 8.0));
        d.observe(meta(FrameType::P, 500), mc(10.0));
        assert_eq!(fp_of(&d), None);
    }
}
