//! Deadline-driven minimal-frequency selection.
//!
//! The core scheduling rule of EAVS: given the pending decode work items
//! and their display deadlines, compute the *required clock rate* — the
//! maximum over work-item prefixes of `cumulative cycles / time to that
//! item's deadline` — and pick the slowest OPP that meets it with a safety
//! margin. Down-switch hysteresis keeps transition counts (and their
//! latency/energy cost) bounded when demand hovers between two OPPs.

use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::freq::Cycles;
use eavs_cpu::opp::{OppIndex, OppTable};
use eavs_cpu::power::PowerModel;
use eavs_sim::time::SimTime;

/// One pending work item: cycles that must retire by a deadline.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DemandItem {
    /// Predicted cycles of this item.
    pub cycles: Cycles,
    /// Display deadline of this item.
    pub deadline: SimTime,
}

/// The required clock rate in Hz to finish every prefix of `items`
/// (ordered by deadline) on time, starting at `now`. Returns
/// `f64::INFINITY` if any non-empty prefix is already due or overdue.
///
/// Items must be sorted by deadline; in a decode pipeline they naturally
/// are (frames display in order).
pub fn required_hz(now: SimTime, items: &[DemandItem]) -> f64 {
    let mut cum = 0.0;
    let mut worst: f64 = 0.0;
    for item in items {
        cum += item.cycles.get();
        if cum <= 0.0 {
            continue;
        }
        match item.deadline.checked_duration_since(now) {
            None => return f64::INFINITY,
            Some(slack) if slack.is_zero() => return f64::INFINITY,
            Some(slack) => {
                worst = worst.max(cum / slack.as_secs_f64());
            }
        }
    }
    worst
}

/// The *critical speed* of an OPP table under a power model: the index
/// minimizing marginal energy per cycle, `(P_active(opp) − P_idle)/f`,
/// where `P_idle` is the power the core would draw sleeping instead
/// (deep-idle power for video-scale gaps).
///
/// Below this speed, running *slower* costs **more** energy for the same
/// work (leakage/static power is paid for longer) — so a deadline-driven
/// governor should never select an OPP below it while work is pending;
/// racing to the critical speed and sleeping deeply dominates. This is
/// the energy floor the EAVS governor clamps to (ablated in F13).
pub fn critical_speed_index(
    table: &OppTable,
    power: &dyn PowerModel,
    deep_idle_w: f64,
) -> OppIndex {
    let mut best = 0;
    let mut best_e = f64::INFINITY;
    for (i, opp) in table.iter().enumerate() {
        let marginal = (power.active_power(*opp) - deep_idle_w).max(0.0);
        let e_per_cycle = marginal / opp.freq.hz() as f64;
        if e_per_cycle < best_e {
            best_e = e_per_cycle;
            best = i;
        }
    }
    best
}

/// Margin-and-hysteresis OPP selection.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct OppSelector {
    /// Fractional headroom applied to the required rate (0.15 = 15 %).
    margin: f64,
    /// Consecutive decisions a *lower* target must persist before the
    /// selector actually steps down. Up-switches are immediate.
    down_hysteresis: u32,
    /// Pending lower target and how many times it has been confirmed.
    down_pending: Option<(OppIndex, u32)>,
}

impl OppSelector {
    /// Creates a selector.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is negative or not finite.
    pub fn new(margin: f64, down_hysteresis: u32) -> Self {
        assert!(margin.is_finite() && margin >= 0.0, "bad margin {margin}");
        OppSelector {
            margin,
            down_hysteresis,
            down_pending: None,
        }
    }

    /// The configured margin.
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Selects the OPP for a required rate, relative to the current index.
    pub fn select(
        &mut self,
        table: &OppTable,
        limits: PolicyLimits,
        cur: OppIndex,
        required: f64,
    ) -> OppIndex {
        let raw = if required.is_infinite() {
            limits.max_index
        } else {
            let padded_khz = required * (1.0 + self.margin) / 1000.0;
            let mut idx = limits.max_index;
            for i in limits.min_index..=limits.max_index {
                if table.freq(i).khz() as f64 >= padded_khz {
                    idx = i;
                    break;
                }
            }
            idx
        };
        let raw = limits.clamp(raw);
        if raw >= cur {
            // Up (or hold): immediate, clear any pending down-switch.
            self.down_pending = None;
            return raw;
        }
        // Down: require persistence.
        match self.down_pending {
            Some((idx, count)) if idx >= raw => {
                // The pending (or a higher) target keeps being justified.
                let count = count + 1;
                if count >= self.down_hysteresis {
                    self.down_pending = None;
                    idx.max(raw)
                } else {
                    self.down_pending = Some((idx.max(raw), count));
                    cur
                }
            }
            _ => {
                if self.down_hysteresis <= 1 {
                    self.down_pending = None;
                    raw
                } else {
                    self.down_pending = Some((raw, 1));
                    cur
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> OppTable {
        OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap()
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn item(mcycles: f64, deadline_ms: u64) -> DemandItem {
        DemandItem {
            cycles: Cycles::from_mega(mcycles),
            deadline: t(deadline_ms),
        }
    }

    #[test]
    fn required_rate_single_item() {
        // 10 Mcycles due in 10 ms -> 1 GHz.
        let hz = required_hz(t(0), &[item(10.0, 10)]);
        assert!((hz - 1e9).abs() < 1.0);
    }

    #[test]
    fn required_rate_is_prefix_max() {
        // First item easy (1 Mcycle / 100 ms), second tight:
        // cum 21 Mcycles by 120 ms -> 175 MHz; but a third item with huge
        // cycles and a tight deadline dominates.
        let items = [item(1.0, 100), item(20.0, 120), item(50.0, 125)];
        let hz = required_hz(t(0), &items);
        let expect = (71e6) / 0.125;
        assert!((hz - expect).abs() / expect < 1e-9, "hz={hz}");
    }

    #[test]
    fn overdue_items_demand_infinity() {
        assert_eq!(required_hz(t(10), &[item(1.0, 10)]), f64::INFINITY);
        assert_eq!(required_hz(t(20), &[item(1.0, 10)]), f64::INFINITY);
    }

    #[test]
    fn empty_demand_is_zero() {
        assert_eq!(required_hz(t(0), &[]), 0.0);
    }

    #[test]
    fn zero_cycles_items_are_free() {
        let items = [DemandItem {
            cycles: Cycles::ZERO,
            deadline: t(0), // overdue but empty
        }];
        assert_eq!(required_hz(t(5), &items), 0.0);
    }

    #[test]
    fn selector_picks_minimal_opp_with_margin() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut sel = OppSelector::new(0.15, 1);
        // 800 MHz required × 1.15 = 920 MHz -> 1000 MHz OPP.
        assert_eq!(sel.select(&tbl, limits, 0, 800e6), 1);
        // 900 MHz × 1.15 = 1035 -> 1500 OPP.
        assert_eq!(sel.select(&tbl, limits, 0, 900e6), 2);
        // Demand beyond the table -> max.
        assert_eq!(sel.select(&tbl, limits, 0, 5e9), 3);
        assert_eq!(sel.select(&tbl, limits, 0, f64::INFINITY), 3);
    }

    #[test]
    fn up_switch_is_immediate_down_needs_persistence() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut sel = OppSelector::new(0.0, 3);
        // From 500 MHz, demand jumps -> up immediately.
        assert_eq!(sel.select(&tbl, limits, 0, 1.9e9), 3);
        // Demand drops: held for 2 decisions, drops on the 3rd.
        assert_eq!(sel.select(&tbl, limits, 3, 400e6), 3);
        assert_eq!(sel.select(&tbl, limits, 3, 400e6), 3);
        assert_eq!(sel.select(&tbl, limits, 3, 400e6), 0);
    }

    #[test]
    fn up_blip_resets_down_hysteresis() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut sel = OppSelector::new(0.0, 2);
        assert_eq!(sel.select(&tbl, limits, 3, 400e6), 3);
        // A demand spike cancels the pending down-switch.
        assert_eq!(sel.select(&tbl, limits, 3, 1.9e9), 3);
        assert_eq!(sel.select(&tbl, limits, 3, 400e6), 3, "counter restarted");
        assert_eq!(sel.select(&tbl, limits, 3, 400e6), 0);
    }

    #[test]
    fn selector_respects_limits() {
        let tbl = table();
        let limits = PolicyLimits {
            min_index: 1,
            max_index: 2,
        };
        let mut sel = OppSelector::new(0.1, 1);
        assert_eq!(sel.select(&tbl, limits, 1, 0.0), 1);
        assert_eq!(sel.select(&tbl, limits, 1, 9e9), 2);
    }

    #[test]
    fn critical_speed_is_interior_with_deep_idle() {
        use eavs_cpu::power::CmosPowerModel;
        use eavs_cpu::soc::SocModel;
        // With deep idle nearly free, the U-shape has an interior minimum
        // on the flagship table (see F1): not the lowest OPP.
        let soc = SocModel::Flagship2016;
        let tbl = soc.opp_table();
        let power = soc.power_model();
        let deep = soc.cstates().iter().last().expect("states").power_w;
        let idx = critical_speed_index(&tbl, &power, deep);
        assert!(idx > 0, "critical speed should be above the floor OPP");
        assert!(idx < tbl.max_index(), "and below the top OPP");
        // With idle as expensive as WFI leakage, pacing low wins: the
        // critical speed collapses toward the floor.
        let shallow = critical_speed_index(&tbl, &power, 0.25);
        assert!(shallow <= idx);
        // A leakage-free model has monotone energy/cycle: floor optimal.
        let ideal = CmosPowerModel::new(1e-9, 0.0, 0.0);
        assert_eq!(critical_speed_index(&tbl, &ideal, 0.0), 0);
    }

    #[test]
    fn larger_margin_selects_no_slower() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        for required in [100e6, 430e6, 870e6, 1.3e9, 1.7e9] {
            let mut tight = OppSelector::new(0.0, 1);
            let mut safe = OppSelector::new(0.3, 1);
            assert!(
                safe.select(&tbl, limits, 0, required) >= tight.select(&tbl, limits, 0, required)
            );
        }
    }
}
