//! Property-based tests for the metrics crate.

use eavs_metrics::{
    mean_confidence_interval, EnergyAccount, Histogram, OnlineStats, Quantiles, ResidencyTracker,
    StepSeries,
};
use eavs_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Welford matches the naive two-pass mean for arbitrary data.
    #[test]
    fn online_mean_matches_naive(data in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s: OnlineStats = data.iter().copied().collect();
        let naive = data.iter().sum::<f64>() / data.len() as f64;
        prop_assert!((s.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        prop_assert!(s.min() <= s.mean() + 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    /// Merging shards is equivalent to a single pass.
    #[test]
    fn merge_equivalence(
        a in proptest::collection::vec(-1e3f64..1e3, 1..100),
        b in proptest::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let whole: OnlineStats = a.iter().chain(b.iter()).copied().collect();
        let mut left: OnlineStats = a.iter().copied().collect();
        let right: OnlineStats = b.iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-7);
        prop_assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-5);
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone(data in proptest::collection::vec(-1e4f64..1e4, 1..200)) {
        let mut q: Quantiles = data.iter().copied().collect();
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = min;
        for i in 0..=10 {
            let v = q.quantile(i as f64 / 10.0);
            prop_assert!(v >= prev - 1e-9);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
            prev = v;
        }
    }

    /// Histogram total always equals the number of recorded samples.
    #[test]
    fn histogram_conserves_count(data in proptest::collection::vec(-10.0f64..20.0, 0..300)) {
        let mut h = Histogram::new(0.0, 10.0, 7);
        for &x in &data {
            h.record(x);
        }
        prop_assert_eq!(h.total(), data.len() as u64);
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), data.len() as u64);
    }

    /// Residency times always sum to the elapsed interval.
    #[test]
    fn residency_conservation(switches in proptest::collection::vec((0usize..4, 1u64..1000), 0..50)) {
        let mut now = SimTime::ZERO;
        let mut r = ResidencyTracker::new(4, 0, now);
        for (state, dt) in switches {
            now += SimDuration::from_millis(dt);
            r.switch_to(state, now);
        }
        let end = now + SimDuration::from_millis(17);
        let total: SimDuration = r.snapshot(end).into_iter().sum();
        prop_assert_eq!(total, end - SimTime::ZERO);
    }

    /// Energy accounts never decrease and total equals the sum of parts.
    #[test]
    fn energy_total_is_sum(parts in proptest::collection::vec((0usize..3, 0.0f64..100.0), 0..60)) {
        let names = ["cpu", "radio", "display"];
        let mut acc = EnergyAccount::new();
        let mut expect = [0.0f64; 3];
        for (i, j) in parts {
            acc.add_joules(names[i], j);
            expect[i] += j;
        }
        for (i, name) in names.iter().enumerate() {
            prop_assert!((acc.joules(name) - expect[i]).abs() < 1e-9);
        }
        prop_assert!((acc.total() - expect.iter().sum::<f64>()).abs() < 1e-9);
    }

    /// Step-series integral over adjacent windows is additive.
    #[test]
    fn stepseries_integral_additive(
        values in proptest::collection::vec(0.0f64..100.0, 1..30),
        split in 1u64..100,
    ) {
        let mut s = StepSeries::new();
        for (i, &v) in values.iter().enumerate() {
            s.set(SimTime::from_secs(i as u64), v);
        }
        let end = SimTime::from_secs(200);
        let mid = SimTime::from_secs(split.min(199));
        let whole = s.integral(SimTime::ZERO, end).unwrap();
        let a = s.integral(SimTime::ZERO, mid).unwrap_or(0.0);
        let b = s.integral(mid, end).unwrap_or(0.0);
        prop_assert!((whole - (a + b)).abs() < 1e-6 * (1.0 + whole.abs()));
    }

    /// CI half-width shrinks (weakly) as identical batches accumulate.
    #[test]
    fn ci_contains_mean_of_constant_data(x in -100.0f64..100.0, n in 2u64..50) {
        let s: OnlineStats = (0..n).map(|_| x).collect();
        let ci = mean_confidence_interval(&s, 0.95);
        prop_assert!(ci.contains(x));
        prop_assert_eq!(ci.half_width, 0.0);
    }
}
