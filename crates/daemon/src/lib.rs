//! `eavs-daemon`: resident fleet-campaign service (`eavsd`).
//!
//! The fleet layer (`eavs-fleet`) runs a campaign as one foreground
//! process: shard, fold, checkpoint, exit. This crate keeps that exact
//! engine resident behind a small HTTP/JSON control plane so campaigns
//! can be submitted, watched, cancelled and scaled out without
//! restarting the process:
//!
//! * [`http`] — a hand-rolled, bounded HTTP/1.1 server on
//!   `std::net::TcpListener` (the workspace is offline; no tokio, no
//!   hyper). Oversized bodies are refused from the `Content-Length`
//!   header alone.
//! * [`json`] — a minimal JSON codec that keeps raw number lexemes so
//!   `u64` seeds and shortest-round-trip `f64`s survive a round trip
//!   bit-exactly; spec fingerprints are stable across the wire.
//! * [`codec`] — `CampaignSpec` ⇄ JSON, strict about unknown fields.
//! * [`registry`] — the coordinator: campaign table, shard leases,
//!   in-order fold, periodic `eavs-fleet-checkpoint/v1` persistence and
//!   crash recovery from the state directory.
//! * [`worker`] — shard execution, as in-process threads or as a
//!   remote `eavsd --worker` loop speaking the same claim protocol.
//! * [`routes`] — URL dispatch tying the above together.
//!
//! Determinism contract: a shard partial is a pure function of
//! `(spec, shard)` and the coordinator folds partials strictly in
//! shard order, so the result served by `GET /campaigns/{id}/result`
//! is byte-identical to a single-process `run_campaign` — at any
//! worker count, across kill/restart, and under duplicate deliveries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod http;
pub mod json;
pub mod registry;
pub mod routes;
pub mod worker;

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use http::Server;
use registry::{Registry, RegistryConfig};
use worker::SharedRunner;

/// Everything needed to start a daemon.
pub struct DaemonOptions {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// HTTP serving threads.
    pub http_threads: usize,
    /// Directory for campaign specs and checkpoints.
    pub state_dir: PathBuf,
    /// Checkpoint cadence in shards.
    pub checkpoint_every: u64,
    /// In-process shard workers (0 = coordinator only; shards are then
    /// executed solely by remote `eavsd --worker` processes).
    pub workers: usize,
    /// Shard lease duration before an unfinished claim is handed out
    /// again.
    pub lease: Duration,
    /// Fleet-prior file override (`None` = `<state_dir>/fleet.prior`).
    pub prior_path: Option<PathBuf>,
}

impl DaemonOptions {
    /// Defaults matching `eavsd` flag defaults: loopback on an
    /// ephemeral port, 4 HTTP threads, one local worker, checkpoint
    /// every 8 shards, 60 s leases.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            http_threads: 4,
            state_dir: state_dir.into(),
            checkpoint_every: 8,
            workers: 1,
            lease: Duration::from_secs(60),
            prior_path: None,
        }
    }
}

/// A running daemon: HTTP server + registry + local workers.
pub struct Daemon {
    registry: Arc<Registry>,
    server: Server,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds, recovers persisted campaigns, and spawns local workers.
    pub fn start(opts: DaemonOptions, runner: SharedRunner) -> Result<Self, String> {
        let registry = Arc::new(Registry::open(RegistryConfig {
            state_dir: opts.state_dir,
            checkpoint_every: opts.checkpoint_every,
            lease: opts.lease,
            prior_path: opts.prior_path,
        })?);
        let stop = Arc::new(AtomicBool::new(false));
        let handler_registry = Arc::clone(&registry);
        let handler_stop = Arc::clone(&stop);
        let server = Server::bind(
            &opts.addr,
            opts.http_threads,
            Arc::new(move |req| routes::handle(&handler_registry, &handler_stop, req)),
        )?;
        let workers = worker::spawn_local_workers(
            Arc::clone(&registry),
            runner,
            opts.workers,
            Arc::clone(&stop),
        );
        Ok(Self {
            registry,
            server,
            stop,
            workers,
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> String {
        self.server.addr().to_string()
    }

    /// The coordinator, for in-process inspection (tests, eavsd main).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// True once `POST /shutdown` was received (or [`Daemon::shutdown`]
    /// began).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// True while any resident campaign still has shards to fold.
    pub fn has_open_work(&self) -> bool {
        self.registry.has_open_work()
    }

    /// Stops local workers at their next shard boundary, then the HTTP
    /// server. Campaign state stays on disk; a restarted daemon resumes
    /// from the last checkpoint.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        for handle in self.workers {
            let _ = handle.join();
        }
        self.server.shutdown();
    }
}
