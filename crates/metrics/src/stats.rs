//! Streaming summary statistics (Welford's algorithm).

use std::fmt;

/// Online mean/variance/min/max accumulator.
///
/// Uses Welford's numerically stable update; accumulators can be merged
/// (parallel sweeps combine per-shard statistics).
///
/// ```
/// use eavs_metrics::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (statistics over NaN are meaningless and would
    /// silently poison every downstream table).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan et al. parallel form).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n; 0 when fewer than 1 observation).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by n−1; 0 when fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Snapshot of the summary values.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.sample_std_dev(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// A fixed-point sum whose merge is *bit-exact* associative and
/// commutative.
///
/// Observations are quantized to nanounits (1e-9) and accumulated in an
/// `i128`, so folding per-shard partial sums produces the identical total
/// no matter how the observations were partitioned or in which order the
/// partials merge — unlike floating-point addition, whose rounding depends
/// on evaluation order. This is what lets sharded campaigns promise
/// byte-identical output across `EAVS_JOBS` settings and kill/resume.
///
/// The representable range (±1.7e29 units) and the 1e-9 quantization are
/// both far beyond what session metrics (joules, seconds, counts) need.
///
/// ```
/// use eavs_metrics::stats::ExactSum;
///
/// let mut a = ExactSum::new();
/// a.add(1.5);
/// let mut b = ExactSum::new();
/// b.add(2.25);
/// a.merge(&b);
/// assert_eq!(a.value(), 3.75);
/// assert_eq!(a.count(), 2);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactSum {
    nanos: i128,
    count: u64,
}

impl ExactSum {
    /// Nanounits per unit: the fixed-point scale.
    const SCALE: f64 = 1e9;

    /// Creates an empty (zero) sum.
    pub fn new() -> Self {
        ExactSum { nanos: 0, count: 0 }
    }

    /// Adds one observation, quantized to the nearest nanounit.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinite observations.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite observation {x}");
        self.nanos += (x * Self::SCALE).round() as i128;
        self.count += 1;
    }

    /// Merges another partial sum into this one (integer addition, so the
    /// result is independent of merge order and grouping).
    pub fn merge(&mut self, other: &ExactSum) {
        self.nanos += other.nanos;
        self.count += other.count;
    }

    /// The accumulated sum in units.
    pub fn value(&self) -> f64 {
        self.nanos as f64 / Self::SCALE
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.value() / self.count as f64
        }
    }

    /// The raw fixed-point accumulator, for serialization.
    pub fn raw(&self) -> (i128, u64) {
        (self.nanos, self.count)
    }

    /// Rebuilds a sum from [`raw`](Self::raw) parts.
    pub fn from_raw(nanos: i128, count: u64) -> Self {
        ExactSum { nanos, count }
    }
}

/// A plain-data snapshot of an [`OnlineStats`] accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.summary().min, 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0)
            .collect();
        let s: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.sample_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let all: OnlineStats = data.iter().copied().collect();
        let a: OnlineStats = data[..200].iter().copied().collect();
        let mut b: OnlineStats = data[200..].iter().copied().collect();
        b.merge(&a);
        assert_eq!(b.count(), all.count());
        assert!((b.mean() - all.mean()).abs() < 1e-9);
        assert!((b.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(b.min(), all.min());
        assert_eq!(b.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        OnlineStats::new().push(f64::NAN);
    }

    #[test]
    fn sum_is_mean_times_count() {
        let s: OnlineStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert!((s.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn exact_sum_is_order_independent() {
        let data: Vec<f64> = (0..300)
            .map(|i| ((i as f64) * 0.7134).sin() * 42.0)
            .collect();
        let mut whole = ExactSum::new();
        for &x in &data {
            whole.add(x);
        }
        let mut parts: Vec<ExactSum> = (0..7).map(|_| ExactSum::new()).collect();
        for (i, &x) in data.iter().enumerate() {
            parts[i % 7].add(x);
        }
        // Fold forwards and backwards: bit-identical either way.
        let mut fwd = ExactSum::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = ExactSum::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, whole);
        assert_eq!(rev, whole);
        assert_eq!(fwd.count(), 300);
    }

    #[test]
    fn exact_sum_roundtrips_raw() {
        let mut s = ExactSum::new();
        s.add(-1.25);
        s.add(3.5);
        let (nanos, count) = s.raw();
        assert_eq!(ExactSum::from_raw(nanos, count), s);
        assert_eq!(s.value(), 2.25);
        assert_eq!(s.mean(), 1.125);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn exact_sum_rejects_infinity() {
        ExactSum::new().add(f64::INFINITY);
    }

    #[test]
    fn display_summary() {
        let s: OnlineStats = [1.0, 3.0].into_iter().collect();
        let text = s.summary().to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=2.0000"));
    }
}
