//! Live progress snapshots of a running campaign.
//!
//! A snapshot is a cheap, pure projection of the merged
//! [`FleetAggregate`] — a handful of per-lane means and counters rather
//! than the full histogram state — taken at shard boundaries so a
//! control plane (the `eavsd` daemon's `GET /campaigns/{id}`) can report
//! where a campaign stands without touching the hot path. Because it is
//! derived from the same bit-exact aggregate the checkpoint serializes,
//! a snapshot is deterministic for a given `(spec, shards_done)` however
//! the campaign is parallelized or resumed.

use crate::aggregate::{FleetAggregate, GovAggregate};
use crate::spec::CampaignSpec;

/// Per-governor summary statistics at a point in the campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct GovSnapshot {
    /// Governor name (the spec's label).
    pub governor: String,
    /// Sessions folded into the lane so far.
    pub sessions: u64,
    /// Mean per-session CPU energy, joules (0 when empty).
    pub mean_cpu_j: f64,
    /// Mean whole-device energy (CPU + radio + display + decoder),
    /// joules (0 when empty).
    pub mean_device_j: f64,
    /// Mean composite QoE score (0 when empty).
    pub mean_qoe: f64,
    /// Rebuffer events across the lane population.
    pub rebuffer_events: u64,
    /// Population deadline-miss rate.
    pub miss_rate: f64,
}

impl GovSnapshot {
    fn capture(g: &GovAggregate) -> Self {
        let mean = |sum: f64| {
            if g.sessions == 0 {
                0.0
            } else {
                sum / g.sessions as f64
            }
        };
        let device_j = g.cpu_j_sum.value()
            + g.device_radio_j_sum.value()
            + g.device_display_j_sum.value()
            + g.device_decoder_j_sum.value();
        GovSnapshot {
            governor: g.name.clone(),
            sessions: g.sessions,
            mean_cpu_j: mean(g.cpu_j_sum.value()),
            mean_device_j: mean(device_j),
            mean_qoe: mean(g.qoe_sum.value()),
            rebuffer_events: g.rebuffer_events,
            miss_rate: g.miss_rate(),
        }
    }
}

/// Where a campaign stands: shard/session cursors plus one
/// [`GovSnapshot`] per lane, in spec order.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgressSnapshot {
    /// Fingerprint of the spec (matches [`FleetAggregate::campaign`]).
    pub campaign: u128,
    /// Shards fully folded in.
    pub shards_done: u64,
    /// Shards in the campaign plan.
    pub shards_total: u64,
    /// Sessions folded in (counted once, not per lane).
    pub sessions_done: u64,
    /// Sessions in the campaign plan.
    pub sessions_total: u64,
    /// Per-governor lane summaries.
    pub govs: Vec<GovSnapshot>,
}

impl ProgressSnapshot {
    /// Projects the aggregate's current state. O(governors), no
    /// histogram walks.
    pub fn capture(spec: &CampaignSpec, agg: &FleetAggregate) -> Self {
        ProgressSnapshot {
            campaign: agg.campaign,
            shards_done: agg.shards_done,
            shards_total: spec.num_shards(),
            sessions_done: agg.sessions_done,
            sessions_total: spec.sessions,
            govs: agg.govs.iter().map(GovSnapshot::capture).collect(),
        }
    }

    /// Completed fraction in [0, 1] by shards.
    pub fn fraction_done(&self) -> f64 {
        if self.shards_total == 0 {
            1.0
        } else {
            self.shards_done as f64 / self.shards_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, serial_runner, RunOptions};

    #[test]
    fn snapshot_tracks_the_aggregate() {
        let mut spec = CampaignSpec::smoke();
        spec.sessions = 4;
        spec.shard_size = 2;
        let empty = ProgressSnapshot::capture(&spec, &FleetAggregate::new(&spec));
        assert_eq!(empty.shards_done, 0);
        assert_eq!(empty.shards_total, 2);
        assert_eq!(empty.sessions_total, 4);
        assert_eq!(empty.fraction_done(), 0.0);
        for g in &empty.govs {
            assert_eq!(g.sessions, 0);
            assert_eq!(g.mean_cpu_j, 0.0);
        }

        let out = run_campaign(&spec, &RunOptions::default(), &serial_runner).unwrap();
        let done = ProgressSnapshot::capture(&spec, &out.aggregate);
        assert_eq!(done.shards_done, 2);
        assert_eq!(done.sessions_done, 4);
        assert_eq!(done.fraction_done(), 1.0);
        assert_eq!(done.govs.len(), spec.governors.len());
        for (g, name) in done.govs.iter().zip(&spec.governors) {
            assert_eq!(&g.governor, name);
            assert_eq!(g.sessions, 4);
            assert!(g.mean_cpu_j > 0.0);
            assert!(g.mean_device_j >= g.mean_cpu_j);
        }
        // Pure projection: capturing twice is identical.
        assert_eq!(done, ProgressSnapshot::capture(&spec, &out.aggregate));
    }
}
