//! F30/F31: fleet workload priors.
//!
//! F30 compares cold-start prediction and session outcomes against the
//! same predictor seeded from a fleet-trained [`PriorStore`]: the prior
//! must strictly improve early-window accuracy at equal-or-better
//! energy/QoE. F31 stresses the hand-off policy with stale priors
//! (different training population, wrong encode, wrong content): a bad
//! prior may cost accuracy in the early window, but local evidence must
//! bound the damage.
//!
//! Training goes through the real fleet path (`run_campaign` →
//! per-session `frame_cycles` → `FleetAggregate::observe_prior`), so
//! these figures also regression-test the end-to-end pipeline.

use std::sync::Arc;

use crate::harness::{eavs_default, manifest_1080p30, run_parallel_labeled, SEED};
use eavs_core::predictor::{predictor_by_name, FleetPrior, FrameMeta, SessionPrior};
use eavs_core::report::SessionReport;
use eavs_core::session::StreamingSession;
use eavs_fleet::{CampaignSpec, PriorStore, RunOptions};
use eavs_metrics::table::Table;
use eavs_trace::content::ContentProfile;
use eavs_trace::video_gen::VideoGenerator;

/// Prior key of the headline encode: [`manifest_1080p30`] and the smoke
/// campaign's lead title are the same encode, so clips trained in the
/// fleet transfer to the 120 s figure stream.
pub const HEADLINE_KEY: &str = "6000kbps-1920x1080@30";

/// The other smoke-campaign encode — F31's "wrong title" prior.
pub const OFF_TITLE_KEY: &str = "3000kbps-1280x720@30";

/// Frames scored as the "early window": roughly the pre-hand-off span
/// (30 observations per frame type, see
/// [`eavs_core::predictor::PRIOR_HANDOFF_OBS`]) where the prior is the
/// dominant evidence.
pub const EARLY_FRAMES: u64 = 90;

/// Trains a fleet prior on a small clip campaign (the smoke population,
/// EAVS lane only) keyed on `seed`. Different seeds draw different
/// workload-seed populations — F31's "stale training run".
pub fn trained_store(seed: u64) -> PriorStore {
    let mut spec = CampaignSpec::smoke();
    spec.name = format!("prior-train-{seed}");
    spec.seed = seed;
    spec.sessions = 48;
    spec.shard_size = 12;
    spec.governors = vec!["eavs".to_owned()];
    let outcome = crate::fleet::run_campaign(&spec, &RunOptions::default())
        .expect("prior training campaign is valid");
    outcome.aggregate.prior
}

/// Accuracy of one prior over an online F4-style replay.
pub struct PriorReplay {
    /// MAPE over the first [`EARLY_FRAMES`] frames — where the prior acts.
    pub early_mape: f64,
    /// MAPE over the whole 120 s stream.
    pub mape: f64,
    /// Fraction of frames whose cost was underestimated.
    pub underestimate_rate: f64,
}

/// Replays 120 s of the headline stream with a hybrid predictor seeded
/// from `prior`, predicting each frame before observing it. An empty
/// prior is the cold baseline: [`FleetPrior`] then delegates every call
/// to the inner predictor.
pub fn replay(prior: SessionPrior, content: ContentProfile) -> PriorReplay {
    let generator = VideoGenerator::new(Arc::new(manifest_1080p30(120)), content, SEED);
    let inner = predictor_by_name("hybrid").expect("known predictor");
    let mut predictor = FleetPrior::new(inner, prior);
    let mut early_sum = 0.0;
    let mut ape_sum = 0.0;
    let mut under = 0u64;
    let mut n = 0u64;
    for segment in generator.all_segments(0) {
        for frame in segment.frames() {
            let meta = FrameMeta::from(frame);
            let predicted = eavs_core::predictor::WorkloadPredictor::predict(&predictor, meta);
            let actual = frame.decode_cycles.get();
            let e = ((predicted.get() - actual) / actual).abs();
            if n < EARLY_FRAMES {
                early_sum += e;
            }
            ape_sum += e;
            if predicted.get() < actual {
                under += 1;
            }
            n += 1;
            eavs_core::predictor::WorkloadPredictor::observe(
                &mut predictor,
                meta,
                frame.decode_cycles,
            );
        }
    }
    PriorReplay {
        early_mape: early_sum / EARLY_FRAMES.min(n) as f64,
        mape: ape_sum / n as f64,
        underestimate_rate: under as f64 / n as f64,
    }
}

/// Runs one 60 s headline session under default EAVS with `prior`
/// attached. The empty prior is the byte-exact cold baseline (tag-0
/// no-op), so cold rows share cache entries with every other figure.
pub fn session(prior: SessionPrior, content: ContentProfile) -> Arc<SessionReport> {
    crate::cache::run_session(
        StreamingSession::builder(eavs_default())
            .manifest(manifest_1080p30(60))
            .content(content)
            .seed(SEED)
            .prior(prior),
    )
}

/// F30: cold-start vs fleet-warmed prediction accuracy and session
/// outcomes, per content profile.
pub fn f30_prior_coldstart() -> Table {
    let mut t = Table::new(&[
        "content",
        "early MAPE cold %",
        "early MAPE warm %",
        "MAPE cold %",
        "MAPE warm %",
        "CPU J cold",
        "CPU J warm",
        "QoE cold",
        "QoE warm",
    ]);
    t.set_title(
        "F30: cold-start vs fleet-warmed hybrid predictor (48-session clip campaign \
         prior, 120 s @1080p30 replay + 60 s session)",
    );
    let store = Arc::new(trained_store(SEED));
    let jobs = ContentProfile::ALL
        .into_iter()
        .map(|content| {
            let store = Arc::clone(&store);
            let job = move || {
                let warm = store.session_prior(HEADLINE_KEY, content.name());
                let cold_replay = replay(SessionPrior::default(), content);
                let warm_replay = replay(warm, content);
                let cold_run = session(SessionPrior::default(), content);
                let warm_run = session(warm, content);
                (content, cold_replay, warm_replay, cold_run, warm_run)
            };
            (format!("f30 {}", content.name()), job)
        })
        .collect();
    for (content, cold, warm, cold_run, warm_run) in run_parallel_labeled(jobs) {
        t.row(&[
            content.name(),
            &format!("{:.2}", cold.early_mape * 100.0),
            &format!("{:.2}", warm.early_mape * 100.0),
            &format!("{:.2}", cold.mape * 100.0),
            &format!("{:.2}", warm.mape * 100.0),
            &format!("{:.3}", cold_run.cpu_joules()),
            &format!("{:.3}", warm_run.cpu_joules()),
            &format!("{:.2}", cold_run.qoe.score()),
            &format!("{:.2}", warm_run.qoe.score()),
        ]);
    }
    t
}

/// F31's prior variants, in presentation order.
fn staleness_variants(fresh: &PriorStore, stale: &PriorStore) -> Vec<(&'static str, SessionPrior)> {
    let content = ContentProfile::Film;
    vec![
        ("cold", SessionPrior::default()),
        ("fresh", fresh.session_prior(HEADLINE_KEY, content.name())),
        (
            "stale-population",
            stale.session_prior(HEADLINE_KEY, content.name()),
        ),
        (
            "wrong-title",
            fresh.session_prior(OFF_TITLE_KEY, content.name()),
        ),
        (
            "wrong-content",
            fresh.session_prior(HEADLINE_KEY, ContentProfile::Sport.name()),
        ),
        ("unknown-key", fresh.session_prior("unseen-encode", "film")),
    ]
}

/// F31: prior-staleness sensitivity on the Film headline stream. The
/// `unknown-key` row projects an empty prior and must match `cold`
/// exactly — the graceful-degradation floor.
pub fn f31_prior_staleness() -> Table {
    let mut t = Table::new(&[
        "prior",
        "early MAPE %",
        "MAPE %",
        "underest %",
        "CPU J",
        "QoE",
    ]);
    t.set_title(
        "F31: prior staleness on 120 s film @1080p30 — hand-off bounds the damage of a \
         wrong prior to the early window",
    );
    let fresh = trained_store(SEED);
    let stale = trained_store(SEED + 4200);
    let jobs = staleness_variants(&fresh, &stale)
        .into_iter()
        .map(|(label, prior)| {
            let job = move || {
                let r = replay(prior, ContentProfile::Film);
                let run = session(prior, ContentProfile::Film);
                (label, r, run)
            };
            (format!("f31 {label}"), job)
        })
        .collect();
    for (label, r, run) in run_parallel_labeled(jobs) {
        t.row(&[
            label,
            &format!("{:.2}", r.early_mape * 100.0),
            &format!("{:.2}", r.mape * 100.0),
            &format!("{:.1}", r.underestimate_rate * 100.0),
            &format!("{:.3}", run.cpu_joules()),
            &format!("{:.2}", run.qoe.score()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmed_prior_beats_cold_start_in_the_early_window() {
        // The acceptance bar: strictly better early accuracy under a
        // fresh prior, for every content profile, at equal-or-better
        // energy and QoE.
        let store = trained_store(SEED);
        for content in ContentProfile::ALL {
            let warm_prior = store.session_prior(HEADLINE_KEY, content.name());
            assert!(!warm_prior.is_empty(), "{}: trained prior", content.name());
            let cold = replay(SessionPrior::default(), content);
            let warm = replay(warm_prior, content);
            assert!(
                warm.early_mape < cold.early_mape,
                "{}: warm early MAPE {:.4} must beat cold {:.4}",
                content.name(),
                warm.early_mape,
                cold.early_mape
            );
            let cold_run = session(SessionPrior::default(), content);
            let warm_run = session(warm_prior, content);
            assert!(
                warm_run.cpu_joules() <= cold_run.cpu_joules(),
                "{}: warm energy {:.3} J must not exceed cold {:.3} J",
                content.name(),
                warm_run.cpu_joules(),
                cold_run.cpu_joules()
            );
            assert!(
                warm_run.qoe.score() >= cold_run.qoe.score(),
                "{}: warm QoE must not regress",
                content.name()
            );
        }
    }

    #[test]
    fn unknown_key_projects_the_cold_baseline_exactly() {
        let store = trained_store(SEED);
        let unknown = store.session_prior("unseen-encode", "film");
        assert!(unknown.is_empty());
        let cold = session(SessionPrior::default(), ContentProfile::Film);
        let via_unknown = session(unknown, ContentProfile::Film);
        // Same fingerprint (tag-0), so the cache returns the same report.
        assert!(Arc::ptr_eq(&cold, &via_unknown));
    }

    #[test]
    fn training_is_deterministic() {
        let a = trained_store(SEED);
        let b = trained_store(SEED);
        assert_eq!(eavs_fleet::prior::encode(&a), eavs_fleet::prior::encode(&b));
        assert!(a.get(HEADLINE_KEY, "film").is_some());
        assert!(a.get(OFF_TITLE_KEY, "film").is_some());
    }
}
