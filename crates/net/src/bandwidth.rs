//! Piecewise-constant bandwidth traces.
//!
//! Network capacity over time, as in the trace-driven evaluation of
//! streaming systems. The trace is a step function of bits/second; the
//! downloader integrates it to get exact transfer-completion times (no
//! per-packet simulation is needed for DASH-scale transfers).

use eavs_sim::time::{SimDuration, SimTime};

/// A step function of available bandwidth (bits per second). The last
/// value holds forever; traces may also be replayed cyclically via
/// [`BandwidthTrace::rate_at_cyclic`].
#[derive(Clone, PartialEq, Debug)]
pub struct BandwidthTrace {
    points: Vec<(SimTime, f64)>,
}

impl BandwidthTrace {
    /// A constant-rate trace.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not positive and finite.
    pub fn constant(bps: f64) -> Self {
        BandwidthTrace::from_points(vec![(SimTime::ZERO, bps)])
    }

    /// Builds a trace from `(time, bps)` change points.
    ///
    /// # Panics
    ///
    /// Panics if empty, if the first point is not at time zero, if times
    /// are not strictly increasing, or if any rate is negative/NaN (zero
    /// is allowed: outages).
    pub fn from_points(points: Vec<(SimTime, f64)>) -> Self {
        assert!(!points.is_empty(), "empty bandwidth trace");
        assert_eq!(
            points[0].0,
            SimTime::ZERO,
            "bandwidth trace must start at time zero"
        );
        for (i, &(t, bps)) in points.iter().enumerate() {
            assert!(bps.is_finite() && bps >= 0.0, "bad rate {bps} at point {i}");
            if i > 0 {
                assert!(t > points[i - 1].0, "trace times must strictly increase");
            }
        }
        BandwidthTrace { points }
    }

    /// Builds a trace from `(seconds, Mbps)` pairs — the common trace-file
    /// shape.
    ///
    /// # Panics
    ///
    /// As [`BandwidthTrace::from_points`].
    pub fn from_mbps_steps(steps: &[(u64, f64)]) -> Self {
        BandwidthTrace::from_points(
            steps
                .iter()
                .map(|&(secs, mbps)| (SimTime::from_secs(secs), mbps * 1e6))
                .collect(),
        )
    }

    /// The rate in force at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        self.points[idx - 1].1
    }

    /// The rate at `t` with the trace replayed cyclically with period
    /// `cycle` (for traces shorter than the session).
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is zero.
    pub fn rate_at_cyclic(&self, t: SimTime, cycle: SimDuration) -> f64 {
        assert!(!cycle.is_zero(), "zero cycle");
        let wrapped = SimTime::from_nanos(t.as_nanos() % cycle.as_nanos());
        self.rate_at(wrapped)
    }

    /// Bytes transferable in `[from, to)`.
    pub fn bytes_between(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(from <= to, "inverted window");
        let mut acc = 0.0;
        let mut t = from;
        while t < to {
            let idx = self.points.partition_point(|&(pt, _)| pt <= t);
            let rate = self.points[idx - 1].1;
            let seg_end = self
                .points
                .get(idx)
                .map(|&(pt, _)| pt)
                .unwrap_or(SimTime::MAX)
                .min(to);
            acc += rate * (seg_end - t).as_secs_f64() / 8.0;
            t = seg_end;
        }
        acc
    }

    /// The instant at which a transfer of `bytes` starting at `from`
    /// completes, or `None` if the trace's tail rate is zero and the
    /// transfer can never finish.
    pub fn completion_time(&self, from: SimTime, bytes: f64) -> Option<SimTime> {
        assert!(bytes.is_finite() && bytes >= 0.0, "bad byte count {bytes}");
        if bytes == 0.0 {
            return Some(from);
        }
        let mut remaining = bytes;
        let mut t = from;
        loop {
            let idx = self.points.partition_point(|&(pt, _)| pt <= t);
            let rate = self.points[idx - 1].1;
            let seg_end = self.points.get(idx).map(|&(pt, _)| pt);
            match seg_end {
                Some(end) => {
                    let cap = rate * (end - t).as_secs_f64() / 8.0;
                    if cap >= remaining {
                        let dt = remaining * 8.0 / rate;
                        return Some(t + SimDuration::from_secs_f64(dt));
                    }
                    remaining -= cap;
                    t = end;
                }
                None => {
                    // Tail segment extends forever.
                    if rate <= 0.0 {
                        return None;
                    }
                    let dt = remaining * 8.0 / rate;
                    return Some(t + SimDuration::from_secs_f64(dt));
                }
            }
        }
    }

    /// The mean rate over `[from, to)` in bits/second.
    pub fn mean_rate(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(from < to, "empty window");
        self.bytes_between(from, to) * 8.0 / (to - from).as_secs_f64()
    }

    /// Hashes the trace contents (every change point) into `fp`, so two
    /// separately allocated but identical traces collide under session
    /// and trace memoization.
    pub fn fingerprint(&self, fp: &mut eavs_sim::fingerprint::Fingerprinter) {
        for &(t, bps) in &self.points {
            fp.write_u64(t.as_nanos());
            fp.write_f64(bps);
        }
    }

    /// The change points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> SimTime {
        SimTime::from_secs(n)
    }

    #[test]
    fn constant_trace_completion() {
        let tr = BandwidthTrace::constant(8e6); // 1 MB/s
        let done = tr.completion_time(s(2), 500_000.0).unwrap();
        assert_eq!(done, s(2) + SimDuration::from_millis(500));
        assert_eq!(tr.rate_at(s(100)), 8e6);
    }

    #[test]
    fn stepped_trace_integrates_across_steps() {
        // 8 Mbps for 10 s, then 0.8 Mbps.
        let tr = BandwidthTrace::from_mbps_steps(&[(0, 8.0), (10, 0.8)]);
        // Start at t=9: 1 s at 1 MB/s = 1 MB, then 0.1 MB/s.
        // 1.5 MB total: 1 MB in first second, 0.5 MB at 0.1 MB/s = 5 s.
        let done = tr.completion_time(s(9), 1_500_000.0).unwrap();
        assert_eq!(done, s(15));
    }

    #[test]
    fn zero_tail_never_completes() {
        let tr = BandwidthTrace::from_mbps_steps(&[(0, 1.0), (5, 0.0)]);
        assert_eq!(tr.completion_time(s(6), 1000.0), None);
        // But a transfer fitting before the outage completes.
        assert!(tr.completion_time(s(0), 100_000.0).is_some());
    }

    #[test]
    fn zero_bytes_completes_immediately() {
        let tr = BandwidthTrace::constant(1e6);
        assert_eq!(tr.completion_time(s(3), 0.0), Some(s(3)));
    }

    #[test]
    fn bytes_between_matches_completion() {
        let tr = BandwidthTrace::from_mbps_steps(&[(0, 4.0), (3, 12.0), (7, 2.0)]);
        let bytes = tr.bytes_between(s(1), s(9));
        let done = tr.completion_time(s(1), bytes).unwrap();
        assert!(
            done.checked_duration_since(s(9))
                .is_none_or(|d| d < SimDuration::from_micros(1))
                && s(9)
                    .checked_duration_since(done)
                    .is_none_or(|d| d < SimDuration::from_micros(1)),
            "done={done}"
        );
    }

    #[test]
    fn mean_rate() {
        let tr = BandwidthTrace::from_mbps_steps(&[(0, 2.0), (5, 6.0)]);
        let mean = tr.mean_rate(s(0), s(10));
        assert!((mean - 4e6).abs() < 1.0);
    }

    #[test]
    fn cyclic_replay_wraps() {
        let tr = BandwidthTrace::from_mbps_steps(&[(0, 1.0), (10, 5.0)]);
        let cycle = SimDuration::from_secs(20);
        assert_eq!(tr.rate_at_cyclic(s(5), cycle), 1e6);
        assert_eq!(tr.rate_at_cyclic(s(15), cycle), 5e6);
        assert_eq!(tr.rate_at_cyclic(s(25), cycle), 1e6);
    }

    #[test]
    #[should_panic(expected = "start at time zero")]
    fn trace_must_start_at_zero() {
        BandwidthTrace::from_points(vec![(s(1), 1e6)]);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn times_must_increase() {
        BandwidthTrace::from_points(vec![(s(0), 1e6), (s(0), 2e6)]);
    }
}
