//! The zero-cost-when-off guard: attaching a [`NullSink`] (the sink CI
//! forces onto every session via `EAVS_NULL_TRACE`) must not add heap
//! allocations to the session hot path beyond the constant handful for
//! the shared sink handle and the dispatch tap. Event payloads are
//! built lazily behind the `Option<SharedSink>` branch, so the no-sink
//! path allocates nothing and the NullSink path allocates only setup.
//!
//! One test, alone in this binary: integration tests compile to their
//! own executable, so the counting global allocator here observes only
//! this measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use eavs::obs::{shared, NullSink, SharedSink};
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::predictor_by_name;
use eavs::scaling::session::{GovernorChoice, SessionBuilder, StreamingSession};
use eavs::sim::time::SimDuration;
use eavs::video::manifest::Manifest;
use std::sync::Arc;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn builder(manifest: &Arc<Manifest>) -> SessionBuilder {
    StreamingSession::builder(GovernorChoice::Eavs(EavsGovernor::new(
        predictor_by_name("hybrid").unwrap(),
        EavsConfig::default(),
    )))
    .manifest(Arc::clone(manifest))
    .seed(4242)
}

fn allocs_for(run: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    run();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn null_sink_adds_no_measurable_allocations() {
    let manifest = Arc::new(Manifest::single(
        6_000,
        1920,
        1080,
        SimDuration::from_secs(10),
        30,
    ));
    // Warm the one-time memos (segment/trace generation) so both
    // measurements see only the session hot path.
    builder(&manifest).run();
    builder(&manifest).trace(shared(NullSink)).run();

    let plain = allocs_for(|| {
        builder(&manifest).run();
    });
    let nulled = allocs_for(|| {
        let sink: SharedSink = shared(NullSink);
        builder(&manifest).trace(sink).run();
    });

    // The PR-2 hot-path diet pinned warm sessions at ~1700 allocations;
    // leave generous slack for allocator/runtime noise, but fail well
    // before a per-event or per-frame regression (300 frames here).
    assert!(
        plain < 2_600,
        "plain warm session allocated {plain} times (diet regression?)"
    );
    // A NullSink costs setup only: the Arc<Mutex<..>>, its clones into
    // the world and the boxed dispatch tap — nothing per event.
    let delta = nulled.saturating_sub(plain);
    assert!(
        delta <= 16,
        "NullSink added {delta} allocations over a plain run ({plain} -> {nulled}); \
         tracing must be zero-cost when off"
    );
}
