//! The simulated `/sys/devices/system/cpu/cpuN/cpufreq` policy directory.
//!
//! [`CpufreqFs`] exposes the Linux cpufreq file protocol over a simulated
//! [`Cluster`]: a userspace governor (like EAVS deployed on a rooted
//! Android phone) interacts *only* through these reads and writes —
//! selecting the `userspace` governor and echoing kHz values into
//! `scaling_setspeed`. The integration tests verify that driving the
//! cluster through this interface is decision-for-decision identical to
//! calling it directly.
//!
//! Supported files (relative to the policy directory):
//!
//! | file | access | contents |
//! |---|---|---|
//! | `scaling_available_frequencies` | r | kHz list, ascending |
//! | `scaling_available_governors` | r | governor names |
//! | `scaling_governor` | rw | active governor |
//! | `scaling_cur_freq` | r | current kHz |
//! | `scaling_min_freq` / `scaling_max_freq` | rw | policy limits, kHz |
//! | `cpuinfo_min_freq` / `cpuinfo_max_freq` | r | hardware limits, kHz |
//! | `cpuinfo_transition_latency` | r | nanoseconds |
//! | `scaling_setspeed` | rw | kHz; only in `userspace` |
//! | `scaling_driver` | r | `"eavs-sim"` |
//! | `affected_cpus` / `related_cpus` | r | core ids |
//! | `stats/time_in_state` | r | `kHz 10ms-ticks` lines |
//! | `stats/total_trans` | r | transition count |

use crate::error::SysfsError;
use eavs_cpu::cluster::{Cluster, PolicyLimits};
use eavs_cpu::freq::Frequency;
use eavs_sim::time::SimTime;

/// Governors selectable through `scaling_governor`.
pub const AVAILABLE_GOVERNORS: [&str; 8] = [
    "performance",
    "powersave",
    "userspace",
    "ondemand",
    "conservative",
    "interactive",
    "schedutil",
    "eavs",
];

/// A cpufreq policy directory bound to a cluster.
#[derive(Debug)]
pub struct CpufreqFs {
    governor: String,
    /// The last value written to `scaling_setspeed` (kHz).
    setspeed: Option<Frequency>,
    min_freq: Frequency,
    max_freq: Frequency,
}

impl CpufreqFs {
    /// Creates the policy directory for `cluster` with the `performance`
    /// semantics of a fresh policy: limits span the whole table.
    pub fn new(cluster: &Cluster) -> Self {
        CpufreqFs {
            governor: "performance".to_owned(),
            setspeed: None,
            min_freq: cluster.opps().min_freq(),
            max_freq: cluster.opps().max_freq(),
        }
    }

    /// The active governor name.
    pub fn governor(&self) -> &str {
        &self.governor
    }

    /// Lists the files in the policy directory (the `stats/` names are
    /// returned with their subdirectory prefix).
    pub fn list(&self) -> Vec<&'static str> {
        vec![
            "affected_cpus",
            "cpuinfo_max_freq",
            "cpuinfo_min_freq",
            "cpuinfo_transition_latency",
            "related_cpus",
            "scaling_available_frequencies",
            "scaling_available_governors",
            "scaling_cur_freq",
            "scaling_driver",
            "scaling_governor",
            "scaling_max_freq",
            "scaling_min_freq",
            "scaling_setspeed",
            "stats/time_in_state",
            "stats/total_trans",
        ]
    }

    /// Reads a file.
    ///
    /// # Errors
    ///
    /// [`SysfsError::NotFound`] for unknown paths.
    pub fn read(&self, cluster: &Cluster, path: &str, now: SimTime) -> Result<String, SysfsError> {
        let out = match path {
            "scaling_available_frequencies" => {
                let mut s = cluster
                    .opps()
                    .iter()
                    .map(|o| o.freq.khz().to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                s.push('\n');
                s
            }
            "scaling_available_governors" => {
                let mut s = AVAILABLE_GOVERNORS.join(" ");
                s.push('\n');
                s
            }
            "scaling_governor" => format!("{}\n", self.governor),
            "scaling_cur_freq" => format!("{}\n", cluster.current_freq().khz()),
            "scaling_min_freq" => format!("{}\n", self.min_freq.khz()),
            "scaling_max_freq" => format!("{}\n", self.max_freq.khz()),
            "cpuinfo_min_freq" => format!("{}\n", cluster.opps().min_freq().khz()),
            "cpuinfo_max_freq" => format!("{}\n", cluster.opps().max_freq().khz()),
            "cpuinfo_transition_latency" => "50000\n".to_owned(),
            "scaling_driver" => "eavs-sim\n".to_owned(),
            "scaling_setspeed" => match (self.governor.as_str(), self.setspeed) {
                ("userspace", Some(f)) => format!("{}\n", f.khz()),
                ("userspace", None) => format!("{}\n", cluster.current_freq().khz()),
                _ => "<unsupported>\n".to_owned(),
            },
            "affected_cpus" | "related_cpus" => {
                let mut s = (0..cluster.num_cores())
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                s.push('\n');
                s
            }
            "stats/time_in_state" => {
                // Kernel format: "<kHz> <10ms-ticks>" per line.
                let tis = cluster.time_in_state(now);
                let mut s = String::new();
                for (idx, dur) in tis.iter().enumerate() {
                    s.push_str(&format!(
                        "{} {}\n",
                        cluster.opps().freq(idx).khz(),
                        dur.as_millis() / 10
                    ));
                }
                s
            }
            "stats/total_trans" => format!("{}\n", cluster.transitions()),
            other => return Err(SysfsError::NotFound(other.to_owned())),
        };
        Ok(out)
    }

    /// Writes a file.
    ///
    /// # Errors
    ///
    /// * [`SysfsError::NotFound`] — unknown path.
    /// * [`SysfsError::NotWritable`] — read-only file.
    /// * [`SysfsError::InvalidValue`] — unparsable or out-of-range value.
    /// * [`SysfsError::NotPermitted`] — `scaling_setspeed` outside the
    ///   `userspace` governor.
    pub fn write(
        &mut self,
        cluster: &mut Cluster,
        path: &str,
        value: &str,
        now: SimTime,
    ) -> Result<(), SysfsError> {
        let value = value.trim();
        match path {
            "scaling_governor" => {
                if !AVAILABLE_GOVERNORS.contains(&value) {
                    return Err(SysfsError::InvalidValue {
                        path: path.to_owned(),
                        value: value.to_owned(),
                        reason: "unknown governor".to_owned(),
                    });
                }
                self.governor = value.to_owned();
                // Mirror kernel behavior for the static governors.
                match value {
                    "performance" => {
                        cluster.set_target(now, cluster.opps().max_index());
                    }
                    "powersave" => {
                        cluster.set_target(now, cluster.opps().min_index());
                    }
                    _ => {}
                }
                Ok(())
            }
            "scaling_setspeed" => {
                if self.governor != "userspace" {
                    return Err(SysfsError::NotPermitted {
                        path: path.to_owned(),
                        reason: format!(
                            "scaling_setspeed requires the userspace governor (active: {})",
                            self.governor
                        ),
                    });
                }
                let khz = parse_khz(path, value)?;
                let freq = Frequency::from_khz(khz);
                if cluster.opps().index_of(freq).is_none() {
                    return Err(SysfsError::InvalidValue {
                        path: path.to_owned(),
                        value: value.to_owned(),
                        reason: "not an available frequency".to_owned(),
                    });
                }
                self.setspeed = Some(freq);
                cluster.set_target_freq(now, freq);
                Ok(())
            }
            "scaling_min_freq" => {
                let khz = parse_khz(path, value)?;
                self.min_freq = Frequency::from_khz(khz);
                self.apply_limits(cluster);
                Ok(())
            }
            "scaling_max_freq" => {
                let khz = parse_khz(path, value)?;
                self.max_freq = Frequency::from_khz(khz);
                self.apply_limits(cluster);
                Ok(())
            }
            "scaling_available_frequencies"
            | "scaling_available_governors"
            | "scaling_cur_freq"
            | "cpuinfo_min_freq"
            | "cpuinfo_max_freq"
            | "cpuinfo_transition_latency"
            | "scaling_driver"
            | "affected_cpus"
            | "related_cpus"
            | "stats/time_in_state"
            | "stats/total_trans" => Err(SysfsError::NotWritable(path.to_owned())),
            other => Err(SysfsError::NotFound(other.to_owned())),
        }
    }

    fn apply_limits(&mut self, cluster: &mut Cluster) {
        let table = cluster.opps();
        // Kernel semantics: clamp requested limits to hardware bounds and
        // keep min <= max.
        let min_idx = table
            .lowest_at_least(self.min_freq)
            .unwrap_or(table.max_index());
        let max_idx = table.highest_at_most(self.max_freq).unwrap_or(0);
        let (min_idx, max_idx) = if min_idx <= max_idx {
            (min_idx, max_idx)
        } else {
            (max_idx, max_idx)
        };
        cluster.set_limits(PolicyLimits {
            min_index: min_idx,
            max_index: max_idx,
        });
    }
}

fn parse_khz(path: &str, value: &str) -> Result<u32, SysfsError> {
    value.parse::<u32>().map_err(|_| SysfsError::InvalidValue {
        path: path.to_owned(),
        value: value.to_owned(),
        reason: "expected an integer kHz value".to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eavs_cpu::soc::SocModel;

    fn setup() -> (Cluster, CpufreqFs) {
        let cluster = SocModel::MidRange.build_cluster();
        let fs = CpufreqFs::new(&cluster);
        (cluster, fs)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn reads_available_frequencies() {
        let (cluster, fs) = setup();
        let out = fs
            .read(&cluster, "scaling_available_frequencies", t(0))
            .unwrap();
        assert_eq!(out, "400000 800000 1100000 1400000\n");
    }

    #[test]
    fn governor_switch_applies_static_policies() {
        let (mut cluster, mut fs) = setup();
        fs.write(&mut cluster, "scaling_governor", "performance\n", t(0))
            .unwrap();
        cluster.advance(t(1));
        assert_eq!(cluster.current_freq(), Frequency::from_mhz(1400));
        fs.write(&mut cluster, "scaling_governor", "powersave", t(2))
            .unwrap();
        cluster.advance(t(3));
        assert_eq!(cluster.current_freq(), Frequency::from_mhz(400));
        assert_eq!(
            fs.read(&cluster, "scaling_governor", t(3)).unwrap(),
            "powersave\n"
        );
    }

    #[test]
    fn unknown_governor_rejected() {
        let (mut cluster, mut fs) = setup();
        let err = fs
            .write(&mut cluster, "scaling_governor", "turbo9000", t(0))
            .unwrap_err();
        assert!(matches!(err, SysfsError::InvalidValue { .. }));
    }

    #[test]
    fn setspeed_requires_userspace() {
        let (mut cluster, mut fs) = setup();
        let err = fs
            .write(&mut cluster, "scaling_setspeed", "800000", t(0))
            .unwrap_err();
        assert!(matches!(err, SysfsError::NotPermitted { .. }));
        fs.write(&mut cluster, "scaling_governor", "userspace", t(0))
            .unwrap();
        fs.write(&mut cluster, "scaling_setspeed", "800000", t(0))
            .unwrap();
        cluster.advance(t(1));
        assert_eq!(cluster.current_freq(), Frequency::from_mhz(800));
        assert_eq!(
            fs.read(&cluster, "scaling_setspeed", t(1)).unwrap(),
            "800000\n"
        );
    }

    #[test]
    fn setspeed_rejects_unavailable_frequency() {
        let (mut cluster, mut fs) = setup();
        fs.write(&mut cluster, "scaling_governor", "userspace", t(0))
            .unwrap();
        let err = fs
            .write(&mut cluster, "scaling_setspeed", "123456", t(0))
            .unwrap_err();
        assert!(matches!(err, SysfsError::InvalidValue { .. }));
    }

    #[test]
    fn limit_writes_clamp_the_cluster() {
        let (mut cluster, mut fs) = setup();
        fs.write(&mut cluster, "scaling_max_freq", "800000", t(0))
            .unwrap();
        // performance-like request above the cap is clamped.
        cluster.set_target(t(1), cluster.opps().max_index());
        cluster.advance(t(2));
        assert_eq!(cluster.current_freq(), Frequency::from_mhz(800));
        assert_eq!(
            fs.read(&cluster, "scaling_max_freq", t(2)).unwrap(),
            "800000\n"
        );
    }

    #[test]
    fn inverted_limits_degrade_to_max() {
        let (mut cluster, mut fs) = setup();
        fs.write(&mut cluster, "scaling_max_freq", "400000", t(0))
            .unwrap();
        fs.write(&mut cluster, "scaling_min_freq", "1400000", t(0))
            .unwrap();
        // min > max: policy collapses to the max limit.
        cluster.set_target(t(1), 3);
        cluster.advance(t(2));
        assert_eq!(cluster.current_freq(), Frequency::from_mhz(400));
    }

    #[test]
    fn time_in_state_format() {
        let (mut cluster, fs) = setup();
        cluster.set_target(t(0), 1);
        cluster.advance(t(1000));
        let out = fs.read(&cluster, "stats/time_in_state", t(1000)).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("800000 "));
        let ticks: u64 = lines[1].split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(ticks >= 99, "≈1 s at 800 MHz expected, got {ticks} ticks");
    }

    #[test]
    fn total_trans_counts() {
        let (mut cluster, mut fs) = setup();
        fs.write(&mut cluster, "scaling_governor", "userspace", t(0))
            .unwrap();
        fs.write(&mut cluster, "scaling_setspeed", "800000", t(1))
            .unwrap();
        fs.write(&mut cluster, "scaling_setspeed", "1400000", t(2))
            .unwrap();
        let out = fs.read(&cluster, "stats/total_trans", t(3)).unwrap();
        assert_eq!(out, "2\n");
    }

    #[test]
    fn read_only_files_reject_writes() {
        let (mut cluster, mut fs) = setup();
        let err = fs
            .write(&mut cluster, "scaling_cur_freq", "800000", t(0))
            .unwrap_err();
        assert!(matches!(err, SysfsError::NotWritable(_)));
    }

    #[test]
    fn unknown_path_not_found() {
        let (cluster, fs) = setup();
        assert!(matches!(
            fs.read(&cluster, "bogus", t(0)).unwrap_err(),
            SysfsError::NotFound(_)
        ));
    }

    #[test]
    fn list_contains_core_files() {
        let (_, fs) = setup();
        let files = fs.list();
        for f in [
            "scaling_governor",
            "scaling_setspeed",
            "stats/time_in_state",
        ] {
            assert!(files.contains(&f), "{f} missing");
        }
    }

    #[test]
    fn cur_freq_tracks_cluster() {
        let (mut cluster, mut fs) = setup();
        fs.write(&mut cluster, "scaling_governor", "userspace", t(0))
            .unwrap();
        fs.write(&mut cluster, "scaling_setspeed", "1100000", t(0))
            .unwrap();
        cluster.advance(t(1));
        assert_eq!(
            fs.read(&cluster, "scaling_cur_freq", t(1)).unwrap(),
            "1100000\n"
        );
    }
}
