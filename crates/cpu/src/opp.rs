//! Operating performance points (OPPs).
//!
//! An OPP is a `(frequency, voltage)` pair the hardware can run at; the
//! table of all OPPs for a frequency domain is the governor's decision
//! space, mirroring the kernel's `opp` library and
//! `scaling_available_frequencies`.

use crate::freq::{Frequency, Voltage};
use std::fmt;

/// One operating performance point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Opp {
    /// Clock frequency at this point.
    pub freq: Frequency,
    /// Supply voltage required for this frequency.
    pub volt: Voltage,
}

impl fmt::Display for Opp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.freq, self.volt)
    }
}

/// Index of an OPP within its table (0 = slowest).
pub type OppIndex = usize;

/// A validated, ascending table of OPPs for one frequency domain.
///
/// Invariants enforced at construction:
/// * at least one entry;
/// * frequencies strictly increasing;
/// * voltages non-decreasing (physics: higher f needs ≥ voltage).
///
/// ```
/// use eavs_cpu::freq::{Frequency, Voltage};
/// use eavs_cpu::opp::{Opp, OppTable};
///
/// let table = OppTable::new(vec![
///     Opp { freq: Frequency::from_mhz(500), volt: Voltage::from_mv(900) },
///     Opp { freq: Frequency::from_mhz(1000), volt: Voltage::from_mv(1050) },
/// ]).unwrap();
/// assert_eq!(table.len(), 2);
/// assert_eq!(table.lowest_at_least(Frequency::from_mhz(600)), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OppTable {
    opps: Vec<Opp>,
}

/// Error building an [`OppTable`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OppTableError {
    /// The table had no entries.
    Empty,
    /// Frequencies were not strictly increasing at the given index.
    NonMonotonicFrequency(usize),
    /// Voltages decreased at the given index.
    DecreasingVoltage(usize),
    /// A zero frequency entry was supplied at the given index.
    ZeroFrequency(usize),
}

impl fmt::Display for OppTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OppTableError::Empty => write!(f, "opp table is empty"),
            OppTableError::NonMonotonicFrequency(i) => {
                write!(f, "frequency not strictly increasing at index {i}")
            }
            OppTableError::DecreasingVoltage(i) => {
                write!(f, "voltage decreases at index {i}")
            }
            OppTableError::ZeroFrequency(i) => write!(f, "zero frequency at index {i}"),
        }
    }
}

impl std::error::Error for OppTableError {}

impl OppTable {
    /// Builds a table, validating the invariants.
    ///
    /// # Errors
    ///
    /// Returns an [`OppTableError`] if the table is empty, frequencies are
    /// not strictly increasing, any frequency is zero, or voltages decrease.
    pub fn new(opps: Vec<Opp>) -> Result<Self, OppTableError> {
        if opps.is_empty() {
            return Err(OppTableError::Empty);
        }
        for (i, opp) in opps.iter().enumerate() {
            if opp.freq.khz() == 0 {
                return Err(OppTableError::ZeroFrequency(i));
            }
            if i > 0 {
                if opp.freq <= opps[i - 1].freq {
                    return Err(OppTableError::NonMonotonicFrequency(i));
                }
                if opp.volt < opps[i - 1].volt {
                    return Err(OppTableError::DecreasingVoltage(i));
                }
            }
        }
        Ok(OppTable { opps })
    }

    /// Convenience constructor from `(MHz, mV)` pairs.
    ///
    /// # Errors
    ///
    /// Same as [`OppTable::new`].
    pub fn from_mhz_mv(pairs: &[(u32, u32)]) -> Result<Self, OppTableError> {
        OppTable::new(
            pairs
                .iter()
                .map(|&(mhz, mv)| Opp {
                    freq: Frequency::from_mhz(mhz),
                    volt: Voltage::from_mv(mv),
                })
                .collect(),
        )
    }

    /// Number of OPPs.
    pub fn len(&self) -> usize {
        self.opps.len()
    }

    /// Always `false`: tables are validated non-empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The OPP at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn opp(&self, idx: OppIndex) -> Opp {
        self.opps[idx]
    }

    /// The frequency at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn freq(&self, idx: OppIndex) -> Frequency {
        self.opps[idx].freq
    }

    /// The slowest OPP's index (always 0).
    pub fn min_index(&self) -> OppIndex {
        0
    }

    /// The fastest OPP's index.
    pub fn max_index(&self) -> OppIndex {
        self.opps.len() - 1
    }

    /// The slowest frequency.
    pub fn min_freq(&self) -> Frequency {
        self.opps[0].freq
    }

    /// The fastest frequency.
    pub fn max_freq(&self) -> Frequency {
        self.opps[self.opps.len() - 1].freq
    }

    /// Index of the slowest OPP with frequency ≥ `target`, or `None` if even
    /// the fastest is too slow.
    pub fn lowest_at_least(&self, target: Frequency) -> Option<OppIndex> {
        self.opps.iter().position(|o| o.freq >= target)
    }

    /// Index of the fastest OPP with frequency ≤ `target`, or `None` if even
    /// the slowest is too fast.
    pub fn highest_at_most(&self, target: Frequency) -> Option<OppIndex> {
        self.opps.iter().rposition(|o| o.freq <= target)
    }

    /// Index of the OPP with exactly `freq`, if present.
    pub fn index_of(&self, freq: Frequency) -> Option<OppIndex> {
        self.opps.iter().position(|o| o.freq == freq)
    }

    /// The nearest valid index for `target`: the lowest OPP satisfying it,
    /// else the fastest OPP (cpufreq's CPUFREQ_RELATION_L with fallback).
    pub fn closest_satisfying(&self, target: Frequency) -> OppIndex {
        self.lowest_at_least(target).unwrap_or(self.max_index())
    }

    /// Iterates the OPPs slowest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Opp> {
        self.opps.iter()
    }

    /// All frequencies, slowest-first.
    pub fn frequencies(&self) -> Vec<Frequency> {
        self.opps.iter().map(|o| o.freq).collect()
    }
}

impl fmt::Display for OppTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, opp) in self.opps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{opp}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> OppTable {
        OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap()
    }

    #[test]
    fn validation_catches_bad_tables() {
        assert_eq!(OppTable::new(vec![]).unwrap_err(), OppTableError::Empty);
        assert_eq!(
            OppTable::from_mhz_mv(&[(1000, 1000), (500, 900)]).unwrap_err(),
            OppTableError::NonMonotonicFrequency(1)
        );
        assert_eq!(
            OppTable::from_mhz_mv(&[(500, 1000), (1000, 900)]).unwrap_err(),
            OppTableError::DecreasingVoltage(1)
        );
        assert_eq!(
            OppTable::from_mhz_mv(&[(0, 900)]).unwrap_err(),
            OppTableError::ZeroFrequency(0)
        );
        // Equal frequencies rejected, equal voltages allowed.
        assert!(OppTable::from_mhz_mv(&[(500, 900), (500, 950)]).is_err());
        assert!(OppTable::from_mhz_mv(&[(500, 900), (600, 900)]).is_ok());
    }

    #[test]
    fn lookup_lowest_at_least() {
        let t = table();
        assert_eq!(t.lowest_at_least(Frequency::from_mhz(1)), Some(0));
        assert_eq!(t.lowest_at_least(Frequency::from_mhz(500)), Some(0));
        assert_eq!(t.lowest_at_least(Frequency::from_mhz(501)), Some(1));
        assert_eq!(t.lowest_at_least(Frequency::from_mhz(2000)), Some(3));
        assert_eq!(t.lowest_at_least(Frequency::from_mhz(2001)), None);
    }

    #[test]
    fn lookup_highest_at_most() {
        let t = table();
        assert_eq!(t.highest_at_most(Frequency::from_mhz(499)), None);
        assert_eq!(t.highest_at_most(Frequency::from_mhz(500)), Some(0));
        assert_eq!(t.highest_at_most(Frequency::from_mhz(1750)), Some(2));
        assert_eq!(t.highest_at_most(Frequency::from_mhz(9000)), Some(3));
    }

    #[test]
    fn closest_satisfying_falls_back_to_max() {
        let t = table();
        assert_eq!(t.closest_satisfying(Frequency::from_mhz(700)), 1);
        assert_eq!(t.closest_satisfying(Frequency::from_mhz(99_999)), 3);
    }

    #[test]
    fn index_of_exact() {
        let t = table();
        assert_eq!(t.index_of(Frequency::from_mhz(1500)), Some(2));
        assert_eq!(t.index_of(Frequency::from_mhz(1501)), None);
    }

    #[test]
    fn bounds_and_iteration() {
        let t = table();
        assert_eq!(t.len(), 4);
        assert_eq!(t.min_index(), 0);
        assert_eq!(t.max_index(), 3);
        assert_eq!(t.min_freq(), Frequency::from_mhz(500));
        assert_eq!(t.max_freq(), Frequency::from_mhz(2000));
        assert_eq!(t.frequencies().len(), 4);
        assert_eq!(t.iter().count(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn display_formats() {
        let t = OppTable::from_mhz_mv(&[(500, 900)]).unwrap();
        assert_eq!(t.to_string(), "500MHz @ 900mV");
        assert_eq!(
            OppTableError::DecreasingVoltage(2).to_string(),
            "voltage decreases at index 2"
        );
    }
}
