//! CPU idle states (C-states).
//!
//! When a core idles, the idle governor picks the deepest state whose
//! target residency fits the idle interval — deeper states draw less power
//! but cost entry/exit latency. The simulator attributes idle-interval
//! energy retroactively (the interval length is known once the core wakes),
//! which matches what Linux's `menu` governor tries to predict.

use eavs_sim::time::SimDuration;
use std::fmt;

/// One idle state.
#[derive(Clone, Debug, PartialEq)]
pub struct CState {
    /// Human-readable name (e.g. "WFI", "core-off").
    pub name: &'static str,
    /// Power drawn while resident, in watts.
    pub power_w: f64,
    /// Combined entry+exit latency.
    pub wake_latency: SimDuration,
    /// Minimum idle interval for this state to be worthwhile.
    pub target_residency: SimDuration,
}

/// A validated set of idle states, shallow to deep.
///
/// Invariants: at least one state; the first state has zero target
/// residency (always usable); power non-increasing with depth; target
/// residency non-decreasing with depth.
#[derive(Clone, Debug, PartialEq)]
pub struct CStateTable {
    states: Vec<CState>,
}

/// Error building a [`CStateTable`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CStateError {
    /// No states supplied.
    Empty,
    /// The shallowest state must have zero target residency.
    FirstStateNotAlwaysUsable,
    /// Power increased with depth at the given index.
    PowerIncreases(usize),
    /// Target residency decreased with depth at the given index.
    ResidencyDecreases(usize),
}

impl fmt::Display for CStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CStateError::Empty => write!(f, "no idle states"),
            CStateError::FirstStateNotAlwaysUsable => {
                write!(f, "first idle state must have zero target residency")
            }
            CStateError::PowerIncreases(i) => write!(f, "idle power increases at state {i}"),
            CStateError::ResidencyDecreases(i) => {
                write!(f, "target residency decreases at state {i}")
            }
        }
    }
}

impl std::error::Error for CStateError {}

impl CStateTable {
    /// Builds and validates a table.
    ///
    /// # Errors
    ///
    /// Returns a [`CStateError`] describing the violated invariant.
    pub fn new(states: Vec<CState>) -> Result<Self, CStateError> {
        if states.is_empty() {
            return Err(CStateError::Empty);
        }
        if !states[0].target_residency.is_zero() {
            return Err(CStateError::FirstStateNotAlwaysUsable);
        }
        for i in 1..states.len() {
            if states[i].power_w > states[i - 1].power_w {
                return Err(CStateError::PowerIncreases(i));
            }
            if states[i].target_residency < states[i - 1].target_residency {
                return Err(CStateError::ResidencyDecreases(i));
            }
        }
        Ok(CStateTable { states })
    }

    /// A typical mobile-SoC idle ladder: WFI → core clock-off → core
    /// power-gate. Powers are fractions of `wfi_power_w`.
    pub fn mobile_default(wfi_power_w: f64) -> Self {
        CStateTable::new(vec![
            CState {
                name: "WFI",
                power_w: wfi_power_w,
                wake_latency: SimDuration::from_micros(1),
                target_residency: SimDuration::ZERO,
            },
            CState {
                name: "core-retention",
                power_w: wfi_power_w * 0.4,
                wake_latency: SimDuration::from_micros(40),
                target_residency: SimDuration::from_micros(100),
            },
            CState {
                name: "core-off",
                power_w: wfi_power_w * 0.08,
                wake_latency: SimDuration::from_micros(250),
                target_residency: SimDuration::from_millis(1),
            },
        ])
        .expect("default ladder is valid")
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always `false`: tables are validated non-empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The state at `idx` (0 = shallowest).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn state(&self, idx: usize) -> &CState {
        &self.states[idx]
    }

    /// The deepest state usable for an idle interval of `idle_len`.
    pub fn deepest_for(&self, idle_len: SimDuration) -> &CState {
        self.states
            .iter()
            .rev()
            .find(|s| s.target_residency <= idle_len)
            .expect("first state always usable")
    }

    /// Energy in joules for an idle interval of `idle_len`, using the
    /// deepest applicable state.
    pub fn idle_energy(&self, idle_len: SimDuration) -> f64 {
        self.deepest_for(idle_len).power_w * idle_len.as_secs_f64()
    }

    /// Iterates the states shallow-first.
    pub fn iter(&self) -> impl Iterator<Item = &CState> {
        self.states.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_selects_by_duration() {
        let t = CStateTable::mobile_default(0.1);
        assert_eq!(t.len(), 3);
        assert_eq!(t.deepest_for(SimDuration::from_micros(10)).name, "WFI");
        assert_eq!(
            t.deepest_for(SimDuration::from_micros(500)).name,
            "core-retention"
        );
        assert_eq!(t.deepest_for(SimDuration::from_secs(1)).name, "core-off");
    }

    #[test]
    fn idle_energy_uses_deepest_state() {
        let t = CStateTable::mobile_default(0.1);
        // 1 s idle -> core-off at 0.008 W.
        let e = t.idle_energy(SimDuration::from_secs(1));
        assert!((e - 0.008).abs() < 1e-9, "e={e}");
        // Short idle -> WFI at 0.1 W.
        let e_short = t.idle_energy(SimDuration::from_micros(50));
        assert!((e_short - 0.1 * 50e-6).abs() < 1e-12);
    }

    #[test]
    fn deeper_is_cheaper_per_second() {
        let t = CStateTable::mobile_default(0.2);
        let powers: Vec<f64> = t.iter().map(|s| s.power_w).collect();
        assert!(powers.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn validation_errors() {
        assert_eq!(CStateTable::new(vec![]).unwrap_err(), CStateError::Empty);
        let bad_first = vec![CState {
            name: "x",
            power_w: 0.1,
            wake_latency: SimDuration::ZERO,
            target_residency: SimDuration::from_micros(1),
        }];
        assert_eq!(
            CStateTable::new(bad_first).unwrap_err(),
            CStateError::FirstStateNotAlwaysUsable
        );
        let increasing_power = vec![
            CState {
                name: "a",
                power_w: 0.1,
                wake_latency: SimDuration::ZERO,
                target_residency: SimDuration::ZERO,
            },
            CState {
                name: "b",
                power_w: 0.2,
                wake_latency: SimDuration::ZERO,
                target_residency: SimDuration::from_micros(1),
            },
        ];
        assert_eq!(
            CStateTable::new(increasing_power).unwrap_err(),
            CStateError::PowerIncreases(1)
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(
            CStateError::ResidencyDecreases(2).to_string(),
            "target residency decreases at state 2"
        );
    }
}
