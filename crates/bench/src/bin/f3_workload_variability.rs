//! Regenerates experiment `f3_workload_variability` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f3_workload_variability")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
