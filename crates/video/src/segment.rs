//! Media segments: the unit of download.

use crate::frame::Frame;
use eavs_sim::time::SimDuration;

/// One downloadable media segment: an ordered run of frames at one
/// representation.
#[derive(Clone, PartialEq, Debug)]
pub struct Segment {
    /// Segment index within the stream.
    pub index: u64,
    /// Ladder index this segment was encoded at.
    pub representation_id: usize,
    /// The frames, in decode order.
    frames: Vec<Frame>,
}

impl Segment {
    /// Builds a segment.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or frame indices are not consecutive.
    pub fn new(index: u64, representation_id: usize, frames: Vec<Frame>) -> Self {
        assert!(!frames.is_empty(), "segment {index} has no frames");
        for pair in frames.windows(2) {
            assert_eq!(
                pair[1].index,
                pair[0].index + 1,
                "segment {index}: frame indices must be consecutive"
            );
        }
        Segment {
            index,
            representation_id,
            frames,
        }
    }

    /// The frames in decode order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Consumes the segment, yielding its frames.
    pub fn into_frames(self) -> Vec<Frame> {
        self.frames
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Total coded size in bytes (what the downloader must transfer).
    pub fn size_bytes(&self) -> u64 {
        self.frames.iter().map(|f| u64::from(f.size_bytes)).sum()
    }

    /// Media duration of the segment.
    pub fn duration(&self) -> SimDuration {
        self.frames.iter().map(|f| f.duration).sum()
    }

    /// Global index of the first frame.
    pub fn first_frame_index(&self) -> u64 {
        self.frames[0].index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameType;
    use eavs_cpu::freq::Cycles;

    fn frame(index: u64, size: u32) -> Frame {
        Frame {
            index,
            frame_type: FrameType::P,
            size_bytes: size,
            decode_cycles: Cycles::from_mega(4.0),
            duration: SimDuration::from_nanos(33_333_333),
        }
    }

    #[test]
    fn aggregates_size_and_duration() {
        let s = Segment::new(0, 1, vec![frame(0, 100), frame(1, 200), frame(2, 300)]);
        assert_eq!(s.num_frames(), 3);
        assert_eq!(s.size_bytes(), 600);
        assert_eq!(s.duration(), SimDuration::from_nanos(3 * 33_333_333));
        assert_eq!(s.first_frame_index(), 0);
        assert_eq!(s.representation_id, 1);
    }

    #[test]
    fn into_frames_preserves_order() {
        let s = Segment::new(2, 0, vec![frame(60, 10), frame(61, 20)]);
        let frames = s.into_frames();
        assert_eq!(frames[0].index, 60);
        assert_eq!(frames[1].index, 61);
    }

    #[test]
    #[should_panic(expected = "no frames")]
    fn empty_segment_rejected() {
        Segment::new(0, 0, vec![]);
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn gap_in_frames_rejected() {
        Segment::new(0, 0, vec![frame(0, 1), frame(2, 1)]);
    }
}
