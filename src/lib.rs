//! # EAVS — Energy-Aware CPU Frequency Scaling for Mobile Video Streaming
//!
//! Facade crate re-exporting the whole EAVS workspace. See the repository
//! README and `DESIGN.md` for the architecture, and the `examples/`
//! directory for runnable entry points.
//!
//! ```
//! use eavs::sim::SimDuration;
//! assert_eq!(SimDuration::from_millis(1000), SimDuration::from_secs(1));
//! ```

#![forbid(unsafe_code)]

pub mod cli;

pub use eavs_bench as bench;
pub use eavs_core as scaling;
pub use eavs_cpu as cpu;
pub use eavs_daemon as daemon;
pub use eavs_faults as faults;
pub use eavs_fleet as fleet;
pub use eavs_governors as governors;
pub use eavs_metrics as metrics;
pub use eavs_net as net;
pub use eavs_obs as obs;
pub use eavs_power as power;
pub use eavs_sim as sim;
pub use eavs_sysfs as sysfs;
pub use eavs_trace as tracegen;
pub use eavs_video as video;
