//! Per-frame-type decode-cycle statistics: the raw material for fleet
//! workload priors.
//!
//! Every session records the *actual* decode cost of each frame it
//! displays, bucketed by frame type (I/P/B). The summary is bit-exact
//! mergeable — sums use fixed-point [`ExactSum`] and distributions use
//! integer-binned [`Histogram`]s — so shards of a fleet campaign can fold
//! their statistics in any order and land on byte-identical state. This is
//! the same associativity contract `GovAggregate` in `crates/fleet`
//! follows, and it is what makes the persisted `eavs-prior/v1` artifact
//! deterministic across `EAVS_JOBS` settings.
//!
//! Costs are accounted in **Mcycles** (millions of cycles). A 1080p frame
//! costs tens of Mcycles, so per-frame squared magnitudes stay far below
//! the `ExactSum` fixed-point overflow horizon even for billion-frame
//! campaigns.

use eavs_cpu::freq::Cycles;
use eavs_metrics::histogram::Histogram;
use eavs_metrics::stats::ExactSum;
use eavs_video::frame::FrameType;

/// Upper edge of the per-type cost histograms, in Mcycles.
///
/// Chosen so a 4K I-frame under a decode-spike fault still lands in-range;
/// anything above is counted in the overflow bucket and still merges
/// exactly.
pub const PRIOR_HIST_HI_MCYCLES: f64 = 256.0;

/// Bin count of the per-type cost histograms.
pub const PRIOR_HIST_BINS: usize = 64;

/// Bit-exact mergeable per-frame-type decode-cost summary.
///
/// Indexed by [`FrameType::index`] (I=0, P=1, B=2). The frame count per
/// type lives inside the [`ExactSum`] moments (`mcycles[t].count()`).
#[derive(Clone, Debug, PartialEq)]
pub struct FrameCycleStats {
    /// Sum of per-frame decode cost in Mcycles, fixed point.
    pub mcycles: [ExactSum; 3],
    /// Sum of squared per-frame decode cost in Mcycles², fixed point.
    pub mcycles_sq: [ExactSum; 3],
    /// Per-type cost distribution over `[0, 256)` Mcycles, 64 bins.
    pub hist: [Histogram; 3],
}

impl FrameCycleStats {
    /// An empty summary.
    pub fn new() -> Self {
        let hist = || Histogram::new(0.0, PRIOR_HIST_HI_MCYCLES, PRIOR_HIST_BINS);
        FrameCycleStats {
            mcycles: [ExactSum::new(), ExactSum::new(), ExactSum::new()],
            mcycles_sq: [ExactSum::new(), ExactSum::new(), ExactSum::new()],
            hist: [hist(), hist(), hist()],
        }
    }

    /// Records one decoded frame's actual cost.
    pub fn observe(&mut self, frame_type: FrameType, actual: Cycles) {
        let t = frame_type.index();
        let mc = actual.mega();
        self.mcycles[t].add(mc);
        self.mcycles_sq[t].add(mc * mc);
        self.hist[t].record(mc);
    }

    /// Folds another summary in. Order-free: integer addition throughout.
    pub fn merge(&mut self, other: &FrameCycleStats) {
        for t in 0..3 {
            self.mcycles[t].merge(&other.mcycles[t]);
            self.mcycles_sq[t].merge(&other.mcycles_sq[t]);
            self.hist[t].merge(&other.hist[t]);
        }
    }

    /// Frames observed for one type.
    pub fn count(&self, frame_type: FrameType) -> u64 {
        self.mcycles[frame_type.index()].count()
    }

    /// Frames observed across all types.
    pub fn total_frames(&self) -> u64 {
        self.mcycles.iter().map(ExactSum::count).sum()
    }

    /// `true` if no frame has been observed.
    pub fn is_empty(&self) -> bool {
        self.total_frames() == 0
    }

    /// Mean cost for one type in Mcycles, if any frame was seen.
    pub fn mean_mcycles(&self, frame_type: FrameType) -> Option<f64> {
        let s = &self.mcycles[frame_type.index()];
        (s.count() > 0).then(|| s.mean())
    }

    /// Population variance of the per-type cost in Mcycles².
    pub fn variance_mcycles(&self, frame_type: FrameType) -> Option<f64> {
        let t = frame_type.index();
        let n = self.mcycles[t].count();
        (n > 0).then(|| {
            let mean = self.mcycles[t].mean();
            (self.mcycles_sq[t].value() / n as f64 - mean * mean).max(0.0)
        })
    }

    /// Heap footprint (the histogram bins; everything else is inline).
    pub fn approx_heap_bytes() -> usize {
        3 * PRIOR_HIST_BINS * std::mem::size_of::<u64>()
    }
}

impl Default for FrameCycleStats {
    fn default() -> Self {
        FrameCycleStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(FrameType, f64)> {
        vec![
            (FrameType::I, 42.5),
            (FrameType::P, 18.25),
            (FrameType::P, 19.75),
            (FrameType::B, 9.0),
            (FrameType::I, 300.0), // overflow bucket
        ]
    }

    #[test]
    fn observe_accumulates_per_type() {
        let mut s = FrameCycleStats::new();
        for (t, mc) in sample() {
            s.observe(t, Cycles::from_mega(mc));
        }
        assert_eq!(s.count(FrameType::I), 2);
        assert_eq!(s.count(FrameType::P), 2);
        assert_eq!(s.count(FrameType::B), 1);
        assert_eq!(s.total_frames(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.mean_mcycles(FrameType::P), Some(19.0));
        assert_eq!(s.hist[FrameType::I.index()].overflow(), 1);
    }

    #[test]
    fn empty_stats_report_no_means() {
        let s = FrameCycleStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean_mcycles(FrameType::I), None);
        assert_eq!(s.variance_mcycles(FrameType::B), None);
    }

    #[test]
    fn merge_matches_sequential_fold_exactly() {
        let data = sample();
        let mut whole = FrameCycleStats::new();
        for (t, mc) in &data {
            whole.observe(*t, Cycles::from_mega(*mc));
        }
        // Split, fold in reverse shard order: must be bit-identical.
        let mut a = FrameCycleStats::new();
        let mut b = FrameCycleStats::new();
        for (i, (t, mc)) in data.iter().enumerate() {
            let shard = if i % 2 == 0 { &mut a } else { &mut b };
            shard.observe(*t, Cycles::from_mega(*mc));
        }
        let mut folded = FrameCycleStats::new();
        folded.merge(&b);
        folded.merge(&a);
        assert_eq!(folded, whole);
    }

    #[test]
    fn variance_is_nonnegative_and_exact_for_constant_input() {
        let mut s = FrameCycleStats::new();
        for _ in 0..10 {
            s.observe(FrameType::P, Cycles::from_mega(20.0));
        }
        assert_eq!(s.variance_mcycles(FrameType::P), Some(0.0));
    }
}
