//! Motivation experiments: T1 (OPP tables), F1 (power/energy vs
//! frequency), F2 (frequency timelines), F3 (workload variability).

use crate::harness::{self, governor, manifest_1080p30, SEED};
use eavs_core::session::StreamingSession;
use eavs_cpu::power::PowerModel;
use eavs_cpu::soc::SocModel;
use eavs_metrics::quantile::Quantiles;
use eavs_metrics::stats::OnlineStats;
use eavs_metrics::table::Table;
use eavs_sim::time::{SimDuration, SimTime};
use eavs_trace::content::ContentProfile;
use eavs_trace::video_gen::VideoGenerator;
use eavs_video::frame::FrameType;

/// T1: the OPP tables and power model of every SoC preset.
pub fn t1_opp_table() -> Table {
    let mut t = Table::new(&[
        "soc",
        "opp",
        "freq",
        "voltage",
        "active (W)",
        "idle WFI (W)",
        "nJ/cycle",
    ]);
    t.set_title("T1: SoC operating points and power model");
    for soc in SocModel::ALL {
        let table = soc.opp_table();
        let power = soc.power_model();
        let cstates = soc.cstates();
        for (i, opp) in table.iter().enumerate() {
            let active = power.active_power(*opp);
            t.row(&[
                soc.name(),
                &i.to_string(),
                &opp.freq.to_string(),
                &opp.volt.to_string(),
                &format!("{active:.3}"),
                &format!("{:.3}", cstates.state(0).power_w),
                &format!("{:.3}", active / opp.freq.hz() as f64 * 1e9),
            ]);
        }
    }
    t
}

/// F1: power and energy-per-frame vs fixed frequency (flagship2016,
/// decoding mean 1080p30 film frames with the remainder of each frame
/// period spent idle).
pub fn f1_power_curve() -> Table {
    let soc = SocModel::Flagship2016;
    let table = soc.opp_table();
    let power = soc.power_model();
    let cstates = soc.cstates();
    let generator = VideoGenerator::new(manifest_1080p30(60), ContentProfile::Film, SEED);
    let mean_cycles = generator.mean_cycles_per_frame(0);
    let period = 1.0 / 30.0;

    let mut t = Table::new(&[
        "freq",
        "active power (W)",
        "decode time (ms)",
        "busy energy (mJ)",
        "idle energy (mJ)",
        "energy/frame (mJ)",
        "feasible",
    ]);
    t.set_title(format!(
        "F1: energy per 1080p30 film frame vs fixed frequency ({:.1} Mcycles/frame)",
        mean_cycles / 1e6
    ));
    for opp in table.iter() {
        let active = power.active_power(*opp);
        let decode_s = mean_cycles / opp.freq.hz() as f64;
        let feasible = decode_s <= period;
        let busy_mj = active * decode_s * 1e3;
        let idle_s = (period - decode_s).max(0.0);
        let idle_mj = cstates.idle_energy(SimDuration::from_secs_f64(idle_s)) * 1e3;
        t.row(&[
            &opp.freq.to_string(),
            &format!("{active:.3}"),
            &format!("{:.2}", decode_s * 1e3),
            &format!("{busy_mj:.3}"),
            &format!("{idle_mj:.3}"),
            &format!("{:.3}", busy_mj + idle_mj),
            if feasible { "yes" } else { "NO" },
        ]);
    }
    t
}

/// F2: frequency timeline under ondemand, interactive and EAVS during the
/// same 20-second playback. Each row is the *time-weighted mean* frequency
/// over a 500 ms bin — point samples would alias the 10 ms oscillation of
/// the reactive governors into noise.
pub fn f2_freq_timeline() -> Table {
    let names = ["ondemand", "interactive", "eavs"];
    let manifest = std::sync::Arc::new(manifest_1080p30(20));
    let reports: Vec<_> = harness::run_parallel_labeled(
        names
            .iter()
            .map(|&name| {
                let manifest = std::sync::Arc::clone(&manifest);
                let job = move || {
                    harness::run_session(
                        StreamingSession::builder(governor(name))
                            .manifest(manifest)
                            .seed(SEED)
                            .record_series(true),
                    )
                };
                (format!("f2 {name}"), job)
            })
            .collect(),
    );
    let mut t = Table::new(&["t (s)", "ondemand (MHz)", "interactive (MHz)", "eavs (MHz)"]);
    t.set_title("F2: CPU frequency timeline during 1080p30 playback (500 ms bin means)");
    let step = SimDuration::from_millis(500);
    let end = SimTime::from_secs(20);
    let mut bin_start = SimTime::ZERO;
    while bin_start < end {
        let bin_end = bin_start + step;
        let mut row = vec![format!("{:.1}", bin_start.as_secs_f64())];
        for r in &reports {
            let series = r.freq_series.as_ref().expect("series recorded");
            let mean = series.time_weighted_mean(bin_start, bin_end).unwrap_or(0.0);
            row.push(format!("{mean:.0}"));
        }
        t.row_owned(row);
        bin_start = bin_end;
    }
    t
}

/// F3: per-frame decode-cycle variability by content type at 1080p.
pub fn f3_workload_variability() -> Table {
    let mut t = Table::new(&[
        "content",
        "mean (Mcyc)",
        "cv",
        "p95 (Mcyc)",
        "p99 (Mcyc)",
        "max (Mcyc)",
        "I mean",
        "P mean",
        "B mean",
    ]);
    t.set_title("F3: decode workload variability at 1080p30 (60 s)");
    for content in ContentProfile::ALL {
        let generator = VideoGenerator::new(manifest_1080p30(60), content, SEED);
        let mut all = Quantiles::new();
        let mut stats = OnlineStats::new();
        let mut per_type = [OnlineStats::new(), OnlineStats::new(), OnlineStats::new()];
        for seg in generator.all_segments(0) {
            for f in seg.frames() {
                let mc = f.decode_cycles.mega();
                all.push(mc);
                stats.push(mc);
                per_type[f.frame_type.index()].push(mc);
            }
        }
        t.row(&[
            content.name(),
            &format!("{:.2}", stats.mean()),
            &format!("{:.3}", stats.sample_std_dev() / stats.mean()),
            &format!("{:.2}", all.quantile(0.95)),
            &format!("{:.2}", all.quantile(0.99)),
            &format!("{:.2}", stats.max()),
            &format!("{:.2}", per_type[FrameType::I.index()].mean()),
            &format!("{:.2}", per_type[FrameType::P.index()].mean()),
            &format!("{:.2}", per_type[FrameType::B.index()].mean()),
        ]);
    }
    t
}
