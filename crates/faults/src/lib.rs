//! Deterministic fault injection for streaming sessions.
//!
//! A [`FaultPlan`] describes *what goes wrong* during a session: network
//! faults (bandwidth blackouts, stalled downloads, corrupt segments),
//! decode faults (cycle-count spikes, transient decoder stalls) and
//! thermal faults (ambient temperature steps). Plans are data — they can
//! be scripted exactly, randomized from a seed, or both — and compile
//! into a [`FaultSchedule`] that the session event loop queries.
//!
//! Determinism is the load-bearing property. Every randomized decision
//! is keyed on the *coordinate* of the thing being faulted (segment
//! index + attempt, frame index) rather than on draw order, so the same
//! plan produces the same storm regardless of which governor runs the
//! session, how retries interleave, or which worker thread executes the
//! sweep. That is what makes fault runs cacheable, comparable across
//! governors, and reproducible under the work-stealing pool.

use eavs_net::bandwidth::BandwidthTrace;
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::rng::SimRng;
use eavs_sim::time::{SimDuration, SimTime};

/// A window during which the network delivers zero bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blackout {
    /// When the blackout begins.
    pub start: SimTime,
    /// How long the outage lasts.
    pub duration: SimDuration,
}

impl Blackout {
    /// End of the blackout window.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// A scripted per-segment fault: the first `attempts` download attempts
/// of `segment` fail (stall or arrive corrupt, depending on which list
/// the fault sits in). Attempt numbering starts at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentFault {
    /// Segment index the fault applies to.
    pub segment: u64,
    /// Number of leading attempts that fail before one succeeds.
    pub attempts: u32,
}

impl SegmentFault {
    /// Fault a single attempt (the first) of `segment`.
    pub fn once(segment: u64) -> Self {
        Self {
            segment,
            attempts: 1,
        }
    }
}

/// A scripted decode-cost spike: frame `frame` costs `factor`× its
/// nominal cycle count to decode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeSpike {
    /// Global frame index the spike applies to.
    pub frame: u64,
    /// Multiplier applied to the frame's nominal decode cycles.
    pub factor: f64,
}

/// A scripted transient decoder stall: decoding of frame `frame` cannot
/// begin until `pause` has elapsed from the moment it first becomes
/// eligible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderStall {
    /// Global frame index that stalls before decode.
    pub frame: u64,
    /// How long the decoder is wedged.
    pub pause: SimDuration,
}

/// A scripted ambient-temperature step for the thermal model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmbientStep {
    /// When the ambient temperature changes.
    pub at: SimTime,
    /// New ambient temperature in °C.
    pub ambient_c: f64,
}

/// Seeded randomized fault generation layered on top of any scripted
/// faults. Each decision is an independent, coordinate-keyed coin flip;
/// probabilities are per segment-attempt (network) or per frame (decode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomFaults {
    /// Seed for the coordinate-keyed decision hash.
    pub seed: u64,
    /// Probability that a given (segment, attempt) download stalls.
    pub stall_prob: f64,
    /// Probability that a given (segment, attempt) arrives corrupt.
    pub corrupt_prob: f64,
    /// Probability that a given frame's decode cost spikes.
    pub spike_prob: f64,
    /// Multiplier applied to spiked frames.
    pub spike_factor: f64,
    /// Probability that the decoder stalls before a given frame.
    pub decoder_stall_prob: f64,
    /// Duration of a randomized decoder stall.
    pub decoder_stall: SimDuration,
}

impl RandomFaults {
    /// A light randomized storm: rare stalls and spikes.
    pub fn light(seed: u64) -> Self {
        Self {
            seed,
            stall_prob: 0.02,
            corrupt_prob: 0.02,
            spike_prob: 0.005,
            spike_factor: 2.0,
            decoder_stall_prob: 0.002,
            decoder_stall: SimDuration::from_millis(40),
        }
    }

    /// A heavy randomized storm: frequent network faults and decode
    /// disruption, for stress testing recovery paths.
    pub fn heavy(seed: u64) -> Self {
        Self {
            seed,
            stall_prob: 0.15,
            corrupt_prob: 0.10,
            spike_prob: 0.03,
            spike_factor: 3.0,
            decoder_stall_prob: 0.01,
            decoder_stall: SimDuration::from_millis(80),
        }
    }
}

/// A complete description of everything that goes wrong in one session.
///
/// The default plan is empty and injects nothing; an empty plan is
/// guaranteed to be a behavioral no-op (same events, same report, same
/// fingerprint as a session built without a plan at all).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Bandwidth blackout windows overlaid on the network trace.
    pub blackouts: Vec<Blackout>,
    /// Segments whose leading download attempts stall (never complete).
    pub stalls: Vec<SegmentFault>,
    /// Segments whose leading download attempts arrive corrupt.
    pub corruption: Vec<SegmentFault>,
    /// Frames whose decode cost spikes.
    pub decode_spikes: Vec<DecodeSpike>,
    /// Frames before which the decoder transiently stalls.
    pub decoder_stalls: Vec<DecoderStall>,
    /// Ambient temperature steps (require a thermal model to matter).
    pub ambient_steps: Vec<AmbientStep>,
    /// Optional seeded randomized faults layered on the scripted ones.
    pub randomized: Option<RandomFaults>,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.blackouts.is_empty()
            && self.stalls.is_empty()
            && self.corruption.is_empty()
            && self.decode_spikes.is_empty()
            && self.decoder_stalls.is_empty()
            && self.ambient_steps.is_empty()
            && self.randomized.is_none()
    }

    /// The standard fault storm used by experiment F24: one mid-stream
    /// blackout the buffer should absorb, a corrupt and a stalled
    /// segment, a burst of decode-cost spikes, one decoder stall, and an
    /// ambient heat step that later reverts. Survivable by a governor
    /// that races on recovery; punishing for one that does not.
    pub fn standard_storm() -> Self {
        Self {
            blackouts: vec![Blackout {
                start: SimTime::from_secs(20),
                duration: SimDuration::from_secs(5),
            }],
            stalls: vec![SegmentFault::once(8)],
            corruption: vec![SegmentFault::once(3)],
            decode_spikes: (300..330)
                .map(|frame| DecodeSpike { frame, factor: 2.5 })
                .collect(),
            decoder_stalls: vec![DecoderStall {
                frame: 450,
                pause: SimDuration::from_millis(80),
            }],
            ambient_steps: vec![
                AmbientStep {
                    at: SimTime::from_secs(30),
                    ambient_c: 45.0,
                },
                AmbientStep {
                    at: SimTime::from_secs(60),
                    ambient_c: 25.0,
                },
            ],
            randomized: None,
        }
    }

    /// Feed every knob of the plan into a fingerprint. Randomized plans
    /// are fully described by their seed and probabilities, so they hash
    /// deterministically too — no poisoning required.
    pub fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str("faults/v1");
        fp.write_usize(self.blackouts.len());
        for b in &self.blackouts {
            fp.write_u64(b.start.as_nanos());
            fp.write_u64(b.duration.as_nanos());
        }
        fp.write_usize(self.stalls.len());
        for s in &self.stalls {
            fp.write_u64(s.segment);
            fp.write_u32(s.attempts);
        }
        fp.write_usize(self.corruption.len());
        for s in &self.corruption {
            fp.write_u64(s.segment);
            fp.write_u32(s.attempts);
        }
        fp.write_usize(self.decode_spikes.len());
        for s in &self.decode_spikes {
            fp.write_u64(s.frame);
            fp.write_f64(s.factor);
        }
        fp.write_usize(self.decoder_stalls.len());
        for s in &self.decoder_stalls {
            fp.write_u64(s.frame);
            fp.write_u64(s.pause.as_nanos());
        }
        fp.write_usize(self.ambient_steps.len());
        for s in &self.ambient_steps {
            fp.write_u64(s.at.as_nanos());
            fp.write_f64(s.ambient_c);
        }
        match &self.randomized {
            None => fp.write_u8(0),
            Some(r) => {
                fp.write_u8(1);
                fp.write_u64(r.seed);
                fp.write_f64(r.stall_prob);
                fp.write_f64(r.corrupt_prob);
                fp.write_f64(r.spike_prob);
                fp.write_f64(r.spike_factor);
                fp.write_f64(r.decoder_stall_prob);
                fp.write_u64(r.decoder_stall.as_nanos());
            }
        }
    }

    /// Compile the plan into the lookup structure the session queries.
    pub fn schedule(&self) -> FaultSchedule {
        let mut stalls = self.stalls.clone();
        stalls.sort_by_key(|s| s.segment);
        let mut corruption = self.corruption.clone();
        corruption.sort_by_key(|s| s.segment);
        let mut decode_spikes = self.decode_spikes.clone();
        decode_spikes.sort_by_key(|s| s.frame);
        let mut decoder_stalls = self.decoder_stalls.clone();
        decoder_stalls.sort_by_key(|s| s.frame);
        let mut ambient_steps = self.ambient_steps.clone();
        ambient_steps.sort_by_key(|s| s.at);
        let mut blackouts = self.blackouts.clone();
        blackouts.sort_by_key(|b| b.start);
        FaultSchedule {
            blackouts,
            stalls,
            corruption,
            decode_spikes,
            decoder_stalls,
            ambient_steps,
            randomized: self.randomized,
        }
    }
}

/// Decision domains for coordinate-keyed randomized draws. Distinct
/// domains keep e.g. the stall coin for (segment 3, attempt 0) and the
/// corruption coin for the same coordinate independent.
const DOMAIN_STALL: u64 = 1;
const DOMAIN_CORRUPT: u64 = 2;
const DOMAIN_SPIKE: u64 = 3;
const DOMAIN_DECODER_STALL: u64 = 4;

/// Mix a seed with a (domain, a, b) coordinate into an RNG seed.
/// SplitMix64-style finalization: order-free, avalanche on every input.
fn coordinate_seed(seed: u64, domain: u64, a: u64, b: u64) -> u64 {
    let mut x = seed
        .wrapping_add(domain.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb));
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One coordinate-keyed bernoulli draw.
fn coordinate_coin(seed: u64, domain: u64, a: u64, b: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    SimRng::new(coordinate_seed(seed, domain, a, b)).bernoulli(p)
}

/// A [`FaultPlan`] compiled for point lookups by the session event loop.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    blackouts: Vec<Blackout>,
    stalls: Vec<SegmentFault>,
    corruption: Vec<SegmentFault>,
    decode_spikes: Vec<DecodeSpike>,
    decoder_stalls: Vec<DecoderStall>,
    ambient_steps: Vec<AmbientStep>,
    randomized: Option<RandomFaults>,
}

impl FaultSchedule {
    /// True when the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.blackouts.is_empty()
            && self.stalls.is_empty()
            && self.corruption.is_empty()
            && self.decode_spikes.is_empty()
            && self.decoder_stalls.is_empty()
            && self.ambient_steps.is_empty()
            && self.randomized.is_none()
    }

    fn scripted(list: &[SegmentFault], segment: u64, attempt: u32) -> bool {
        list.binary_search_by_key(&segment, |s| s.segment)
            .map(|i| attempt < list[i].attempts)
            .unwrap_or(false)
    }

    /// Does download attempt `attempt` of `segment` stall (never
    /// complete on its own)?
    pub fn is_stalled(&self, segment: u64, attempt: u32) -> bool {
        Self::scripted(&self.stalls, segment, attempt)
            || self.randomized.is_some_and(|r| {
                coordinate_coin(
                    r.seed,
                    DOMAIN_STALL,
                    segment,
                    u64::from(attempt),
                    r.stall_prob,
                )
            })
    }

    /// Does download attempt `attempt` of `segment` arrive corrupt,
    /// forcing a re-download?
    pub fn is_corrupt(&self, segment: u64, attempt: u32) -> bool {
        Self::scripted(&self.corruption, segment, attempt)
            || self.randomized.is_some_and(|r| {
                coordinate_coin(
                    r.seed,
                    DOMAIN_CORRUPT,
                    segment,
                    u64::from(attempt),
                    r.corrupt_prob,
                )
            })
    }

    /// Decode-cost multiplier for `frame`, if it spikes.
    pub fn decode_spike(&self, frame: u64) -> Option<f64> {
        if let Ok(i) = self.decode_spikes.binary_search_by_key(&frame, |s| s.frame) {
            return Some(self.decode_spikes[i].factor);
        }
        self.randomized
            .filter(|r| coordinate_coin(r.seed, DOMAIN_SPIKE, frame, 0, r.spike_prob))
            .map(|r| r.spike_factor)
    }

    /// Transient decoder stall before `frame`, if any.
    pub fn decoder_stall(&self, frame: u64) -> Option<SimDuration> {
        if let Ok(i) = self
            .decoder_stalls
            .binary_search_by_key(&frame, |s| s.frame)
        {
            return Some(self.decoder_stalls[i].pause);
        }
        self.randomized
            .filter(|r| {
                coordinate_coin(r.seed, DOMAIN_DECODER_STALL, frame, 0, r.decoder_stall_prob)
            })
            .map(|r| r.decoder_stall)
    }

    /// Ambient temperature steps, sorted by time.
    pub fn ambient_steps(&self) -> &[AmbientStep] {
        &self.ambient_steps
    }

    /// Start of the earliest blackout window, if any. Sessions use this
    /// as the instant from which a blackout-rewritten bandwidth trace
    /// may diverge from the clean trace: any transfer scheduled to
    /// complete at or after it can no longer be assumed to follow the
    /// clean session's timeline.
    pub fn first_blackout_start(&self) -> Option<SimTime> {
        self.blackouts.iter().map(|b| b.start).min()
    }

    /// Overlay the blackout windows on a bandwidth trace, producing a
    /// trace whose rate is zero inside every blackout and unchanged
    /// outside. Returns `None` when there are no blackouts (the base
    /// trace should be used untouched, preserving `Arc` sharing).
    pub fn apply_to_trace(&self, base: &BandwidthTrace) -> Option<BandwidthTrace> {
        if self.blackouts.is_empty() {
            return None;
        }
        let mut times: Vec<SimTime> = base.points().iter().map(|&(t, _)| t).collect();
        for b in &self.blackouts {
            times.push(b.start);
            times.push(b.end());
        }
        times.sort();
        times.dedup();
        let in_blackout = |t: SimTime| self.blackouts.iter().any(|b| t >= b.start && t < b.end());
        let mut points: Vec<(SimTime, f64)> = Vec::with_capacity(times.len());
        for t in times {
            let rate = if in_blackout(t) { 0.0 } else { base.rate_at(t) };
            match points.last() {
                Some(&(_, prev)) if prev == rate => {}
                _ => points.push((t, rate)),
            }
        }
        Some(BandwidthTrace::from_points(points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp_of(plan: &FaultPlan) -> u128 {
        let mut fp = Fingerprinter::new("test/faults");
        plan.fingerprint(&mut fp);
        fp.finish().expect("not opaque").0
    }

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.schedule().is_empty());
    }

    #[test]
    fn standard_storm_is_not_empty() {
        let storm = FaultPlan::standard_storm();
        assert!(!storm.is_empty());
        let sched = storm.schedule();
        assert!(sched.is_corrupt(3, 0));
        assert!(!sched.is_corrupt(3, 1));
        assert!(sched.is_stalled(8, 0));
        assert!(!sched.is_stalled(8, 1));
        assert_eq!(sched.decode_spike(300), Some(2.5));
        assert_eq!(sched.decode_spike(330), None);
        assert_eq!(sched.decoder_stall(450), Some(SimDuration::from_millis(80)));
        assert_eq!(sched.ambient_steps().len(), 2);
    }

    #[test]
    fn scripted_multi_attempt_faults_count_down() {
        let plan = FaultPlan {
            stalls: vec![SegmentFault {
                segment: 5,
                attempts: 3,
            }],
            ..FaultPlan::default()
        };
        let sched = plan.schedule();
        for attempt in 0..3 {
            assert!(sched.is_stalled(5, attempt));
        }
        assert!(!sched.is_stalled(5, 3));
        assert!(!sched.is_stalled(4, 0));
    }

    #[test]
    fn randomized_decisions_are_coordinate_stable() {
        let plan = FaultPlan {
            randomized: Some(RandomFaults::heavy(7)),
            ..FaultPlan::default()
        };
        let a = plan.schedule();
        let b = plan.schedule();
        for seg in 0..200u64 {
            for attempt in 0..4u32 {
                assert_eq!(a.is_stalled(seg, attempt), b.is_stalled(seg, attempt));
                assert_eq!(a.is_corrupt(seg, attempt), b.is_corrupt(seg, attempt));
            }
        }
        for frame in 0..2_000u64 {
            assert_eq!(a.decode_spike(frame), b.decode_spike(frame));
            assert_eq!(a.decoder_stall(frame), b.decoder_stall(frame));
        }
    }

    #[test]
    fn randomized_probabilities_hit_roughly_expected_rates() {
        let plan = FaultPlan {
            randomized: Some(RandomFaults {
                seed: 11,
                stall_prob: 0.2,
                corrupt_prob: 0.0,
                spike_prob: 0.0,
                spike_factor: 2.0,
                decoder_stall_prob: 0.0,
                decoder_stall: SimDuration::from_millis(10),
            }),
            ..FaultPlan::default()
        };
        let sched = plan.schedule();
        let hits = (0..10_000u64)
            .filter(|&seg| sched.is_stalled(seg, 0))
            .count();
        // 10k draws at p=0.2: expect ~2000, allow generous slack.
        assert!((1700..=2300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn zero_probability_never_fires() {
        let plan = FaultPlan {
            randomized: Some(RandomFaults {
                seed: 3,
                stall_prob: 0.0,
                corrupt_prob: 0.0,
                spike_prob: 0.0,
                spike_factor: 2.0,
                decoder_stall_prob: 0.0,
                decoder_stall: SimDuration::from_millis(10),
            }),
            ..FaultPlan::default()
        };
        let sched = plan.schedule();
        for seg in 0..500u64 {
            assert!(!sched.is_stalled(seg, 0));
            assert!(!sched.is_corrupt(seg, 0));
            assert_eq!(sched.decode_spike(seg), None);
            assert_eq!(sched.decoder_stall(seg), None);
        }
    }

    #[test]
    fn blackout_overlay_zeroes_rate_inside_window_only() {
        let base = BandwidthTrace::constant(10_000_000.0);
        let plan = FaultPlan {
            blackouts: vec![Blackout {
                start: SimTime::from_secs(5),
                duration: SimDuration::from_secs(2),
            }],
            ..FaultPlan::default()
        };
        let faulted = plan.schedule().apply_to_trace(&base).expect("has blackout");
        assert_eq!(faulted.rate_at(SimTime::from_secs(4)), 10_000_000.0);
        assert_eq!(faulted.rate_at(SimTime::from_secs(5)), 0.0);
        assert_eq!(faulted.rate_at(SimTime::from_secs(6)), 0.0);
        assert_eq!(faulted.rate_at(SimTime::from_secs(7)), 10_000_000.0);
    }

    #[test]
    fn blackout_overlay_merges_overlapping_windows() {
        let base = BandwidthTrace::from_mbps_steps(&[(0, 8.0), (10, 4.0)]);
        let plan = FaultPlan {
            blackouts: vec![
                Blackout {
                    start: SimTime::from_secs(2),
                    duration: SimDuration::from_secs(4),
                },
                Blackout {
                    start: SimTime::from_secs(5),
                    duration: SimDuration::from_secs(3),
                },
            ],
            ..FaultPlan::default()
        };
        let faulted = plan
            .schedule()
            .apply_to_trace(&base)
            .expect("has blackouts");
        assert_eq!(faulted.rate_at(SimTime::from_secs(1)), 8_000_000.0);
        for s in 2..8 {
            assert_eq!(faulted.rate_at(SimTime::from_secs(s)), 0.0, "t={s}");
        }
        assert_eq!(faulted.rate_at(SimTime::from_secs(8)), 8_000_000.0);
        assert_eq!(faulted.rate_at(SimTime::from_secs(11)), 4_000_000.0);
    }

    #[test]
    fn no_blackouts_returns_none() {
        let base = BandwidthTrace::constant(1.0);
        assert!(FaultPlan::default()
            .schedule()
            .apply_to_trace(&base)
            .is_none());
    }

    #[test]
    fn fingerprint_distinguishes_every_knob() {
        let base = FaultPlan::default();
        let base_fp = fp_of(&base);
        let variants = vec![
            FaultPlan {
                blackouts: vec![Blackout {
                    start: SimTime::from_secs(1),
                    duration: SimDuration::from_secs(1),
                }],
                ..base.clone()
            },
            FaultPlan {
                stalls: vec![SegmentFault::once(0)],
                ..base.clone()
            },
            FaultPlan {
                corruption: vec![SegmentFault::once(0)],
                ..base.clone()
            },
            FaultPlan {
                decode_spikes: vec![DecodeSpike {
                    frame: 0,
                    factor: 2.0,
                }],
                ..base.clone()
            },
            FaultPlan {
                decoder_stalls: vec![DecoderStall {
                    frame: 0,
                    pause: SimDuration::from_millis(1),
                }],
                ..base.clone()
            },
            FaultPlan {
                ambient_steps: vec![AmbientStep {
                    at: SimTime::from_secs(1),
                    ambient_c: 40.0,
                }],
                ..base.clone()
            },
            FaultPlan {
                randomized: Some(RandomFaults::light(0)),
                ..base.clone()
            },
        ];
        let mut seen = vec![base_fp];
        for v in &variants {
            let fp = fp_of(v);
            assert!(!seen.contains(&fp), "fingerprint collision for {v:?}");
            seen.push(fp);
        }
        // Randomized seeds and probabilities also perturb the digest.
        let r1 = FaultPlan {
            randomized: Some(RandomFaults::light(0)),
            ..base.clone()
        };
        let r2 = FaultPlan {
            randomized: Some(RandomFaults::light(1)),
            ..base.clone()
        };
        let r3 = FaultPlan {
            randomized: Some(RandomFaults {
                stall_prob: 0.5,
                ..RandomFaults::light(0)
            }),
            ..base
        };
        assert_ne!(fp_of(&r1), fp_of(&r2));
        assert_ne!(fp_of(&r1), fp_of(&r3));
    }
}
