//! Extension experiments beyond the paper's core evaluation: F15
//! (thermal throttling), F16 (background load robustness) and T3
//! (multi-seed confidence intervals).

use std::sync::Arc;

use crate::harness::{
    governor, manifest_1080p30, run_parallel_labeled, run_session, single_manifest, SEED,
};
use eavs_core::session::StreamingSession;
use eavs_cpu::thermal::{ThermalModel, ThrottleController};
use eavs_metrics::ci::mean_confidence_interval;
use eavs_metrics::stats::OnlineStats;
use eavs_metrics::table::Table;
use eavs_sim::time::SimDuration;
use eavs_trace::content::ContentProfile;

/// F15: sustained heavy playback with the thermal model enabled.
///
/// 240 s of 1080p60 film: the reactive governors run 1.5–1.7 W and heat
/// the die past the throttle threshold, riding the thermal limiter for
/// the rest of the session; EAVS's lower steady power keeps it below the
/// threshold entirely — thermal headroom is a side effect of energy-
/// minimal scaling.
pub fn f15_thermal() -> Table {
    const THROTTLE_START_C: f64 = 58.0;
    let names = ["performance", "ondemand", "interactive", "eavs"];
    let manifest = Arc::new(single_manifest(6_000, 1920, 1080, 240, 60));
    let reports = run_parallel_labeled(
        names
            .iter()
            .map(|&name| {
                let manifest = Arc::clone(&manifest);
                let job = move || {
                    run_session(
                        StreamingSession::builder(governor(name))
                            .manifest(manifest)
                            .content(ContentProfile::Film)
                            // tau ≈ 62 s: a 4-minute run reaches near-steady
                            // temperature.
                            .thermal(
                                ThermalModel::new(25.0, 25.0, 2.5),
                                ThrottleController::new(THROTTLE_START_C, 95.0),
                            )
                            .seed(SEED),
                    )
                };
                (format!("f15 {name}"), job)
            })
            .collect(),
    );
    let mut t = Table::new(&[
        "governor",
        "cpu (J)",
        "peak temp (°C)",
        "throttled",
        "late vsyncs",
        "miss %",
        "mean freq",
    ]);
    t.set_title("F15: thermal throttling — 240 s of 1080p60 film, phone chassis");
    for r in &reports {
        let peak = r.peak_temp_c.expect("thermal enabled");
        t.row(&[
            &r.governor,
            &format!("{:.1}", r.cpu_joules()),
            &format!("{peak:.1}"),
            if peak > THROTTLE_START_C { "yes" } else { "no" },
            &r.qoe.late_vsyncs.to_string(),
            &format!("{:.3}", r.qoe.deadline_miss_rate() * 100.0),
            &r.mean_freq.to_string(),
        ]);
    }
    t
}

/// F16: robustness to background CPU load on the same frequency domain.
///
/// Load-sampling governors cannot tell decode demand from background
/// noise and scale up for both; EAVS keys off the video pipeline only,
/// so added background load does not inflate the video's frequency bill.
pub fn f16_background() -> Table {
    let duties = [0.0f64, 0.2, 0.4, 0.6];
    let names = ["ondemand", "interactive", "eavs"];
    let mut t = Table::new(&[
        "bg duty",
        "governor",
        "cpu (J)",
        "vs no-bg",
        "late vsyncs",
        "bg bursts",
    ]);
    t.set_title("F16: background-load robustness — 60 s of 1080p30 film + core-1 bursts");
    let manifest = Arc::new(manifest_1080p30(60));
    let mut base: Vec<f64> = vec![0.0; names.len()];
    for duty in duties {
        let reports = run_parallel_labeled(
            names
                .iter()
                .map(|&name| {
                    let manifest = Arc::clone(&manifest);
                    let job = move || {
                        let builder = StreamingSession::builder(governor(name))
                            .manifest(manifest)
                            .seed(SEED);
                        let builder = if duty > 0.0 {
                            builder.background_load(duty, SimDuration::from_millis(50))
                        } else {
                            builder
                        };
                        run_session(builder)
                    };
                    (format!("f16 {name} duty {duty:.1}"), job)
                })
                .collect(),
        );
        for (i, r) in reports.iter().enumerate() {
            if duty == 0.0 {
                base[i] = r.cpu_joules();
            }
            t.row(&[
                &format!("{:.0}%", duty * 100.0),
                &r.governor,
                &format!("{:.2}", r.cpu_joules()),
                &format!("{:+.1}%", (r.cpu_joules() / base[i] - 1.0) * 100.0),
                &r.qoe.late_vsyncs.to_string(),
                &r.background_jobs.to_string(),
            ]);
        }
    }
    t
}

/// T3: statistical confidence — 10 seeds per governor, 95 % CIs on CPU
/// energy and the EAVS saving.
pub fn t3_confidence() -> Table {
    let seeds: Vec<u64> = (1..=10).collect();
    let names = ["ondemand", "interactive", "schedutil", "eavs"];
    let mut t = Table::new(&[
        "governor",
        "mean cpu (J)",
        "95% CI",
        "min..max (J)",
        "mean miss %",
    ]);
    t.set_title("T3: 10-seed repetition — 60 s of 1080p30 film");
    let manifest = Arc::new(manifest_1080p30(60));
    let mut stats_rows = Vec::new();
    for &name in &names {
        let reports = run_parallel_labeled(
            seeds
                .iter()
                .map(|&seed| {
                    let manifest = Arc::clone(&manifest);
                    let job = move || {
                        run_session(
                            StreamingSession::builder(governor(name))
                                .manifest(manifest)
                                .seed(seed),
                        )
                    };
                    (format!("t3 {name} seed {seed}"), job)
                })
                .collect(),
        );
        let energy: OnlineStats = reports.iter().map(|r| r.cpu_joules()).collect();
        let miss: OnlineStats = reports
            .iter()
            .map(|r| r.qoe.deadline_miss_rate() * 100.0)
            .collect();
        stats_rows.push((name, energy, miss));
    }
    for (name, energy, miss) in &stats_rows {
        let ci = mean_confidence_interval(energy, 0.95);
        t.row(&[
            name,
            &format!("{:.2}", energy.mean()),
            &format!("±{:.2}", ci.half_width),
            &format!("{:.2}..{:.2}", energy.min(), energy.max()),
            &format!("{:.3}", miss.mean()),
        ]);
    }
    // A footer row with the headline saving and its own CI, computed from
    // per-seed pairwise ratios (paired comparison removes workload
    // variance).
    let ondemand = &stats_rows[0].1;
    let eavs = &stats_rows[3].1;
    t.row(&[
        "eavs saving vs ondemand",
        &format!("{:.1}%", (1.0 - eavs.mean() / ondemand.mean()) * 100.0),
        "",
        "",
        "",
    ]);
    t
}

/// F17: big vs LITTLE cluster placement across the quality ladder.
///
/// Below the LITTLE ceiling the efficiency cluster decodes the same
/// stream for a fraction of the energy; past it, deadline misses make the
/// big cluster mandatory. EAVS governs both identically.
pub fn f17_cluster_placement() -> Table {
    use eavs_core::session::ClusterSelect;
    let rungs: [(u32, u32, u32, u32, &str); 6] = [
        (700, 640, 360, 30, "360p30"),
        (1_500, 854, 480, 30, "480p30"),
        (3_000, 1280, 720, 30, "720p30"),
        (6_000, 1920, 1080, 30, "1080p30"),
        (6_000, 1920, 1080, 60, "1080p60"),
        (10_000, 2560, 1440, 60, "1440p60"),
    ];
    let mut t = Table::new(&[
        "rung",
        "big (J)",
        "big miss %",
        "little (J)",
        "little miss %",
        "little saving",
    ]);
    t.set_title("F17: decode placement big vs LITTLE — 60 s film, EAVS governor");
    for (kbps, w, h, fps, label) in rungs {
        let manifest = Arc::new(single_manifest(kbps, w, h, 60, fps));
        let reports = run_parallel_labeled(
            [ClusterSelect::Big, ClusterSelect::Little]
                .iter()
                .map(|&select| {
                    let manifest = Arc::clone(&manifest);
                    let job = move || {
                        run_session(
                            StreamingSession::builder(governor("eavs"))
                                .manifest(manifest)
                                .cluster(select)
                                .seed(SEED),
                        )
                    };
                    (format!("f17 {label} {select:?}"), job)
                })
                .collect(),
        );
        let (big, little) = (&reports[0], &reports[1]);
        t.row(&[
            label,
            &format!("{:.2}", big.cpu_joules()),
            &format!("{:.3}", big.qoe.deadline_miss_rate() * 100.0),
            &format!("{:.2}", little.cpu_joules()),
            &format!("{:.3}", little.qoe.deadline_miss_rate() * 100.0),
            &format!(
                "{:.1}%",
                (1.0 - little.cpu_joules() / big.cpu_joules()) * 100.0
            ),
        ]);
    }
    t
}

/// F18: decoded-queue depth — the slack EAVS exploits comes from the
/// player's output-surface queue; deeper queues let the CPU run slower.
pub fn f18_queue_depth() -> Table {
    let caps = [1usize, 2, 4, 8, 16];
    let mut t = Table::new(&[
        "decoded cap",
        "eavs (J)",
        "eavs miss %",
        "eavs mean freq",
        "ondemand (J)",
    ]);
    t.set_title("F18: decoded-frame queue depth — 60 s of 1080p30 film");
    let manifest = Arc::new(manifest_1080p30(60));
    for cap in caps {
        let reports = run_parallel_labeled(
            ["eavs", "ondemand"]
                .iter()
                .map(|&name| {
                    let manifest = Arc::clone(&manifest);
                    let job = move || {
                        run_session(
                            StreamingSession::builder(governor(name))
                                .manifest(manifest)
                                .decoded_cap(cap)
                                .seed(SEED),
                        )
                    };
                    (format!("f18 {name} cap {cap}"), job)
                })
                .collect(),
        );
        let (eavs, od) = (&reports[0], &reports[1]);
        t.row(&[
            &cap.to_string(),
            &format!("{:.2}", eavs.cpu_joules()),
            &format!("{:.3}", eavs.qoe.deadline_miss_rate() * 100.0),
            &eavs.mean_freq.to_string(),
            &format!("{:.2}", od.cpu_joules()),
        ]);
    }
    t
}

/// T4: generality across SoC models — the savings are a property of the
/// approach, not of one platform's OPP table.
pub fn t4_soc_matrix() -> Table {
    use eavs_cpu::soc::SocModel;
    let mut t = Table::new(&[
        "soc",
        "governor",
        "cpu (J)",
        "vs interactive",
        "miss %",
        "mean freq",
    ]);
    t.set_title("T4: governor comparison across SoC presets — 60 s of 1080p30 film");
    let manifest = Arc::new(manifest_1080p30(60));
    for soc in SocModel::ALL {
        let names = ["ondemand", "interactive", "schedutil", "eavs"];
        let reports = run_parallel_labeled(
            names
                .iter()
                .map(|&name| {
                    let manifest = Arc::clone(&manifest);
                    let job = move || {
                        run_session(
                            StreamingSession::builder(governor(name))
                                .soc(soc)
                                .manifest(manifest)
                                .seed(SEED),
                        )
                    };
                    (format!("t4 {} {name}", soc.name()), job)
                })
                .collect(),
        );
        let interactive = reports[1].cpu_joules();
        for r in &reports {
            t.row(&[
                soc.name(),
                &r.governor,
                &format!("{:.2}", r.cpu_joules()),
                &format!("{:+.1}%", (r.cpu_joules() / interactive - 1.0) * 100.0),
                &format!("{:.3}", r.qoe.deadline_miss_rate() * 100.0),
                &r.mean_freq.to_string(),
            ]);
        }
    }
    t
}

/// F19: where the joules go — busy/idle/static/transition breakdown per
/// governor. Shows that EAVS's win is lower *busy* energy (cheaper
/// cycles), not reduced idle floor.
pub fn f19_energy_breakdown() -> Table {
    let names = [
        "performance",
        "ondemand",
        "conservative",
        "interactive",
        "schedutil",
        "eavs",
    ];
    let manifest = Arc::new(manifest_1080p30(60));
    let reports = run_parallel_labeled(
        names
            .iter()
            .map(|&name| {
                let manifest = Arc::clone(&manifest);
                let job = move || {
                    run_session(
                        StreamingSession::builder(governor(name))
                            .manifest(manifest)
                            .seed(SEED),
                    )
                };
                (format!("f19 {name}"), job)
            })
            .collect(),
    );
    let mut t = Table::new(&[
        "governor",
        "busy (J)",
        "idle (J)",
        "static (J)",
        "transition (J)",
        "total (J)",
        "busy share",
    ]);
    t.set_title("F19: CPU energy breakdown — 60 s of 1080p30 film");
    for r in &reports {
        let e = r.cpu_energy;
        t.row(&[
            &r.governor,
            &format!("{:.2}", e.busy_j),
            &format!("{:.2}", e.idle_j),
            &format!("{:.2}", e.static_j),
            &format!("{:.3}", e.transition_j),
            &format!("{:.2}", e.total()),
            &format!("{:.0}%", e.busy_j / e.total() * 100.0),
        ]);
    }
    t
}

/// F20: automatic cluster placement.
///
/// The right static placement depends on the workload: light streams fit
/// the LITTLE cluster for half the energy, heavy streams exceed its
/// ceiling and need big. Automatic placement (sustained predicted demand
/// vs cluster ceiling, power-gating the idle cluster) must match the
/// feasible-optimal static choice for every workload *without knowing the
/// workload in advance* — that is exactly what this table checks across a
/// light, a heavy and an ABR-mixed session.
pub fn f20_auto_placement() -> Table {
    use eavs_core::session::ClusterSelect;
    use eavs_net::abr::BufferBasedAbr;
    use eavs_net::radio::RadioModel;
    use eavs_trace::net_gen::NetworkProfile;
    use eavs_video::manifest::Manifest;

    #[derive(Clone, Copy)]
    enum Workload {
        Light,
        Heavy,
        Mixed,
    }
    let workloads = [
        ("light: 480p30 film", Workload::Light),
        ("heavy: 1080p60 sport", Workload::Heavy),
        ("mixed: ABR over LTE", Workload::Mixed),
    ];
    let selects = [
        ("big", ClusterSelect::Big),
        ("little", ClusterSelect::Little),
        ("auto", ClusterSelect::Auto),
    ];
    let mut t = Table::new(&[
        "workload",
        "placement",
        "cpu (J)",
        "late vsyncs",
        "miss %",
        "migrations",
    ]);
    t.set_title("F20: automatic decode placement vs static — 120 s sessions");
    let duration = SimDuration::from_secs(120);
    // One generated LTE trace shared by every Mixed job.
    let trace = NetworkProfile::LteDrive.generate_shared(duration * 3, SEED);
    for (wl_label, workload) in workloads {
        let reports = run_parallel_labeled(
            selects
                .iter()
                .map(|&(sel_label, select)| {
                    let trace = Arc::clone(&trace);
                    let job = move || {
                        let builder = match workload {
                            Workload::Light => StreamingSession::builder(governor("eavs"))
                                .manifest(single_manifest(1_500, 854, 480, 120, 30))
                                .content(ContentProfile::Film),
                            Workload::Heavy => StreamingSession::builder(governor("eavs"))
                                .manifest(single_manifest(6_000, 1920, 1080, 120, 60))
                                .content(ContentProfile::Sport),
                            Workload::Mixed => StreamingSession::builder(governor("eavs"))
                                .manifest(Manifest::standard_ladder(duration, 30))
                                .content(ContentProfile::Sport)
                                .network(trace)
                                .radio(RadioModel::lte())
                                .abr(Box::new(BufferBasedAbr::standard())),
                        };
                        run_session(builder.cluster(select).seed(SEED))
                    };
                    (format!("f20 {wl_label} {sel_label}"), job)
                })
                .collect(),
        );
        for ((label, _), r) in selects.iter().zip(&reports) {
            t.row(&[
                wl_label,
                label,
                &format!("{:.2}", r.cpu_joules()),
                &r.qoe.late_vsyncs.to_string(),
                &format!("{:.3}", r.qoe.deadline_miss_rate() * 100.0),
                &r.migrations.to_string(),
            ]);
        }
    }
    t
}

/// F21: late-frame policy — stall vs drop.
///
/// Under a too-slow governor, stalling stretches the session (playback
/// takes longer than the content) while dropping sacrifices frames to
/// stay on schedule. The governor's job is to make the choice moot: EAVS
/// is near-perfect under either policy; powersave is unwatchable under
/// both, just in different ways.
pub fn f21_late_policy() -> Table {
    use eavs_video::display::LatePolicy;
    let mut t = Table::new(&[
        "governor",
        "policy",
        "cpu (J)",
        "shown",
        "dropped",
        "late",
        "session (s)",
    ]);
    t.set_title("F21: stall vs drop late-frame policy — 60 s of 1080p30 film");
    let manifest = Arc::new(manifest_1080p30(60));
    let policies = [("stall", LatePolicy::Stall), ("drop", LatePolicy::Drop)];
    let jobs = ["powersave", "ondemand", "eavs"]
        .iter()
        .flat_map(|&name| {
            let manifest = Arc::clone(&manifest);
            policies.iter().map(move |&(label, policy)| {
                let manifest = Arc::clone(&manifest);
                let job = move || {
                    let r = run_session(
                        StreamingSession::builder(governor(name))
                            .manifest(manifest)
                            .late_policy(policy)
                            .seed(SEED),
                    );
                    (label, r)
                };
                (format!("f21 {name} {label}"), job)
            })
        })
        .collect();
    for (label, r) in run_parallel_labeled(jobs) {
        t.row(&[
            &r.governor,
            label,
            &format!("{:.2}", r.cpu_joules()),
            &format!("{}/{}", r.qoe.frames_displayed, r.qoe.total_frames),
            &r.qoe.frames_dropped.to_string(),
            &r.qoe.late_vsyncs.to_string(),
            &format!("{:.1}", r.session_length.as_secs_f64()),
        ]);
    }
    t
}

/// F22: every static frequency pin vs EAVS.
///
/// The strongest simple competitor is an *oracle static pin*: the lowest
/// fixed frequency that happens to survive this exact workload — chosen
/// with knowledge no deployed system has. This sweep runs every pin and
/// shows (a) pins below the workload's rate collapse, (b) the best
/// feasible pin is within a few percent of EAVS, (c) EAVS gets there
/// without the oracle knowledge and adapts when the content changes.
pub fn f22_static_pinning() -> Table {
    use eavs_core::session::GovernorChoice;
    use eavs_cpu::soc::SocModel;
    use eavs_governors::Userspace;

    let table = SocModel::Flagship2016.opp_table();
    let mut t = Table::new(&["pin", "cpu (J)", "late vsyncs", "miss %", "session (s)"]);
    t.set_title("F22: static frequency pins vs EAVS — 60 s of 1080p30 film");
    let manifest = Arc::new(manifest_1080p30(60));
    let mut runs: Vec<(String, _)> = Vec::new();
    let reports = run_parallel_labeled(
        (0..table.len())
            .map(|idx| {
                let manifest = Arc::clone(&manifest);
                let job = move || {
                    run_session(
                        StreamingSession::builder(GovernorChoice::Baseline(Box::new(
                            Userspace::new(idx),
                        )))
                        .manifest(manifest)
                        .seed(SEED),
                    )
                };
                (format!("f22 pin {}", table.freq(idx)), job)
            })
            .collect(),
    );
    for (idx, r) in reports.into_iter().enumerate() {
        runs.push((table.freq(idx).to_string(), r));
    }
    runs.push((
        "eavs (no oracle)".to_owned(),
        run_session(
            StreamingSession::builder(governor("eavs"))
                .manifest(manifest_1080p30(60))
                .seed(SEED),
        ),
    ));
    for (label, r) in &runs {
        t.row(&[
            label,
            &format!("{:.2}", r.cpu_joules()),
            &r.qoe.late_vsyncs.to_string(),
            &format!("{:.3}", r.qoe.deadline_miss_rate() * 100.0),
            &format!("{:.1}", r.session_length.as_secs_f64()),
        ]);
    }
    t
}

/// F23: baseline tuning sensitivity.
///
/// The headline comparison uses kernel-default tunables; a fair reviewer
/// asks whether a *tuned* reactive governor closes the gap. This sweep
/// tunes each baseline across its main knob and reports every
/// configuration — the best zero-miss reactive configuration still trails
/// EAVS, because no load threshold encodes deadlines.
pub fn f23_baseline_tuning() -> Table {
    use eavs_core::session::GovernorChoice;
    use eavs_governors::{
        CpufreqGovernor, Interactive, InteractiveTunables, Ondemand, OndemandTunables, Schedutil,
        SchedutilTunables,
    };

    let mut variants: Vec<(String, Box<dyn CpufreqGovernor>)> = Vec::new();
    for up in [70.0, 80.0, 90.0, 95.0] {
        variants.push((
            format!("ondemand up={up:.0}"),
            Box::new(Ondemand::with_tunables(OndemandTunables {
                up_threshold: up,
                ..OndemandTunables::default()
            })),
        ));
    }
    for target in [70.0, 80.0, 90.0, 95.0] {
        variants.push((
            format!("interactive target={target:.0}"),
            Box::new(Interactive::with_tunables(InteractiveTunables {
                target_load: target,
                ..InteractiveTunables::default()
            })),
        ));
    }
    for headroom in [1.05, 1.25, 1.5] {
        variants.push((
            format!("schedutil headroom={headroom:.2}"),
            Box::new(Schedutil::with_tunables(SchedutilTunables {
                headroom,
                ..SchedutilTunables::default()
            })),
        ));
    }

    let mut t = Table::new(&[
        "configuration",
        "cpu (J)",
        "late vsyncs",
        "miss %",
        "mean freq",
    ]);
    t.set_title("F23: tuned baselines vs EAVS — 60 s of 1080p30 film");
    let manifest = Arc::new(manifest_1080p30(60));
    let reports = run_parallel_labeled(
        variants
            .into_iter()
            .map(|(label, gov)| {
                let manifest = Arc::clone(&manifest);
                let job_label = format!("f23 {label}");
                let job = move || {
                    let r = run_session(
                        StreamingSession::builder(GovernorChoice::Baseline(gov))
                            .manifest(manifest)
                            .seed(SEED),
                    );
                    (label, r)
                };
                (job_label, job)
            })
            .collect(),
    );
    let eavs_report = run_session(
        StreamingSession::builder(governor("eavs"))
            .manifest(manifest_1080p30(60))
            .seed(SEED),
    );
    for (label, r) in reports
        .iter()
        .map(|(l, r)| (l.as_str(), r))
        .chain(std::iter::once(("eavs (defaults)", &eavs_report)))
    {
        t.row(&[
            label,
            &format!("{:.2}", r.cpu_joules()),
            &r.qoe.late_vsyncs.to_string(),
            &format!("{:.3}", r.qoe.deadline_miss_rate() * 100.0),
            &r.mean_freq.to_string(),
        ]);
    }
    t
}
