//! Regenerates F27 (fleet throughput vs `EAVS_JOBS`; see DESIGN.md §12).
//!
//! The work-stealing pool is sized once per process, so the sweep cannot
//! vary `EAVS_JOBS` in-process: the parent re-executes *itself* with
//! `--child <csv>` under each jobs setting, times each child, and
//! asserts that every child's population CSV is byte-identical — the
//! determinism-across-parallelism guarantee, measured rather than
//! assumed. Timing rows land in `results/fleet/f27_fleet_scaling.csv`.

use eavs_fleet::{CampaignSpec, RunOptions};
use eavs_metrics::table::{fmt_f, Table};
use std::time::Instant;

/// The fixed workload both parent and children agree on.
fn scaling_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::smoke();
    spec.name = "f27-scaling".to_owned();
    spec.sessions = 1_000;
    spec.shard_size = 50;
    spec
}

fn child(out_csv: &str) {
    let spec = scaling_spec();
    let outcome = eavs_bench::fleet::run_campaign(&spec, &RunOptions::default())
        .expect("scaling campaign spec is valid");
    std::fs::write(out_csv, outcome.aggregate.table(&spec).to_csv()).expect("write child csv");
    // The parent parses this line; keep it first on stdout.
    println!(
        "wall_s={} session_runs={}",
        outcome.wall_s, outcome.session_runs
    );
}

fn parent() {
    let exe = std::env::current_exe().expect("current_exe");
    let tmp = std::env::temp_dir().join(format!("eavs-f27-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create temp dir");
    let spec = scaling_spec();

    let mut table = Table::new(&[
        "jobs",
        "wall (s)",
        "session-runs",
        "sessions/sec",
        "speedup",
        "csv identical",
    ]);
    table.set_title(format!(
        "F27: fleet throughput vs EAVS_JOBS — campaign '{}', {} sessions × {} governors",
        spec.name,
        spec.sessions,
        spec.governors.len()
    ));

    let mut reference: Option<String> = None;
    let mut base_rate: Option<f64> = None;
    for jobs in [1u32, 2, 4, 8] {
        let csv_path = tmp.join(format!("jobs{jobs}.csv"));
        let started = Instant::now();
        let output = std::process::Command::new(&exe)
            .arg("--child")
            .arg(&csv_path)
            .env("EAVS_JOBS", jobs.to_string())
            .output()
            .expect("spawn child");
        let wall = started.elapsed().as_secs_f64();
        assert!(
            output.status.success(),
            "child (EAVS_JOBS={jobs}) failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        let session_runs: u64 = stdout
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("session_runs=")?.parse().ok())
            .expect("child reports session_runs");

        let csv = std::fs::read_to_string(&csv_path).expect("read child csv");
        let identical = match &reference {
            None => {
                reference = Some(csv);
                true
            }
            Some(r) => *r == csv,
        };
        assert!(
            identical,
            "EAVS_JOBS={jobs} produced a different population CSV — parallelism leaked into results"
        );

        let rate = session_runs as f64 / wall;
        let speedup = rate / *base_rate.get_or_insert(rate);
        table.row(&[
            &jobs.to_string(),
            &fmt_f(wall, 2),
            &session_runs.to_string(),
            &fmt_f(rate, 0),
            &fmt_f(speedup, 2),
            "yes",
        ]);
    }
    std::fs::remove_dir_all(&tmp).ok();

    println!("{}", table.render());
    let dir = eavs_bench::harness::results_dir().join("fleet");
    eavs_bench::harness::emit_into(&dir, "f27_fleet_scaling", &table);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--child") => child(args.get(2).expect("--child needs an output path")),
        _ => parent(),
    }
}
