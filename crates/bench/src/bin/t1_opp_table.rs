//! Regenerates experiment `t1_opp_table` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "t1_opp_table")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
