//! Time-in-state accounting.
//!
//! Tracks how long a component spends in each of a set of discrete states —
//! exactly the quantity Linux exposes as
//! `/sys/.../cpufreq/stats/time_in_state` and the paper's frequency-residency
//! figure (F12) plots.

use eavs_sim::time::{SimDuration, SimTime};

/// Tracks residency over states identified by dense indices.
///
/// ```
/// use eavs_metrics::residency::ResidencyTracker;
/// use eavs_sim::time::{SimDuration, SimTime};
///
/// let mut r = ResidencyTracker::new(3, 0, SimTime::ZERO);
/// r.switch_to(1, SimTime::from_secs(2));
/// r.switch_to(2, SimTime::from_secs(3));
/// let res = r.snapshot(SimTime::from_secs(10));
/// assert_eq!(res[0], SimDuration::from_secs(2));
/// assert_eq!(res[1], SimDuration::from_secs(1));
/// assert_eq!(res[2], SimDuration::from_secs(7));
/// ```
#[derive(Clone, Debug)]
pub struct ResidencyTracker {
    times: Vec<SimDuration>,
    current: usize,
    since: SimTime,
    transitions: u64,
}

impl ResidencyTracker {
    /// Creates a tracker over `num_states` states, starting in
    /// `initial_state` at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_state >= num_states` or `num_states == 0`.
    pub fn new(num_states: usize, initial_state: usize, start: SimTime) -> Self {
        assert!(num_states > 0, "tracker needs at least one state");
        assert!(
            initial_state < num_states,
            "initial state {initial_state} out of range {num_states}"
        );
        ResidencyTracker {
            times: vec![SimDuration::ZERO; num_states],
            current: initial_state,
            since: start,
            transitions: 0,
        }
    }

    /// The current state index.
    pub fn current_state(&self) -> usize {
        self.current
    }

    /// Number of state *changes* recorded (self-transitions don't count).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Switches to `state` at time `now`, attributing the elapsed interval
    /// to the previous state. Switching to the current state is a no-op
    /// apart from advancing the accounting point.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range or `now` precedes the last update.
    pub fn switch_to(&mut self, state: usize, now: SimTime) {
        assert!(state < self.times.len(), "state {state} out of range");
        let elapsed = now
            .checked_duration_since(self.since)
            .expect("residency clock went backwards");
        self.times[self.current] += elapsed;
        if state != self.current {
            self.transitions += 1;
            self.current = state;
        }
        self.since = now;
    }

    /// Returns per-state residency including the open interval up to `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last update.
    pub fn snapshot(&self, now: SimTime) -> Vec<SimDuration> {
        let mut times = Vec::with_capacity(self.times.len());
        self.snapshot_into(now, &mut times);
        times
    }

    /// Fills `out` with per-state residency (see [`snapshot`](Self::snapshot)),
    /// reusing the vector's capacity.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last update.
    pub fn snapshot_into(&self, now: SimTime, out: &mut Vec<SimDuration>) {
        out.clear();
        out.extend_from_slice(&self.times);
        let open = now
            .checked_duration_since(self.since)
            .expect("residency clock went backwards");
        out[self.current] += open;
    }

    /// Total tracked time up to `now` (sum of all states).
    pub fn total(&self, now: SimTime) -> SimDuration {
        self.snapshot(now).into_iter().sum()
    }

    /// Fraction of time in `state` up to `now` (0 if no time has elapsed).
    pub fn fraction(&self, state: usize, now: SimTime) -> f64 {
        let snap = self.snapshot(now);
        let total: SimDuration = snap.iter().copied().sum();
        if total.is_zero() {
            0.0
        } else {
            snap[state].ratio(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> SimTime {
        SimTime::from_secs(n)
    }

    #[test]
    fn attributes_intervals_to_previous_state() {
        let mut r = ResidencyTracker::new(2, 0, s(0));
        r.switch_to(1, s(5));
        r.switch_to(0, s(7));
        let snap = r.snapshot(s(10));
        assert_eq!(snap[0], SimDuration::from_secs(8));
        assert_eq!(snap[1], SimDuration::from_secs(2));
        assert_eq!(r.transitions(), 2);
    }

    #[test]
    fn self_transition_is_not_counted() {
        let mut r = ResidencyTracker::new(2, 0, s(0));
        r.switch_to(0, s(3));
        assert_eq!(r.transitions(), 0);
        assert_eq!(r.snapshot(s(4))[0], SimDuration::from_secs(4));
    }

    #[test]
    fn snapshot_total_equals_elapsed() {
        let mut r = ResidencyTracker::new(3, 1, s(2));
        r.switch_to(2, s(4));
        r.switch_to(0, s(9));
        assert_eq!(r.total(s(20)), SimDuration::from_secs(18));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut r = ResidencyTracker::new(3, 0, s(0));
        r.switch_to(1, s(1));
        r.switch_to(2, s(4));
        let total: f64 = (0..3).map(|st| r.fraction(st, s(10))).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((r.fraction(2, s(10)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_fraction_is_zero() {
        let r = ResidencyTracker::new(2, 0, s(5));
        assert_eq!(r.fraction(0, s(5)), 0.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_going_backwards_panics() {
        let mut r = ResidencyTracker::new(2, 0, s(5));
        r.switch_to(1, s(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_state_panics() {
        let mut r = ResidencyTracker::new(2, 0, s(0));
        r.switch_to(2, s(1));
    }
}
