//! The no-op guarantee: an *empty* fault plan (and the default retry
//! policy) must be invisible — same fingerprint, same event count, same
//! report, field for field — across governors and player configurations.
//! This is what lets the fault subsystem ride in every build without
//! perturbing a single committed figure.

use eavs::faults::FaultPlan;
use eavs::net::download::RetryPolicy;
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::predictor_by_name;
use eavs::scaling::report::SessionReport;
use eavs::scaling::session::{GovernorChoice, SessionBuilder, StreamingSession};
use eavs::sim::time::SimDuration;
use eavs::tracegen::content::ContentProfile;
use eavs::video::manifest::Manifest;
use eavs_governors::by_name;

fn governor(name: &str) -> GovernorChoice {
    if name == "eavs" {
        GovernorChoice::Eavs(EavsGovernor::new(
            predictor_by_name("hybrid").unwrap(),
            EavsConfig::default(),
        ))
    } else {
        GovernorChoice::Baseline(by_name(name).unwrap())
    }
}

fn base(gov: &str, seed: u64) -> SessionBuilder {
    StreamingSession::builder(governor(gov))
        .manifest(Manifest::single(
            3_000,
            1280,
            720,
            SimDuration::from_secs(8),
            30,
        ))
        .content(ContentProfile::Sport)
        .seed(seed)
}

fn assert_reports_identical(plain: &SessionReport, faulted: &SessionReport, label: &str) {
    // Debug covers every field, including the energy floats and the
    // fault counters (which must all be zero on both sides).
    assert_eq!(
        format!("{plain:?}"),
        format!("{faulted:?}"),
        "{label}: empty fault plan changed the report"
    );
    assert_eq!(faulted.download_retries, 0, "{label}");
    assert_eq!(faulted.download_timeouts, 0, "{label}");
    assert_eq!(faulted.corrupt_downloads, 0, "{label}");
    assert_eq!(faulted.segments_abandoned, 0, "{label}");
    assert_eq!(faulted.decode_spikes, 0, "{label}");
    assert_eq!(faulted.decode_stalls, 0, "{label}");
    assert_eq!(faulted.panic_races, 0, "{label}");
}

#[test]
fn empty_plan_is_invisible_across_governors() {
    for gov in ["performance", "powersave", "ondemand", "schedutil", "eavs"] {
        let plain = base(gov, 11).run();
        let faulted = base(gov, 11)
            .faults(FaultPlan::default())
            .retry(RetryPolicy::default())
            .run();
        assert_reports_identical(&plain, &faulted, gov);
    }
}

#[test]
fn empty_plan_shares_the_fingerprint() {
    // Same digest ⇒ the session cache will serve a faultless session's
    // report for an empty-plan builder and vice versa — which is only
    // sound because the reports are identical (test above).
    let plain = base("eavs", 23).fingerprint().expect("cacheable");
    let faulted = base("eavs", 23)
        .faults(FaultPlan::default())
        .fingerprint()
        .expect("cacheable");
    assert_eq!(plain, faulted);

    // A non-empty plan must split off immediately.
    let storm = base("eavs", 23)
        .faults(FaultPlan::standard_storm())
        .fingerprint()
        .expect("cacheable");
    assert_ne!(plain, storm);
}

#[test]
fn empty_plan_processes_the_same_events() {
    // Stronger than report equality alone: the simulator must schedule
    // the exact same event stream (no dormant watchdogs, no ambient
    // tick, no extra governor decisions).
    let plain = base("eavs", 31).record_series(true).run();
    let faulted = base("eavs", 31)
        .record_series(true)
        .faults(FaultPlan::default())
        .run();
    assert_eq!(plain.events_processed, faulted.events_processed);
    assert_eq!(plain.freq_series, faulted.freq_series);
    assert_eq!(plain.buffer_series, faulted.buffer_series);
}
