//! Regenerates experiment `f28_device_breakdown` (see DESIGN.md §16).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f28_device_breakdown")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
