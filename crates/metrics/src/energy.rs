//! Energy accounting.
//!
//! Components integrate power over simulated time into named accounts; the
//! session report sums them. Keeping a per-component breakdown lets the
//! experiments separate CPU energy (the paper's primary metric) from radio
//! and baseline system energy.

use eavs_sim::time::SimDuration;
use std::fmt;

/// Joules attributed to named components.
///
/// ```
/// use eavs_metrics::energy::EnergyAccount;
/// use eavs_sim::time::SimDuration;
///
/// let mut acc = EnergyAccount::new();
/// acc.add_power("cpu", 2.0, SimDuration::from_secs(3)); // 2 W for 3 s
/// acc.add_joules("radio", 1.5);
/// assert!((acc.joules("cpu") - 6.0).abs() < 1e-12);
/// assert!((acc.total() - 7.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnergyAccount {
    accounts: Vec<(String, f64)>,
}

impl EnergyAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        EnergyAccount {
            accounts: Vec::new(),
        }
    }

    /// Adds `joules` to `component`.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or NaN — energy only accumulates.
    pub fn add_joules(&mut self, component: &str, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "bad energy increment {joules} J for {component}"
        );
        if let Some(entry) = self.accounts.iter_mut().find(|(c, _)| c == component) {
            entry.1 += joules;
        } else {
            self.accounts.push((component.to_owned(), joules));
        }
    }

    /// Adds `watts × duration` to `component`.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or NaN.
    pub fn add_power(&mut self, component: &str, watts: f64, dt: SimDuration) {
        assert!(
            watts.is_finite() && watts >= 0.0,
            "bad power {watts} W for {component}"
        );
        self.add_joules(component, watts * dt.as_secs_f64());
    }

    /// Energy attributed to `component` so far (0 if unseen).
    pub fn joules(&self, component: &str) -> f64 {
        self.accounts
            .iter()
            .find(|(c, _)| c == component)
            .map_or(0.0, |(_, j)| *j)
    }

    /// Total energy across components.
    pub fn total(&self) -> f64 {
        self.accounts.iter().map(|(_, j)| j).sum()
    }

    /// Iterates `(component, joules)` in first-seen order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.accounts.iter().map(|(c, j)| (c.as_str(), *j))
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        for (c, j) in other.iter() {
            self.add_joules(c, j);
        }
    }

    /// Average power of `component` over a window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn mean_power(&self, component: &str, window: SimDuration) -> f64 {
        assert!(!window.is_zero(), "zero window");
        self.joules(component) / window.as_secs_f64()
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (c, j) in self.iter() {
            writeln!(f, "{c:>12}: {j:10.3} J")?;
        }
        write!(f, "{:>12}: {:10.3} J", "total", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_component() {
        let mut acc = EnergyAccount::new();
        acc.add_joules("cpu", 1.0);
        acc.add_joules("cpu", 2.0);
        acc.add_joules("radio", 4.0);
        assert_eq!(acc.joules("cpu"), 3.0);
        assert_eq!(acc.joules("radio"), 4.0);
        assert_eq!(acc.joules("display"), 0.0);
        assert_eq!(acc.total(), 7.0);
    }

    #[test]
    fn power_integration() {
        let mut acc = EnergyAccount::new();
        acc.add_power("cpu", 1.5, SimDuration::from_millis(2000));
        assert!((acc.joules("cpu") - 3.0).abs() < 1e-12);
        acc.add_power("cpu", 0.0, SimDuration::from_secs(100));
        assert!((acc.joules("cpu") - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_components() {
        let mut a = EnergyAccount::new();
        a.add_joules("cpu", 1.0);
        let mut b = EnergyAccount::new();
        b.add_joules("cpu", 2.0);
        b.add_joules("radio", 5.0);
        a.merge(&b);
        assert_eq!(a.joules("cpu"), 3.0);
        assert_eq!(a.joules("radio"), 5.0);
    }

    #[test]
    fn mean_power_over_window() {
        let mut acc = EnergyAccount::new();
        acc.add_joules("cpu", 10.0);
        assert!((acc.mean_power("cpu", SimDuration::from_secs(5)) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad energy")]
    fn negative_energy_rejected() {
        EnergyAccount::new().add_joules("cpu", -1.0);
    }

    #[test]
    fn display_contains_total() {
        let mut acc = EnergyAccount::new();
        acc.add_joules("cpu", 2.5);
        let text = acc.to_string();
        assert!(text.contains("cpu"));
        assert!(text.contains("total"));
    }
}
