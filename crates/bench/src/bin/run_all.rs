//! Regenerates every table and figure of the evaluation (DESIGN.md §4),
//! printing each and writing CSVs under `results/`.
//!
//! Experiments are submitted to the shared work-stealing pool as top-level
//! jobs; each experiment's internal sweep fans out through the same pool, so
//! the whole suite interleaves without per-figure barriers. Results are
//! printed and written in presentation order regardless of completion order.

fn main() {
    let started = std::time::Instant::now();
    let jobs = eavs_bench::all_experiments()
        .into_iter()
        .map(|(id, f)| {
            let job = move || {
                let table = f();
                eprintln!("== {id} done ==");
                (id, table)
            };
            (id.to_string(), job)
        })
        .collect();
    for (id, table) in eavs_bench::harness::run_parallel_labeled(jobs) {
        eavs_bench::harness::emit(id, &table);
    }
    eprintln!(
        "all experiments regenerated in {:.1} s",
        started.elapsed().as_secs_f64()
    );
}
