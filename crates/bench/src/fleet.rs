//! Fleet campaigns on the bench infrastructure (F26/F27).
//!
//! `eavs-fleet` is engine-agnostic: it asks its caller for a shard
//! runner. This module supplies the production one — the shared
//! work-stealing pool ([`crate::executor`]) with every session routed
//! through the content-addressed cache ([`crate::cache`]). Campaign
//! specs draw from small trace/seed pools, so identical builders recur
//! across the population and the cache turns most session-runs into
//! lookups.

use std::sync::Arc;

use eavs_core::report::SessionReport;
use eavs_core::session::SessionBuilder;
use eavs_fleet::{CampaignOutcome, CampaignSpec, RunOptions};
use eavs_metrics::table::Table;

/// The production shard runner: labeled jobs go through the wave
/// scheduler ([`crate::cache::run_sessions`]), which dedupes against
/// the session cache, replays decision timelines across knob variants,
/// and — when `EAVS_BATCH` selects a width — runs misses through the
/// batched SoA kernel.
pub fn pooled_runner(jobs: Vec<(String, SessionBuilder)>) -> Vec<Arc<SessionReport>> {
    crate::cache::run_sessions(jobs)
}

/// Runs (or resumes) a campaign on the pooled, cached runner.
///
/// # Errors
///
/// Propagates [`eavs_fleet::run_campaign`] errors (invalid spec,
/// incompatible or corrupt checkpoint, checkpoint I/O).
pub fn run_campaign(spec: &CampaignSpec, opts: &RunOptions) -> Result<CampaignOutcome, String> {
    eavs_fleet::run_campaign(spec, opts, &pooled_runner)
}

/// F26: population energy/QoE distributions per governor — the global
/// campaign (10k sessions × 5 governors) folded into one table.
///
/// Not registered in [`crate::all_experiments`]: fleet figures land
/// under `results/fleet/` on their own cadence, not in the per-figure
/// golden set.
pub fn f26_fleet_population() -> Table {
    let spec = CampaignSpec::global();
    let outcome =
        run_campaign(&spec, &RunOptions::default()).expect("global campaign spec is valid");
    outcome.aggregate.table(&spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eavs_fleet::CampaignStatus;

    #[test]
    fn pooled_campaign_matches_serial_campaign() {
        let mut spec = CampaignSpec::smoke();
        spec.name = "pooled-vs-serial".to_owned();
        spec.sessions = 6;
        spec.shard_size = 2;
        let pooled = run_campaign(&spec, &RunOptions::default()).unwrap();
        let serial = eavs_fleet::run_campaign(
            &spec,
            &RunOptions::default(),
            &eavs_fleet::campaign::serial_runner,
        )
        .unwrap();
        assert_eq!(pooled.status, CampaignStatus::Complete);
        assert_eq!(pooled.aggregate, serial.aggregate);
        assert_eq!(
            pooled.aggregate.table(&spec).to_csv(),
            serial.aggregate.table(&spec).to_csv()
        );
    }
}
