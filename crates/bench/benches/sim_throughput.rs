//! Simulator kernel throughput: events per second through the engine and
//! raw queue operations.
//!
//! The `legacy_*` benchmarks drive an inline copy of the pre-slab queue
//! (`BinaryHeap` keys + `HashMap` payloads + `HashSet` tombstones) so the
//! before/after effect of the slab rewrite stays measurable from this tree
//! alone. Keep them in sync with nothing — they are a frozen baseline.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use eavs_sim::prelude::*;

struct PingPong {
    remaining: u64,
}

impl World for PingPong {
    type Event = ();
    fn handle(&mut self, sched: &mut Scheduler<()>, _: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(SimDuration::from_micros(10), ());
        }
    }
}

/// The seed's hash-based event queue, frozen as a benchmark baseline.
struct LegacyQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    entries: HashMap<u64, (SimTime, E)>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> LegacyQueue<E> {
    fn new() -> Self {
        LegacyQueue {
            heap: BinaryHeap::new(),
            entries: HashMap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    fn push(&mut self, time: SimTime, event: E) -> u64 {
        let id = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(id, (time, event));
        self.heap.push(Reverse((time, id)));
        id
    }

    fn cancel(&mut self, id: u64) -> bool {
        if self.entries.remove(&id).is_some() {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(&Reverse((_, id))) = self.heap.peek() {
            if self.cancelled.remove(&id) {
                self.heap.pop();
            } else {
                break;
            }
        }
        let Reverse((time, id)) = self.heap.pop()?;
        let (_, event) = self.entries.remove(&id).expect("live entry");
        Some((time, event))
    }
}

fn pseudo_time(i: u64) -> SimTime {
    SimTime::from_nanos((i.wrapping_mul(2_654_435_761)) % 1_000_000)
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("event_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(PingPong { remaining: N });
            sim.scheduler().schedule_at(SimTime::ZERO, ());
            sim.run();
            black_box(sim.now())
        })
    });

    group.throughput(Throughput::Elements(10_000));
    group.bench_function("queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(pseudo_time(i), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });

    // Schedule-then-cancel churn: the pattern the session inner loop performs
    // for every frame (decode timer re-armed, vsync timer cancelled/re-set).
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("queue_cancel_churn_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                let keep = q.push(pseudo_time(i), i);
                let victim = q.push(pseudo_time(i + 7), i + 7);
                assert!(q.cancel(victim));
                if i % 2 == 0 {
                    if let Some((_, v)) = q.pop() {
                        acc = acc.wrapping_add(v);
                    }
                } else {
                    black_box(keep);
                }
            }
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    group.finish();

    let mut legacy = c.benchmark_group("sim_legacy");
    legacy.throughput(Throughput::Elements(10_000));
    legacy.bench_function("queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = LegacyQueue::new();
            for i in 0..10_000u64 {
                q.push(pseudo_time(i), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });

    legacy.throughput(Throughput::Elements(10_000));
    legacy.bench_function("queue_cancel_churn_10k", |b| {
        b.iter(|| {
            let mut q = LegacyQueue::new();
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                let keep = q.push(pseudo_time(i), i);
                let victim = q.push(pseudo_time(i + 7), i + 7);
                assert!(q.cancel(victim));
                if i % 2 == 0 {
                    if let Some((_, v)) = q.pop() {
                        acc = acc.wrapping_add(v);
                    }
                } else {
                    black_box(keep);
                }
            }
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    legacy.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
