//! Cross-crate integration tests: full sessions exercising the CPU model,
//! video pipeline, network, governors and the EAVS core together.

use eavs::net::abr::{BufferBasedAbr, RateBasedAbr};
use eavs::net::bandwidth::BandwidthTrace;
use eavs::net::radio::RadioModel;
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::{predictor_by_name, Hybrid, PREDICTOR_NAMES};
use eavs::scaling::session::{GovernorChoice, StreamingSession};
use eavs::scaling::SessionReport;
use eavs::sim::time::{SimDuration, SimTime};
use eavs::tracegen::content::ContentProfile;
use eavs::tracegen::net_gen::NetworkProfile;
use eavs::video::manifest::Manifest;
use eavs_governors::{by_name, Performance, Powersave, BASELINE_NAMES};

fn manifest_720p(secs: u64) -> Manifest {
    Manifest::single(3_000, 1280, 720, SimDuration::from_secs(secs), 30)
}

fn manifest_1080p(secs: u64) -> Manifest {
    Manifest::single(6_000, 1920, 1080, SimDuration::from_secs(secs), 30)
}

fn eavs() -> GovernorChoice {
    GovernorChoice::Eavs(EavsGovernor::new(
        Box::new(Hybrid::default()),
        EavsConfig::default(),
    ))
}

fn run(gov: GovernorChoice, manifest: Manifest, content: ContentProfile) -> SessionReport {
    StreamingSession::builder(gov)
        .manifest(manifest)
        .content(content)
        .seed(99)
        .run()
}

#[test]
fn every_baseline_governor_completes_a_session() {
    for name in BASELINE_NAMES {
        let report = run(
            GovernorChoice::Baseline(by_name(name).unwrap()),
            manifest_720p(8),
            ContentProfile::Film,
        );
        assert_eq!(
            report.qoe.frames_displayed, report.qoe.total_frames,
            "{name}: did not display every frame"
        );
        assert!(report.cpu_joules() > 0.0, "{name}: no energy recorded");
        assert!(
            report.session_length >= SimDuration::from_secs(8),
            "{name}: session shorter than the content"
        );
    }
}

#[test]
fn eavs_dominance_relations_hold() {
    // The paper's qualitative claims, as inequalities, on all 3 contents.
    for content in ContentProfile::ALL {
        let perf = run(
            GovernorChoice::Baseline(Box::new(Performance)),
            manifest_1080p(20),
            content,
        );
        let eavs_r = run(eavs(), manifest_1080p(20), content);
        // Energy: strictly better than racing at max.
        assert!(
            eavs_r.cpu_joules() < perf.cpu_joules(),
            "{content}: eavs {:.2} J !< performance {:.2} J",
            eavs_r.cpu_joules(),
            perf.cpu_joules()
        );
        // QoE: essentially perfect (sub-0.5% misses, no rebuffering).
        assert!(
            eavs_r.qoe.deadline_miss_rate() < 0.005,
            "{content}: miss rate {:.4}",
            eavs_r.qoe.deadline_miss_rate()
        );
        assert_eq!(eavs_r.qoe.rebuffer_events, 0, "{content}: rebuffered");
        assert_eq!(
            eavs_r.qoe.frames_displayed, eavs_r.qoe.total_frames,
            "{content}: incomplete playback"
        );
    }
}

#[test]
fn eavs_beats_ondemand_and_interactive_on_film() {
    let eavs_r = run(eavs(), manifest_1080p(30), ContentProfile::Film);
    for name in ["ondemand", "interactive"] {
        let base = run(
            GovernorChoice::Baseline(by_name(name).unwrap()),
            manifest_1080p(30),
            ContentProfile::Film,
        );
        let saving = 1.0 - eavs_r.cpu_joules() / base.cpu_joules();
        assert!(
            saving > 0.08,
            "saving vs {name} only {:.1}% ({:.2} vs {:.2} J)",
            saving * 100.0,
            eavs_r.cpu_joules(),
            base.cpu_joules()
        );
    }
}

#[test]
fn powersave_brackets_the_energy_floor_but_wrecks_qoe() {
    let ps = run(
        GovernorChoice::Baseline(Box::new(Powersave)),
        manifest_1080p(15),
        ContentProfile::Film,
    );
    let eavs_r = run(eavs(), manifest_1080p(15), ContentProfile::Film);
    // powersave at the floor cannot decode 1080p in real time.
    assert!(
        ps.qoe.late_vsyncs > 50,
        "powersave misses: {}",
        ps.qoe.late_vsyncs
    );
    assert!(eavs_r.qoe.late_vsyncs <= 2);
    // But per unit time its *power* is the floor.
    assert!(eavs_r.mean_cpu_power() >= ps.mean_cpu_power() * 0.8);
}

#[test]
fn all_predictors_work_inside_the_governor() {
    for name in PREDICTOR_NAMES {
        let gov = GovernorChoice::Eavs(EavsGovernor::new(
            predictor_by_name(name).unwrap(),
            EavsConfig::default(),
        ));
        let report = run(gov, manifest_720p(8), ContentProfile::Sport);
        assert_eq!(
            report.qoe.frames_displayed, report.qoe.total_frames,
            "{name}: incomplete playback"
        );
        assert_eq!(report.governor, format!("eavs/{name}"));
    }
}

#[test]
fn determinism_end_to_end_with_abr_and_lte() {
    let build = || {
        StreamingSession::builder(eavs())
            .manifest(Manifest::standard_ladder(SimDuration::from_secs(30), 30))
            .content(ContentProfile::Film)
            .network(NetworkProfile::LteDrive.generate(SimDuration::from_secs(120), 5))
            .radio(RadioModel::lte())
            .abr(Box::new(BufferBasedAbr::standard()))
            .seed(5)
            .run()
    };
    let a = build();
    let b = build();
    assert_eq!(a.cpu_joules().to_bits(), b.cpu_joules().to_bits());
    assert_eq!(a.radio.energy_j.to_bits(), b.radio.energy_j.to_bits());
    assert_eq!(a.qoe.late_vsyncs, b.qoe.late_vsyncs);
    assert_eq!(a.qoe.bitrate_switches, b.qoe.bitrate_switches);
    assert_eq!(a.events_processed, b.events_processed);
}

#[test]
fn abr_adapts_bitrate_to_bandwidth() {
    // Rate-based ABR over a slow link must choose lower rungs than over a
    // fast one.
    let run_abr = |bps: f64| {
        StreamingSession::builder(eavs())
            .manifest(Manifest::standard_ladder(SimDuration::from_secs(30), 30))
            .network(BandwidthTrace::constant(bps))
            .abr(Box::new(RateBasedAbr::standard()))
            .seed(3)
            .run()
    };
    let slow = run_abr(2e6);
    let fast = run_abr(50e6);
    assert!(
        fast.qoe.mean_bitrate_kbps > 2.0 * slow.qoe.mean_bitrate_kbps,
        "fast {} kbps vs slow {} kbps",
        fast.qoe.mean_bitrate_kbps,
        slow.qoe.mean_bitrate_kbps
    );
    // Both complete playback.
    assert_eq!(slow.qoe.frames_displayed, slow.qoe.total_frames);
    assert_eq!(fast.qoe.frames_displayed, fast.qoe.total_frames);
}

#[test]
fn radio_energy_scales_with_radio_model() {
    let run_radio = |model: RadioModel| {
        StreamingSession::builder(eavs())
            .manifest(manifest_720p(20))
            .radio(model)
            .seed(3)
            .run()
    };
    let wifi = run_radio(RadioModel::wifi());
    let lte = run_radio(RadioModel::lte());
    let umts = run_radio(RadioModel::umts_3g());
    assert!(wifi.radio.energy_j < lte.radio.energy_j);
    assert!(lte.radio.energy_j < umts.radio.energy_j);
    // CPU side is unaffected by the radio model.
    assert_eq!(wifi.cpu_joules().to_bits(), lte.cpu_joules().to_bits());
}

#[test]
fn time_in_state_partitions_session_for_all_governors() {
    for name in ["ondemand", "interactive", "schedutil"] {
        let report = run(
            GovernorChoice::Baseline(by_name(name).unwrap()),
            manifest_720p(10),
            ContentProfile::Film,
        );
        let total: SimDuration = report.time_in_state.iter().map(|&(_, d)| d).sum();
        assert_eq!(total, report.session_length, "{name}");
    }
}

#[test]
fn recorded_series_are_consistent_with_report() {
    let report = StreamingSession::builder(eavs())
        .manifest(manifest_720p(10))
        .record_series(true)
        .seed(3)
        .run();
    let freq = report.freq_series.as_ref().expect("series");
    // Every recorded frequency is an OPP of the SoC.
    let opps: Vec<f64> = report
        .time_in_state
        .iter()
        .map(|&(f, _)| f.mhz() as f64)
        .collect();
    for (_, mhz) in freq.iter() {
        assert!(
            opps.iter().any(|&o| (o - mhz).abs() < 0.5),
            "recorded {mhz} MHz is not an OPP"
        );
    }
    // Buffer level is never negative and bounded by the player cap.
    let buffer = report.buffer_series.as_ref().expect("series");
    for (_, level) in buffer.iter() {
        assert!(
            (0.0..=31.0).contains(&level),
            "buffer {level}s out of range"
        );
    }
}

#[test]
fn horizon_caps_runaway_sessions() {
    // A hopeless network (64 kbps for 3 Mbps content): the session cannot
    // finish, but the run terminates at the horizon with rebuffering
    // recorded.
    let report = StreamingSession::builder(eavs())
        .manifest(manifest_720p(10))
        .network(BandwidthTrace::constant(64e3))
        .horizon(SimTime::from_secs(40))
        .seed(3)
        .run();
    assert!(report.qoe.frames_displayed < report.qoe.total_frames);
    assert!(report.session_length <= SimDuration::from_secs(40));
    // At 64 kbps the startup buffer never fills: playback never begins.
    assert_eq!(report.qoe.frames_displayed, 0);
    assert_eq!(report.qoe.startup_delay, report.session_length);
}

#[test]
fn sysfs_and_direct_paths_agree_across_contents() {
    for content in ContentProfile::ALL {
        let direct = StreamingSession::builder(eavs())
            .manifest(manifest_720p(8))
            .content(content)
            .seed(13)
            .run();
        let sysfs = StreamingSession::builder(eavs())
            .manifest(manifest_720p(8))
            .content(content)
            .seed(13)
            .drive_via_sysfs(true)
            .run();
        assert_eq!(
            direct.cpu_joules().to_bits(),
            sysfs.cpu_joules().to_bits(),
            "{content}"
        );
        assert_eq!(direct.transitions, sysfs.transitions, "{content}");
    }
}
