//! CPU load observation, as seen by sampling governors.
//!
//! Linux's `ondemand`/`conservative`/`interactive` read `/proc/stat`-style
//! cumulative busy counters and compute the busy fraction of each sampling
//! window. [`LoadMonitor`] reproduces that: feed it the cluster's cumulative
//! busy time at each sample instant and it yields [`LoadSample`]s.

use crate::freq::Frequency;
use crate::opp::OppIndex;
use eavs_sim::time::{SimDuration, SimTime};

/// One sampling-window observation handed to a governor.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LoadSample {
    /// Sample instant.
    pub now: SimTime,
    /// Window length since the previous sample.
    pub window: SimDuration,
    /// Fraction of the window the observed core was busy, in `[0, 1]`.
    pub busy_fraction: f64,
    /// Frequency in force during the window.
    pub cur_freq: Frequency,
    /// OPP index in force during the window.
    pub cur_index: OppIndex,
}

impl LoadSample {
    /// Load as a percentage (the unit Linux governor tunables use).
    pub fn load_pct(&self) -> f64 {
        self.busy_fraction * 100.0
    }

    /// Frequency-invariant utilization: busy fraction scaled by the current
    /// frequency, i.e. the clock rate the workload actually consumed.
    /// This is the quantity `schedutil` keys off.
    pub fn consumed_freq(&self) -> Frequency {
        Frequency::from_khz((self.busy_fraction * self.cur_freq.khz() as f64).round() as u32)
    }
}

/// Converts cumulative busy counters into per-window [`LoadSample`]s.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LoadMonitor {
    last_time: SimTime,
    last_busy: SimDuration,
}

impl LoadMonitor {
    /// Creates a monitor with its baseline at `start` / `busy_at_start`.
    pub fn new(start: SimTime, busy_at_start: SimDuration) -> Self {
        LoadMonitor {
            last_time: start,
            last_busy: busy_at_start,
        }
    }

    /// Produces the sample for the window `(previous sample, now]`.
    ///
    /// `busy_total` is the observed core's cumulative busy time at `now`.
    /// Returns `None` for a zero-length window (no time has passed).
    ///
    /// # Panics
    ///
    /// Panics if time or the busy counter went backwards.
    pub fn sample(
        &mut self,
        now: SimTime,
        busy_total: SimDuration,
        cur_freq: Frequency,
        cur_index: OppIndex,
    ) -> Option<LoadSample> {
        let window = now
            .checked_duration_since(self.last_time)
            .expect("load monitor time went backwards");
        let busy = busy_total
            .checked_sub(self.last_busy)
            .expect("busy counter went backwards");
        if window.is_zero() {
            return None;
        }
        self.last_time = now;
        self.last_busy = busy_total;
        let busy_fraction = (busy.as_secs_f64() / window.as_secs_f64()).clamp(0.0, 1.0);
        Some(LoadSample {
            now,
            window,
            busy_fraction,
            cur_freq,
            cur_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    const F: Frequency = Frequency::from_mhz(1000);

    #[test]
    fn computes_window_busy_fraction() {
        let mut m = LoadMonitor::new(t(0), SimDuration::ZERO);
        let s = m.sample(t(100), d(40), F, 1).unwrap();
        assert_eq!(s.window, d(100));
        assert!((s.busy_fraction - 0.4).abs() < 1e-12);
        assert!((s.load_pct() - 40.0).abs() < 1e-9);
        // Next window is relative to the previous sample.
        let s2 = m.sample(t(200), d(140), F, 1).unwrap();
        assert!((s2.busy_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_window_yields_none() {
        let mut m = LoadMonitor::new(t(5), d(1));
        assert_eq!(m.sample(t(5), d(1), F, 0), None);
    }

    #[test]
    fn clamps_fraction_to_unit_interval() {
        // Busy can exceed window with multi-core counters; clamp.
        let mut m = LoadMonitor::new(t(0), SimDuration::ZERO);
        let s = m.sample(t(10), d(25), F, 0).unwrap();
        assert_eq!(s.busy_fraction, 1.0);
    }

    #[test]
    fn consumed_freq_scales_with_load() {
        let s = LoadSample {
            now: t(1),
            window: d(1),
            busy_fraction: 0.5,
            cur_freq: Frequency::from_mhz(2000),
            cur_index: 3,
        };
        assert_eq!(s.consumed_freq(), Frequency::from_mhz(1000));
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn backwards_time_panics() {
        let mut m = LoadMonitor::new(t(10), SimDuration::ZERO);
        m.sample(t(5), SimDuration::ZERO, F, 0);
    }
}
