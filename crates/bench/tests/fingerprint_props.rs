//! Property tests for the session fingerprint: it must be *sound* (equal
//! fingerprints always mean byte-identical reports) and *sensitive* (any
//! single-knob change produces a different fingerprint, so the cache can
//! never serve a stale report for a perturbed configuration).

use eavs_core::session::{ClusterSelect, SessionBuilder, StreamingSession};
use eavs_cpu::soc::SocModel;
use eavs_faults::{
    AmbientStep, Blackout, DecodeSpike, DecoderStall, FaultPlan, RandomFaults, SegmentFault,
};
use eavs_net::abr::FixedAbr;
use eavs_net::download::RetryPolicy;
use eavs_sim::time::{SimDuration, SimTime};
use eavs_trace::content::ContentProfile;
use eavs_video::display::LatePolicy;
use eavs_video::manifest::Manifest;
use proptest::prelude::*;

fn content(i: u8) -> ContentProfile {
    ContentProfile::ALL[i as usize % ContentProfile::ALL.len()]
}

/// A short session parameterized by the proptest-chosen knobs.
fn builder(seed: u64, secs: u64, content_idx: u8, rtt_ms: u64, buffer_s: u64) -> SessionBuilder {
    StreamingSession::builder(eavs_bench::harness::governor("eavs"))
        .manifest(Manifest::single(
            3_000,
            1280,
            720,
            SimDuration::from_secs(secs),
            30,
        ))
        .content(content(content_idx))
        .seed(seed)
        .rtt(SimDuration::from_millis(rtt_ms))
        .max_buffer(SimDuration::from_secs(buffer_s))
}

proptest! {
    /// Soundness: two builders with equal fingerprints produce identical
    /// reports — every field the CSV rows are derived from matches bit
    /// for bit, so a cache hit is indistinguishable from a rerun.
    #[test]
    fn equal_fingerprints_mean_identical_reports(
        seed in 0u64..1_000,
        secs in 2u64..5,
        content_idx in 0u8..8,
        rtt_ms in 10u64..80,
        buffer_s in 4u64..12,
    ) {
        let a = builder(seed, secs, content_idx, rtt_ms, buffer_s);
        let b = builder(seed, secs, content_idx, rtt_ms, buffer_s);
        let fa = a.fingerprint().expect("cacheable");
        let fb = b.fingerprint().expect("cacheable");
        prop_assert_eq!(fa, fb);

        let ra = a.run();
        let rb = b.run();
        prop_assert_eq!(ra.summary(), rb.summary());
        prop_assert_eq!(ra.cpu_energy.busy_j.to_bits(), rb.cpu_energy.busy_j.to_bits());
        prop_assert_eq!(ra.cpu_energy.idle_j.to_bits(), rb.cpu_energy.idle_j.to_bits());
        prop_assert_eq!(ra.radio.energy_j.to_bits(), rb.radio.energy_j.to_bits());
        prop_assert_eq!(ra.transitions, rb.transitions);
        prop_assert_eq!(ra.events_processed, rb.events_processed);
        prop_assert_eq!(&ra.time_in_state, &rb.time_in_state);
        prop_assert_eq!(&*ra.cluster, &*rb.cluster);
    }

    /// Sensitivity: perturbing any single knob yields a fingerprint
    /// distinct from the base configuration's.
    #[test]
    fn single_knob_perturbation_changes_fingerprint(
        seed in 0u64..1_000,
        secs in 2u64..5,
        content_idx in 0u8..8,
        rtt_ms in 10u64..80,
        buffer_s in 4u64..12,
    ) {
        let base = builder(seed, secs, content_idx, rtt_ms, buffer_s)
            .fingerprint()
            .expect("cacheable");

        let mk = || builder(seed, secs, content_idx, rtt_ms, buffer_s);
        let perturbed: Vec<(&str, SessionBuilder)> = vec![
            ("seed", mk().seed(seed + 1)),
            ("content", builder(seed, secs, content_idx + 1, rtt_ms, buffer_s)),
            ("manifest", mk().manifest(Manifest::single(
                3_001, 1280, 720, SimDuration::from_secs(secs), 30))),
            ("soc", mk().soc(SocModel::MidRange)),
            ("governor", StreamingSession::builder(
                eavs_bench::harness::governor("ondemand"))
                .manifest(Manifest::single(3_000, 1280, 720, SimDuration::from_secs(secs), 30))
                .content(content(content_idx))
                .seed(seed)
                .rtt(SimDuration::from_millis(rtt_ms))
                .max_buffer(SimDuration::from_secs(buffer_s))),
            ("rtt", mk().rtt(SimDuration::from_millis(rtt_ms + 1))),
            ("max_buffer", mk().max_buffer(SimDuration::from_secs(buffer_s + 1))),
            ("decoded_cap", mk().decoded_cap(7)),
            ("startup_frames", mk().startup_frames(9)),
            ("resume_frames", mk().resume_frames(11)),
            ("record_series", mk().record_series(true)),
            ("drive_via_sysfs", mk().drive_via_sysfs(true)),
            ("horizon", mk().horizon(SimTime::from_secs(1))),
            ("late_policy", mk().late_policy(LatePolicy::Drop)),
            ("cluster", mk().cluster(ClusterSelect::Little)),
            ("background", mk().background_load(0.2, SimDuration::from_millis(50))),
            // The builder default is FixedAbr rung 0, so rung 1 is the
            // minimal ABR perturbation.
            ("abr", mk().abr(Box::new(FixedAbr::new(1)))),
            // Fault-plan knobs: each list and the randomized profile must
            // perturb the digest on its own.
            ("faults/blackout", mk().faults(FaultPlan {
                blackouts: vec![Blackout {
                    start: SimTime::from_secs(1),
                    duration: SimDuration::from_millis(100),
                }],
                ..FaultPlan::default()
            })),
            ("faults/stall", mk().faults(FaultPlan {
                stalls: vec![SegmentFault::once(0)],
                ..FaultPlan::default()
            })),
            ("faults/corruption", mk().faults(FaultPlan {
                corruption: vec![SegmentFault::once(0)],
                ..FaultPlan::default()
            })),
            ("faults/spike", mk().faults(FaultPlan {
                decode_spikes: vec![DecodeSpike { frame: 3, factor: 2.0 }],
                ..FaultPlan::default()
            })),
            ("faults/decoder_stall", mk().faults(FaultPlan {
                decoder_stalls: vec![DecoderStall {
                    frame: 3,
                    pause: SimDuration::from_millis(40),
                }],
                ..FaultPlan::default()
            })),
            ("faults/ambient", mk().faults(FaultPlan {
                ambient_steps: vec![AmbientStep {
                    at: SimTime::from_secs(1),
                    ambient_c: 40.0,
                }],
                ..FaultPlan::default()
            })),
            ("faults/randomized", mk().faults(FaultPlan {
                randomized: Some(RandomFaults::light(9)),
                ..FaultPlan::default()
            })),
            // Retry-policy knobs.
            ("retry/timeout", mk().retry(RetryPolicy::with_timeout(
                SimDuration::from_secs(2)))),
            ("retry/max_retries", mk().retry(RetryPolicy {
                max_retries: 9,
                ..RetryPolicy::default()
            })),
            ("retry/backoff_base", mk().retry(RetryPolicy {
                backoff_base: SimDuration::from_millis(333),
                ..RetryPolicy::default()
            })),
            ("retry/backoff_factor", mk().retry(RetryPolicy {
                backoff_factor: 3.0,
                ..RetryPolicy::default()
            })),
            ("retry/backoff_cap", mk().retry(RetryPolicy {
                backoff_cap: SimDuration::from_secs(9),
                ..RetryPolicy::default()
            })),
        ];
        for (knob, b) in perturbed {
            let fp = b.fingerprint().expect("cacheable");
            prop_assert!(fp != base, "knob {knob} did not change the fingerprint");
        }

        // The same scripted fault on different *lists* must not collide:
        // a stalled segment 0 is not a corrupt segment 0.
        let stall = mk()
            .faults(FaultPlan { stalls: vec![SegmentFault::once(0)], ..FaultPlan::default() })
            .fingerprint()
            .expect("cacheable");
        let corrupt = mk()
            .faults(FaultPlan { corruption: vec![SegmentFault::once(0)], ..FaultPlan::default() })
            .fingerprint()
            .expect("cacheable");
        prop_assert!(stall != corrupt, "stall and corruption lists collided");

        // And the no-op guarantee at the digest level: an explicitly
        // empty plan hashes exactly like no plan at all.
        let empty = mk().faults(FaultPlan::default()).fingerprint().expect("cacheable");
        prop_assert_eq!(empty, base);
    }
}
