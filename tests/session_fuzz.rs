//! Property-based fuzzing of the whole streaming session: random
//! workloads, governors and player configurations must preserve the
//! system invariants.

use eavs::faults::{
    AmbientStep, Blackout, DecodeSpike, DecoderStall, FaultPlan, RandomFaults, SegmentFault,
};
use eavs::net::download::RetryPolicy;
use eavs::power::{DevicePowerModel, RrcRadioModel};
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::predictor_by_name;
use eavs::scaling::session::{ClusterSelect, GovernorChoice, StreamingSession};
use eavs::sim::rng::SimRng;
use eavs::sim::time::{SimDuration, SimTime};
use eavs::tracegen::content::ContentProfile;
use eavs::video::display::LatePolicy;
use eavs::video::manifest::Manifest;
use eavs_governors::by_name;
use proptest::prelude::*;

fn governor_for(pick: u8) -> GovernorChoice {
    match pick % 6 {
        0 => GovernorChoice::Baseline(by_name("performance").unwrap()),
        1 => GovernorChoice::Baseline(by_name("ondemand").unwrap()),
        2 => GovernorChoice::Baseline(by_name("interactive").unwrap()),
        3 => GovernorChoice::Baseline(by_name("schedutil").unwrap()),
        4 => GovernorChoice::Eavs(EavsGovernor::new(
            predictor_by_name("hybrid").unwrap(),
            EavsConfig::default(),
        )),
        _ => GovernorChoice::Eavs(EavsGovernor::new(
            predictor_by_name("ewma").unwrap(),
            EavsConfig {
                margin: 0.05,
                down_hysteresis: 1,
                ..EavsConfig::default()
            },
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariants that must hold for any configuration:
    /// frame conservation, time partition, energy sanity, bounded session.
    #[test]
    fn session_invariants(
        gov_pick in 0u8..6,
        content_pick in 0u8..3,
        rung in 0u8..3,
        fps_pick in 0u8..2,
        drop in any::<bool>(),
        little in any::<bool>(),
        seed in 1u64..500,
    ) {
        let (kbps, w, h) = [(1_500u32, 854u32, 480u32), (3_000, 1280, 720), (6_000, 1920, 1080)]
            [rung as usize];
        let fps = [30u32, 60][fps_pick as usize];
        let content = ContentProfile::ALL[content_pick as usize];
        let report = StreamingSession::builder(governor_for(gov_pick))
            .manifest(Manifest::single(kbps, w, h, SimDuration::from_secs(6), fps))
            .content(content)
            .late_policy(if drop { LatePolicy::Drop } else { LatePolicy::Stall })
            .cluster(if little { ClusterSelect::Little } else { ClusterSelect::Big })
            .seed(seed)
            .horizon(SimTime::from_secs(120))
            .run();

        // Frame conservation.
        prop_assert!(
            report.qoe.frames_displayed + report.qoe.frames_dropped <= report.qoe.total_frames
        );
        // Time partition.
        let total: SimDuration = report.time_in_state.iter().map(|&(_, d)| d).sum();
        prop_assert_eq!(total, report.session_length);
        // Energy sanity.
        prop_assert!(report.cpu_joules().is_finite() && report.cpu_joules() > 0.0);
        prop_assert!(report.cpu_energy.busy_j >= 0.0 && report.cpu_energy.idle_j >= 0.0);
        prop_assert!(report.radio.energy_j > 0.0);
        // Power within physical bounds of the platform (≤ peak × cores
        // plus generous slack for radio/static accounting).
        prop_assert!(report.mean_cpu_power() < 16.0, "power {}", report.mean_cpu_power());
        // Bounded session.
        prop_assert!(report.session_length <= SimDuration::from_secs(120));
        // Determinism spot check on a second run.
        prop_assert!(report.events_processed > 0);
    }
}

/// Draws a randomized-but-reproducible [`FaultPlan`] from `rng`: a mix
/// of scripted faults (blackouts, per-segment stalls/corruption, decode
/// spikes/stalls, ambient steps) and, half the time, a seeded randomized
/// layer on top.
fn arbitrary_plan(rng: &mut SimRng) -> FaultPlan {
    let mut plan = FaultPlan::default();
    for _ in 0..rng.uniform_u64(0, 3) {
        plan.blackouts.push(Blackout {
            start: SimTime::from_nanos(rng.uniform_u64(0, 10_000_000_000)),
            duration: SimDuration::from_nanos(rng.uniform_u64(1, 4_000_000_000)),
        });
    }
    for _ in 0..rng.uniform_u64(0, 4) {
        plan.stalls.push(SegmentFault {
            segment: rng.uniform_u64(0, 8),
            attempts: rng.uniform_u64(1, 4) as u32,
        });
    }
    for _ in 0..rng.uniform_u64(0, 4) {
        plan.corruption.push(SegmentFault {
            segment: rng.uniform_u64(0, 8),
            attempts: rng.uniform_u64(1, 3) as u32,
        });
    }
    for _ in 0..rng.uniform_u64(0, 6) {
        plan.decode_spikes.push(DecodeSpike {
            frame: rng.uniform_u64(0, 400),
            factor: rng.uniform(1.1, 6.0),
        });
    }
    for _ in 0..rng.uniform_u64(0, 3) {
        plan.decoder_stalls.push(DecoderStall {
            frame: rng.uniform_u64(0, 400),
            pause: SimDuration::from_nanos(rng.uniform_u64(1_000_000, 300_000_000)),
        });
    }
    for _ in 0..rng.uniform_u64(0, 3) {
        plan.ambient_steps.push(AmbientStep {
            at: SimTime::from_nanos(rng.uniform_u64(0, 12_000_000_000)),
            ambient_c: rng.uniform(-5.0, 50.0),
        });
    }
    if rng.bernoulli(0.5) {
        let seed = rng.next_u64();
        plan.randomized = Some(if rng.bernoulli(0.5) {
            RandomFaults::light(seed)
        } else {
            RandomFaults::heavy(seed)
        });
    }
    plan
}

/// Chaos fuzz: sessions under arbitrary fault plans must terminate and
/// keep the bookkeeping invariants — no panics, every frame accounted
/// for, retries within the policy budget, buffer never negative.
///
/// Case count defaults to 64; CI raises it via `EAVS_CHAOS_CASES`.
#[test]
fn chaos_randomized_fault_plans() {
    let cases: u64 = eavs_bench::executor::env_knob("EAVS_CHAOS_CASES").unwrap_or(64);
    // One fixed master seed: the corpus is identical on every run and
    // machine, so a CI failure reproduces locally by case index.
    let mut rng = SimRng::new(0xC4A0_5EED);
    for case in 0..cases {
        let plan = arbitrary_plan(&mut rng);
        let gov_pick = (rng.next_u64() % 6) as u8;
        let seed = rng.uniform_u64(1, 1_000_000);
        let fps = [30u32, 60][(rng.next_u64() % 2) as usize];
        let drop = rng.bernoulli(0.5);
        // Always arm the watchdog: a stalled transfer with no timeout
        // deliberately hangs until the horizon, which is its own test.
        let retry = RetryPolicy {
            timeout: Some(SimDuration::from_nanos(
                rng.uniform_u64(300_000_000, 5_000_000_000),
            )),
            max_retries: rng.uniform_u64(0, 6) as u32,
            backoff_base: SimDuration::from_nanos(rng.uniform_u64(10_000_000, 1_000_000_000)),
            backoff_factor: rng.uniform(1.0, 3.0),
            backoff_cap: SimDuration::from_secs(rng.uniform_u64(1, 10)),
        };
        // Half the cases carry a randomized whole-device power model —
        // brightness and radio tail timer drawn from the same corpus —
        // which must never disturb the invariants below.
        let power = if rng.bernoulli(0.5) {
            let mut model = DevicePowerModel::phone_with_brightness(rng.uniform(0.1, 1.0));
            model.radio = Some(
                RrcRadioModel::lte().with_tail_timer(SimDuration::from_nanos(
                    rng.uniform_u64(100_000_000, 30_000_000_000),
                )),
            );
            model
        } else {
            DevicePowerModel::none()
        };
        let manifest = Manifest::single(3_000, 1280, 720, SimDuration::from_secs(6), fps);
        let frames_per_segment = manifest.frames_per_segment;
        let num_segments = manifest.num_segments;
        let report = StreamingSession::builder(governor_for(gov_pick))
            .manifest(manifest)
            .content(ContentProfile::ALL[(rng.next_u64() % 3) as usize])
            .late_policy(if drop {
                LatePolicy::Drop
            } else {
                LatePolicy::Stall
            })
            .faults(plan.clone())
            .retry(retry)
            .power(power)
            .seed(seed)
            .record_series(true)
            .horizon(SimTime::from_secs(120))
            .run();

        let ctx = || format!("case {case}: plan {plan:?}, retry {retry:?}, seed {seed}");
        // Termination within the horizon (plus the final drain).
        assert!(
            report.session_length <= SimDuration::from_secs(121),
            "{}",
            ctx()
        );
        // Frame conservation: every frame of every *successfully*
        // downloaded segment is decoded, skipped, or still in the
        // pipeline — corruption and abandonment never leak frames.
        assert_eq!(
            report.segments_downloaded * frames_per_segment,
            report.frames_decoded + report.frames_skipped + report.frames_pending,
            "{}",
            ctx()
        );
        // Segment conservation.
        assert!(
            report.segments_downloaded + report.segments_abandoned <= num_segments,
            "{}",
            ctx()
        );
        // Retries within the per-segment budget.
        assert!(
            report.download_retries <= num_segments * u64::from(retry.max_retries),
            "{}",
            ctx()
        );
        // The buffer timeline never goes negative.
        let series = report.buffer_series.as_ref().expect("series recorded");
        assert!(
            series.iter().all(|(_, v)| v >= 0.0),
            "negative buffer: {}",
            ctx()
        );
        // Energy stays physical under faults.
        assert!(
            report.cpu_joules().is_finite() && report.cpu_joules() > 0.0,
            "{}",
            ctx()
        );
        // Whole-device power accounting stays physical too: finite,
        // non-negative, with the RRC residencies partitioning the
        // session exactly — or all-zero when no model is attached.
        if power.is_none() {
            assert_eq!(report.power.total_j(), 0.0, "{}", ctx());
        } else {
            assert!(
                report.power.total_j().is_finite() && report.power.total_j() > 0.0,
                "{}",
                ctx()
            );
            assert!(report.power.radio_j >= 0.0, "{}", ctx());
            assert!(report.power.display_j >= 0.0, "{}", ctx());
            assert!(report.power.decoder_j >= 0.0, "{}", ctx());
            let residency = report.power.radio_idle_time
                + report.power.radio_promo_time
                + report.power.radio_active_time
                + report.power.radio_tail_time;
            assert_eq!(residency, report.session_length, "{}", ctx());
        }
    }
}
