//! Offline drop-in subset of the [proptest](https://crates.io/crates/proptest)
//! property-testing API.
//!
//! This workspace builds in hermetic environments with no registry access, so
//! the upstream crate cannot be fetched. This shim reimplements exactly the
//! surface the test suite uses:
//!
//! - the [`proptest!`] macro (with an optional `#![proptest_config(..)]` header),
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assume!` / `prop_oneof!`,
//! - range, tuple, `Just`, `any::<T>()`, `collection::vec` and string-pattern
//!   strategies.
//!
//! Sampling is deterministic per test (seeded from the test name), so failures
//! reproduce across runs. Unlike upstream there is no shrinking: the failing
//! input is printed verbatim instead.

use std::fmt::Debug;
use std::ops::Range;

pub mod test_runner;

pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Strategy combinators: how random values are generated.
pub mod strategy {
    use super::*;
    use test_runner::TestRng;

    /// A source of random values of one type.
    ///
    /// Unlike upstream there is no value tree / shrinking; a strategy is just
    /// a deterministic sampler over a [`TestRng`].
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value: Debug + Clone;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized + Debug + Clone {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Canonical full-range strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy {self:?}");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (self.start as u128 + draw) as $t
                }
            }
        )*};
    }
    range_strategy_int!(u8, u16, u32, u64, usize);

    macro_rules! range_strategy_signed {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy {self:?}");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    range_strategy_signed!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy {self:?}");
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy {self:?}");
            self.start + (rng.next_unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A / 0);
        (A / 0, B / 1);
        (A / 0, B / 1, C / 2);
        (A / 0, B / 1, C / 2, D / 3);
        (A / 0, B / 1, C / 2, D / 3, E / 4);
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
    }

    /// Uniform choice between boxed alternative strategies; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V: Debug + Clone> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V: Debug + Clone> Union<V> {
        /// Build a union over the given alternatives. Panics if empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V: Debug + Clone> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let pick = (rng.next_u64() as usize) % self.options.len();
            self.options[pick].sample(rng)
        }
    }

    /// String strategy from a regex-like pattern.
    ///
    /// Supports the subset used in this repo: a sequence of `.` (any printable
    /// ASCII) or `[..]` character classes (literal chars and `a-z` ranges),
    /// each optionally followed by `{n}` or `{m,n}` repetition.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom into its alphabet.
            let alphabet: Vec<char> = match chars[i] {
                '.' => {
                    i += 1;
                    (0x20u8..0x7f).map(|b| b as char).collect()
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                        + i;
                    let class = &chars[i + 1..close];
                    i = close + 1;
                    let mut set = Vec::new();
                    let mut j = 0;
                    while j < class.len() {
                        if j + 2 < class.len() && class[j + 1] == '-' {
                            let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
                            assert!(lo <= hi, "bad range in pattern {pattern:?}");
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            set.push(class[j]);
                            j += 1;
                        }
                    }
                    set
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Parse an optional {n} / {m,n} repetition suffix.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repeat bound"),
                        n.trim().parse::<usize>().expect("bad repeat bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repeat bound");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "bad repetition in pattern {pattern:?}");
            let count = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            assert!(
                !alphabet.is_empty(),
                "empty alphabet in pattern {pattern:?}"
            );
            for _ in 0..count {
                out.push(alphabet[(rng.next_u64() as usize) % alphabet.len()]);
            }
        }
        out
    }
}

/// `proptest::collection` equivalents.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors whose length lies in `len` (half-open, like upstream's
    /// `SizeRange` from a `Range<usize>`), mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(
            len.start < len.end,
            "empty length range for collection::vec"
        );
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = self.len.start + (rng.next_u64() as usize) % span;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Uniform choice between several strategies producing the same value type.
///
/// Supports the plain (unweighted) form: `prop_oneof![Just(0u64), Just(100u64)]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fail the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discard the current test case (it does not count toward the case budget)
/// unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = ($($strategy,)+);
                $crate::test_runner::run_cases(
                    &config,
                    stringify!($name),
                    &strategy,
                    |($($arg,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}
