//! SoC presets.
//!
//! OPP tables shaped after published smartphone SoC tables (frequencies and
//! the characteristic superlinear voltage ramps), with power coefficients
//! calibrated so peak cluster power lands in the 2–3.5 W range reported for
//! phone-class big cores. Absolute watts are model parameters, not device
//! measurements — the experiments compare governors on the *same* model, so
//! only the shape matters (see DESIGN.md §2).

use crate::cluster::{Cluster, ClusterConfig};
use crate::cstate::CStateTable;
use crate::opp::OppTable;
use crate::power::CmosPowerModel;
use eavs_sim::time::SimDuration;

/// The SoC models available to experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SocModel {
    /// 2013-class big.LITTLE big cluster (A15-like): 800–1600 MHz, 5 OPPs.
    BigLittle2013,
    /// 2016-class flagship performance cluster: 307–2150 MHz, 10 OPPs.
    Flagship2016,
    /// Mid-range quad: 400–1400 MHz, 4 OPPs.
    MidRange,
}

impl SocModel {
    /// All presets (for sweeps).
    pub const ALL: [SocModel; 3] = [
        SocModel::BigLittle2013,
        SocModel::Flagship2016,
        SocModel::MidRange,
    ];

    /// A short identifier for tables and CSV files.
    pub fn name(self) -> &'static str {
        match self {
            SocModel::BigLittle2013 => "biglittle2013",
            SocModel::Flagship2016 => "flagship2016",
            SocModel::MidRange => "midrange",
        }
    }

    /// The OPP table of the media (video-decoding) cluster.
    pub fn opp_table(self) -> OppTable {
        let pairs: &[(u32, u32)] = match self {
            SocModel::BigLittle2013 => &[
                (800, 900),
                (1000, 975),
                (1200, 1050),
                (1400, 1125),
                (1600, 1212),
            ],
            SocModel::Flagship2016 => &[
                (307, 775),
                (422, 800),
                (556, 825),
                (729, 850),
                (902, 900),
                (1076, 950),
                (1324, 1012),
                (1574, 1075),
                (1863, 1150),
                (2150, 1250),
            ],
            SocModel::MidRange => &[(400, 850), (800, 950), (1100, 1050), (1400, 1150)],
        };
        OppTable::from_mhz_mv(pairs).expect("preset tables are valid")
    }

    /// The power model for the media cluster.
    pub fn power_model(self) -> CmosPowerModel {
        match self {
            // Peak ≈ 0.9e-9 · 1.212² · 1.6e9 + 0.25·1.212 ≈ 2.4 W.
            SocModel::BigLittle2013 => CmosPowerModel::new(0.9e-9, 0.25, 0.08),
            // Peak ≈ 0.75e-9 · 1.25² · 2.15e9 + 0.30·1.25 ≈ 2.9 W.
            SocModel::Flagship2016 => CmosPowerModel::new(0.75e-9, 0.30, 0.10),
            // Peak ≈ 0.8e-9 · 1.15² · 1.4e9 + 0.18·1.15 ≈ 1.7 W.
            SocModel::MidRange => CmosPowerModel::new(0.8e-9, 0.18, 0.06),
        }
    }

    /// The idle-state ladder.
    pub fn cstates(self) -> CStateTable {
        let wfi_w = match self {
            SocModel::BigLittle2013 => 0.22,
            SocModel::Flagship2016 => 0.25,
            SocModel::MidRange => 0.15,
        };
        CStateTable::mobile_default(wfi_w)
    }

    /// Frequency-transition latency (PLL relock + voltage ramp).
    pub fn transition_latency(self) -> SimDuration {
        match self {
            SocModel::BigLittle2013 => SimDuration::from_micros(100),
            SocModel::Flagship2016 => SimDuration::from_micros(50),
            SocModel::MidRange => SimDuration::from_micros(150),
        }
    }

    /// Cores in the media cluster.
    pub fn num_cores(self) -> usize {
        match self {
            SocModel::BigLittle2013 => 4,
            SocModel::Flagship2016 => 2,
            SocModel::MidRange => 4,
        }
    }

    /// A fresh [`ClusterConfig`] for the media cluster, starting at the
    /// slowest OPP (as after boot with `powersave` briefly in force).
    pub fn cluster_config(self) -> ClusterConfig {
        let opps = self.opp_table();
        ClusterConfig {
            name: self.name(),
            initial_index: 0,
            power: Box::new(self.power_model()),
            cstates: self.cstates(),
            num_cores: self.num_cores(),
            transition_latency: self.transition_latency(),
            opps,
        }
    }

    /// Builds the media cluster directly.
    pub fn build_cluster(self) -> Cluster {
        Cluster::new(self.cluster_config())
    }

    /// The LITTLE (efficiency) cluster's OPP table.
    pub fn little_opp_table(self) -> OppTable {
        let pairs: &[(u32, u32)] = match self {
            // A7-class companion cluster.
            SocModel::BigLittle2013 => &[
                (500, 900),
                (600, 925),
                (700, 950),
                (800, 1000),
                (1000, 1050),
                (1200, 1125),
            ],
            // Kryo power cluster (lower ceiling, same low rungs).
            SocModel::Flagship2016 => &[
                (307, 775),
                (422, 800),
                (556, 825),
                (729, 850),
                (902, 900),
                (1132, 950),
                (1363, 1025),
                (1593, 1100),
            ],
            SocModel::MidRange => &[(400, 850), (600, 900), (800, 950), (1000, 1000)],
        };
        OppTable::from_mhz_mv(pairs).expect("preset tables are valid")
    }

    /// The LITTLE cluster's power model (smaller cores: lower switched
    /// capacitance and leakage).
    pub fn little_power_model(self) -> CmosPowerModel {
        match self {
            SocModel::BigLittle2013 => CmosPowerModel::new(0.30e-9, 0.08, 0.03),
            SocModel::Flagship2016 => CmosPowerModel::new(0.35e-9, 0.10, 0.04),
            SocModel::MidRange => CmosPowerModel::new(0.35e-9, 0.07, 0.03),
        }
    }

    /// The LITTLE cluster's name.
    pub fn little_name(self) -> &'static str {
        match self {
            SocModel::BigLittle2013 => "biglittle2013-little",
            SocModel::Flagship2016 => "flagship2016-little",
            SocModel::MidRange => "midrange-little",
        }
    }

    /// A fresh [`ClusterConfig`] for the LITTLE cluster.
    pub fn little_cluster_config(self) -> ClusterConfig {
        let opps = self.little_opp_table();
        ClusterConfig {
            name: self.little_name(),
            initial_index: 0,
            power: Box::new(self.little_power_model()),
            cstates: CStateTable::mobile_default(match self {
                SocModel::BigLittle2013 => 0.08,
                SocModel::Flagship2016 => 0.10,
                SocModel::MidRange => 0.07,
            }),
            num_cores: 4,
            transition_latency: self.transition_latency(),
            opps,
        }
    }

    /// Builds the LITTLE cluster directly.
    pub fn build_little_cluster(self) -> Cluster {
        Cluster::new(self.little_cluster_config())
    }
}

impl std::fmt::Display for SocModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerModel;

    #[test]
    fn all_presets_build() {
        for soc in SocModel::ALL {
            let cluster = soc.build_cluster();
            assert!(cluster.opps().len() >= 4, "{soc} table too small");
            assert!(cluster.num_cores() >= 2);
        }
    }

    #[test]
    fn peak_power_in_phone_range() {
        for soc in SocModel::ALL {
            let table = soc.opp_table();
            let power = soc.power_model();
            let peak = power.active_power(table.opp(table.max_index()));
            assert!(
                (1.0..4.0).contains(&peak),
                "{soc}: peak power {peak:.2} W outside phone range"
            );
            let floor = power.active_power(table.opp(0));
            assert!(floor < peak / 2.0, "{soc}: insufficient dynamic range");
        }
    }

    #[test]
    fn dynamic_energy_per_cycle_grows_with_frequency() {
        // Dynamic energy/cycle = Ceff·V² strictly increases with the OPP
        // (voltage ramps with frequency). Total energy/cycle is U-shaped
        // because leakage-per-cycle shrinks with f — that interior optimum
        // is the crux of the paper, asserted separately below.
        for soc in SocModel::ALL {
            let table = soc.opp_table();
            let power = soc.power_model();
            let mut last = 0.0;
            for opp in table.iter() {
                let e_dyn = power.dynamic_power(*opp) / opp.freq.hz() as f64;
                assert!(
                    e_dyn > last,
                    "{soc}: dynamic energy/cycle not increasing at {opp}"
                );
                last = e_dyn;
            }
        }
    }

    #[test]
    fn top_opp_is_never_the_energy_per_cycle_optimum() {
        // The fastest OPP must cost more energy per cycle than the best
        // OPP in the table — otherwise racing to max would be free and the
        // paper's approach pointless on this model.
        for soc in SocModel::ALL {
            let table = soc.opp_table();
            let power = soc.power_model();
            let e: Vec<f64> = table
                .iter()
                .map(|o| power.active_power(*o) / o.freq.hz() as f64)
                .collect();
            let best = e.iter().cloned().fold(f64::INFINITY, f64::min);
            let top = *e.last().expect("non-empty");
            assert!(
                top > best * 1.15,
                "{soc}: top OPP within 15% of optimal energy/cycle ({e:?})"
            );
        }
    }

    #[test]
    fn little_clusters_build_and_are_cheaper_per_cycle_at_shared_rungs() {
        for soc in SocModel::ALL {
            let little = soc.build_little_cluster();
            assert!(little.opps().len() >= 4);
            // At any frequency both clusters offer, the LITTLE core is
            // cheaper — the premise of big.LITTLE.
            let big_table = soc.opp_table();
            let big_power = soc.power_model();
            let little_table = soc.little_opp_table();
            let little_power = soc.little_power_model();
            for opp in little_table.iter() {
                if let Some(big_idx) = big_table.index_of(opp.freq) {
                    let big_opp = big_table.opp(big_idx);
                    assert!(
                        little_power.active_power(*opp) < big_power.active_power(big_opp),
                        "{soc}: LITTLE not cheaper at {}",
                        opp.freq
                    );
                }
            }
            // But its ceiling is lower.
            assert!(little_table.max_freq() < big_table.max_freq());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = SocModel::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SocModel::ALL.len());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(SocModel::Flagship2016.to_string(), "flagship2016");
    }
}
