//! Governor dispatch cost: dyn trait object vs devirtualized enum vs
//! the vectorized LUT column, at batch widths 1, 8 and 64.
//!
//! All three paths step the same [`DispatchLanes`] workload (every
//! baseline governor, deterministic load stream), so the comparison
//! isolates dispatch and frequency-selection strategy. `bench_report`
//! folds the same measurement into `BENCH_sim.json` as
//! `governor_dispatch`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use eavs_bench::dispatch::{DispatchLanes, WIDTHS};

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("governor_dispatch");
    for width in WIDTHS {
        group.throughput(Throughput::Elements(width as u64));
        let mut lanes = DispatchLanes::new(width);
        group.bench_function(&format!("dyn/w{width}"), |b| {
            b.iter(|| black_box(lanes.step_dyn()))
        });
        let mut lanes = DispatchLanes::new(width);
        group.bench_function(&format!("enum/w{width}"), |b| {
            b.iter(|| black_box(lanes.step_enum()))
        });
        let mut lanes = DispatchLanes::new(width);
        group.bench_function(&format!("lut/w{width}"), |b| {
            b.iter(|| black_box(lanes.step_lut()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
