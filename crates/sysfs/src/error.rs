//! Errors returned by the simulated sysfs interface.

use std::fmt;

/// An error from a sysfs read or write, mirroring the errno a real kernel
/// interface would return.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SysfsError {
    /// The path does not exist (`ENOENT`).
    NotFound(String),
    /// The file exists but cannot be written (`EACCES`).
    NotWritable(String),
    /// The written value was rejected (`EINVAL`).
    InvalidValue {
        /// File that rejected the write.
        path: String,
        /// The offending value.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The operation is not permitted in the current governor/policy state
    /// (`EPERM`) — e.g. writing `scaling_setspeed` outside `userspace`.
    NotPermitted {
        /// File that rejected the operation.
        path: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for SysfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysfsError::NotFound(p) => write!(f, "no such file: {p}"),
            SysfsError::NotWritable(p) => write!(f, "file is read-only: {p}"),
            SysfsError::InvalidValue {
                path,
                value,
                reason,
            } => write!(f, "invalid value {value:?} for {path}: {reason}"),
            SysfsError::NotPermitted { path, reason } => {
                write!(f, "operation not permitted on {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for SysfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SysfsError::NotFound("x".into()).to_string(),
            "no such file: x"
        );
        assert!(SysfsError::InvalidValue {
            path: "f".into(),
            value: "v".into(),
            reason: "r".into()
        }
        .to_string()
        .contains("invalid value"));
        assert!(SysfsError::NotPermitted {
            path: "f".into(),
            reason: "r".into()
        }
        .to_string()
        .contains("not permitted"));
        assert!(SysfsError::NotWritable("f".into())
            .to_string()
            .contains("read-only"));
    }
}
