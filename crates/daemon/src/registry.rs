//! The campaign registry: the coordinator side of the daemon.
//!
//! One [`Registry`] owns every submitted campaign. Work is handed out
//! as **shard claims** (one shard = one `eavs_fleet::run_shard` call)
//! and collected as checkpoint-encoded partial aggregates; local worker
//! threads and remote `eavsd --worker` processes use the exact same
//! claim/complete protocol, so a campaign's result is byte-identical at
//! any worker count:
//!
//! - a shard partial is a pure function of `(spec, shard)` — the
//!   fleet's coordinate-keyed draws guarantee it;
//! - completed partials are buffered in a `BTreeMap` and folded
//!   **strictly in shard order** into the running aggregate, the same
//!   fold `run_campaign` performs, so the merged bits (and therefore
//!   the `eavs-fleet-checkpoint/v1` bytes) match a single-process run;
//! - the fold cursor is checkpointed every N shards to
//!   `<state_dir>/<id>.ckpt` with the spec JSON alongside, so a killed
//!   daemon resumes every in-flight campaign on restart.
//!
//! Claims carry a lease; a worker that dies mid-shard simply lets the
//! lease expire and the shard is re-handed to someone else (re-running
//! a shard is harmless — the fold ignores duplicates).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use eavs_fleet::checkpoint;
use eavs_fleet::progress::ProgressSnapshot;
use eavs_fleet::spec::CampaignSpec;
use eavs_fleet::FleetAggregate;

use crate::codec::{decode_spec, encode_spec};
use crate::json::Value;

/// Coordinator knobs.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Directory holding `<id>.spec.json` + `<id>.ckpt` pairs.
    pub state_dir: PathBuf,
    /// Shards between checkpoint writes (0 behaves as 1).
    pub checkpoint_every: u64,
    /// How long a claimed shard may stay uncompleted before it is
    /// re-handed to another worker.
    pub lease: Duration,
    /// Where the fleet-wide workload prior (`eavs-prior/v1`) persists;
    /// `None` defaults to `<state_dir>/fleet.prior`.
    pub prior_path: Option<PathBuf>,
}

/// Where a campaign stands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Shards are being claimed and folded.
    Running,
    /// All shards folded; the result is final.
    Complete,
    /// Cancelled; no further claims. Completed shards stay checkpointed.
    Cancelled,
    /// A shard failed; the message explains why.
    Failed(String),
}

impl Phase {
    /// The wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Running => "running",
            Phase::Complete => "complete",
            Phase::Cancelled => "cancelled",
            Phase::Failed(_) => "failed",
        }
    }
}

struct CampaignState {
    spec: Arc<CampaignSpec>,
    spec_json: Arc<String>,
    aggregate: FleetAggregate,
    total_shards: u64,
    /// Completed partials waiting for their turn in the in-order fold.
    ready: BTreeMap<u64, FleetAggregate>,
    /// Next never-claimed shard index.
    next_unclaimed: u64,
    /// Outstanding claims: shard → lease expiry deadline.
    leases: BTreeMap<u64, Instant>,
    phase: Phase,
    /// Shards already folded when the campaign was (re)submitted —
    /// recovered from a checkpoint, not executed by this daemon.
    resumed_shards: u64,
    session_runs: u64,
    started: Instant,
    finished: Option<Instant>,
}

impl CampaignState {
    fn elapsed_s(&self) -> f64 {
        let end = self.finished.unwrap_or_else(Instant::now);
        end.duration_since(self.started).as_secs_f64()
    }
}

/// What `POST /campaigns` hands back.
#[derive(Clone, Debug)]
pub struct Submitted {
    /// Campaign id: the spec fingerprint as 32 hex digits.
    pub id: String,
    /// True when the campaign was already known (in memory or resumed
    /// from a checkpoint) rather than started from scratch.
    pub resumed: bool,
    /// Shards already folded at submit time.
    pub shards_done: u64,
    /// Shards in the plan.
    pub shards_total: u64,
}

/// A submit failure, tagged with the HTTP status it maps to.
#[derive(Clone, Debug)]
pub enum SubmitError {
    /// Malformed JSON / unknown fields / invalid spec → 400.
    BadSpec(String),
    /// A state-dir checkpoint exists but belongs to a different
    /// campaign → 409. Never silently re-run.
    CheckpointMismatch(String),
    /// State-dir I/O failed → 500.
    Io(String),
}

/// One claimed shard.
#[derive(Clone)]
pub struct Claim {
    /// Campaign id.
    pub id: String,
    /// Shard index to execute.
    pub shard: u64,
    /// The campaign spec (for local workers).
    pub spec: Arc<CampaignSpec>,
    /// The spec's canonical JSON (for remote workers).
    pub spec_json: Arc<String>,
}

/// The coordinator state shared by the HTTP handler and local workers.
pub struct Registry {
    config: RegistryConfig,
    campaigns: Mutex<BTreeMap<String, CampaignState>>,
    /// The resident fleet-wide workload prior: every campaign that
    /// completes here folds its trained prior in, and clients exchange
    /// it via `GET`/`POST /priors`. Locked strictly after `campaigns`.
    prior: Mutex<eavs_fleet::PriorStore>,
}

/// Formats a campaign id from a spec fingerprint.
pub fn campaign_id(spec: &CampaignSpec) -> String {
    format!("{:032x}", spec.fingerprint().0)
}

impl Registry {
    /// Creates the registry and recovers every campaign whose spec is
    /// persisted in the state dir (resuming from checkpoints where they
    /// exist).
    ///
    /// # Errors
    ///
    /// Returns a message when the state dir cannot be created or a
    /// persisted spec/checkpoint pair is unreadable or inconsistent.
    pub fn open(config: RegistryConfig) -> Result<Registry, String> {
        std::fs::create_dir_all(&config.state_dir)
            .map_err(|e| format!("cannot create {}: {e}", config.state_dir.display()))?;
        let prior_file = config
            .prior_path
            .clone()
            .unwrap_or_else(|| config.state_dir.join("fleet.prior"));
        let prior = if prior_file.exists() {
            eavs_fleet::prior::load(&prior_file)?
        } else {
            eavs_fleet::PriorStore::new()
        };
        let registry = Registry {
            config,
            campaigns: Mutex::new(BTreeMap::new()),
            prior: Mutex::new(prior),
        };
        registry.recover()?;
        Ok(registry)
    }

    fn spec_path(&self, id: &str) -> PathBuf {
        self.config.state_dir.join(format!("{id}.spec.json"))
    }

    fn prior_file(&self) -> PathBuf {
        self.config
            .prior_path
            .clone()
            .unwrap_or_else(|| self.config.state_dir.join("fleet.prior"))
    }

    fn ckpt_path(&self, id: &str) -> PathBuf {
        self.config.state_dir.join(format!("{id}.ckpt"))
    }

    /// Re-admits every persisted campaign after a restart.
    fn recover(&self) -> Result<(), String> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&self.config.state_dir)
            .map_err(|e| format!("cannot read {}: {e}", self.config.state_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".spec.json"))
            })
            .collect();
        entries.sort();
        for path in entries {
            let json = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            self.submit(&json).map_err(|e| {
                format!("recovering {}: {e:?}", path.display())
            })?;
        }
        Ok(())
    }

    /// Admits (or re-attaches to) a campaign described by `spec_json`.
    /// Submission is idempotent: the id is the spec fingerprint, so the
    /// same spec always lands on the same campaign, riding any existing
    /// checkpoint instead of re-running finished shards.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn submit(&self, spec_json: &str) -> Result<Submitted, SubmitError> {
        let spec = decode_spec(spec_json).map_err(SubmitError::BadSpec)?;
        spec.validate().map_err(SubmitError::BadSpec)?;
        let id = campaign_id(&spec);
        let fingerprint = spec.fingerprint().0;

        let mut campaigns = self.campaigns.lock().expect("registry lock");
        if let Some(existing) = campaigns.get(&id) {
            return Ok(Submitted {
                id,
                resumed: true,
                shards_done: existing.aggregate.shards_done,
                shards_total: existing.total_shards,
            });
        }

        let saved = checkpoint::load(&self.ckpt_path(&id)).map_err(SubmitError::Io)?;
        if let Some(saved) = &saved {
            if saved.campaign != fingerprint {
                return Err(SubmitError::CheckpointMismatch(format!(
                    "checkpoint {} belongs to campaign {:032x}, not {id} — refusing to resume",
                    self.ckpt_path(&id).display(),
                    saved.campaign,
                )));
            }
        }
        let resumed = saved.is_some();
        let aggregate = saved.unwrap_or_else(|| FleetAggregate::new(&spec));

        // Persist the canonical encoding (atomic rename) so recovery
        // after a kill re-derives the identical spec and id.
        let canonical = encode_spec(&spec);
        let spec_path = self.spec_path(&id);
        let tmp = spec_path.with_extension("tmp");
        std::fs::write(&tmp, &canonical)
            .and_then(|()| std::fs::rename(&tmp, &spec_path))
            .map_err(|e| SubmitError::Io(format!("persist {}: {e}", spec_path.display())))?;

        let total_shards = spec.num_shards();
        let shards_done = aggregate.shards_done;
        let phase = if shards_done >= total_shards {
            Phase::Complete
        } else {
            Phase::Running
        };
        let now = Instant::now();
        campaigns.insert(
            id.clone(),
            CampaignState {
                spec: Arc::new(spec),
                spec_json: Arc::new(canonical),
                aggregate,
                total_shards,
                ready: BTreeMap::new(),
                next_unclaimed: shards_done,
                leases: BTreeMap::new(),
                phase: phase.clone(),
                resumed_shards: shards_done,
                session_runs: 0,
                started: now,
                finished: (phase == Phase::Complete).then_some(now),
            },
        );
        Ok(Submitted {
            id,
            resumed,
            shards_done,
            shards_total: total_shards,
        })
    }

    /// Hands out the next shard of work, if any: expired leases first
    /// (dead-worker reclaim), then never-claimed shards, scanning
    /// campaigns in id order.
    pub fn claim(&self) -> Option<Claim> {
        let mut campaigns = self.campaigns.lock().expect("registry lock");
        let now = Instant::now();
        let lease = self.config.lease;
        for (id, c) in campaigns.iter_mut() {
            if c.phase != Phase::Running {
                continue;
            }
            // Reclaim the lowest expired lease, if any.
            let expired = c
                .leases
                .iter()
                .find(|(_, deadline)| **deadline <= now)
                .map(|(shard, _)| *shard);
            let shard = match expired {
                Some(shard) => shard,
                None if c.next_unclaimed < c.total_shards => {
                    let s = c.next_unclaimed;
                    c.next_unclaimed += 1;
                    s
                }
                None => continue,
            };
            c.leases.insert(shard, now + lease);
            return Some(Claim {
                id: id.clone(),
                shard,
                spec: Arc::clone(&c.spec),
                spec_json: Arc::clone(&c.spec_json),
            });
        }
        None
    }

    /// Accepts a completed shard partial and folds it in order.
    /// Duplicate completions (a reclaimed shard finishing twice) are
    /// ignored — the partial is a pure function of `(spec, shard)`, so
    /// every copy carries identical bits.
    ///
    /// # Errors
    ///
    /// `Err((status, message))` with 404 for an unknown campaign, 409
    /// for a partial that does not belong to this campaign or an
    /// out-of-range shard, 500 for checkpoint I/O failure.
    pub fn complete(
        &self,
        id: &str,
        shard: u64,
        partial: FleetAggregate,
    ) -> Result<u64, (u16, String)> {
        let mut campaigns = self.campaigns.lock().expect("registry lock");
        let c = campaigns
            .get_mut(id)
            .ok_or((404, format!("unknown campaign {id}")))?;
        if partial.campaign != c.aggregate.campaign {
            return Err((
                409,
                format!(
                    "partial belongs to campaign {:032x}, not {id}",
                    partial.campaign
                ),
            ));
        }
        if shard >= c.total_shards {
            return Err((
                409,
                format!("shard {shard} out of range ({} shards)", c.total_shards),
            ));
        }
        c.leases.remove(&shard);
        if shard < c.aggregate.shards_done || c.ready.contains_key(&shard) {
            return Ok(c.aggregate.shards_done); // duplicate — already folded or queued
        }
        // Session-runs are derived, not reported: a shard's size is a
        // pure function of the spec, so the count stays exact however
        // the work was placed.
        let (start, end) = c.spec.shard_range(shard);
        c.session_runs += (end - start) * c.spec.governors.len() as u64;
        c.ready.insert(shard, partial);

        // Fold strictly in shard order — the exact `run_campaign` fold,
        // so the merged aggregate is bit-identical to a single-process
        // run regardless of completion order.
        let every = self.config.checkpoint_every.max(1);
        let mut folded_to_boundary = false;
        while let Some(partial) = c.ready.remove(&c.aggregate.shards_done) {
            c.aggregate.merge(&partial);
            c.aggregate.shards_done += 1;
            if c.aggregate.shards_done % every == 0 {
                folded_to_boundary = true;
            }
        }
        let done = c.aggregate.shards_done >= c.total_shards;
        if done && c.phase == Phase::Running {
            c.phase = Phase::Complete;
            c.finished = Some(Instant::now());
            // Completed campaigns teach the fleet: fold the campaign's
            // trained workload prior into the resident store and
            // persist it, so later sessions can warm-start from it.
            let mut prior = self.prior.lock().expect("prior lock");
            prior.merge(&c.aggregate.prior);
            eavs_fleet::prior::save(&self.prior_file(), &prior)
                .map_err(|e| (500, format!("prior write failed: {e}")))?;
        }
        if folded_to_boundary || done {
            checkpoint::save(&self.ckpt_path(id), &c.aggregate)
                .map_err(|e| (500, format!("checkpoint write failed: {e}")))?;
        }
        Ok(c.aggregate.shards_done)
    }

    /// Records a shard execution failure: the campaign stops handing
    /// out claims and reports the error.
    pub fn fail(&self, id: &str, shard: u64, message: &str) {
        let mut campaigns = self.campaigns.lock().expect("registry lock");
        if let Some(c) = campaigns.get_mut(id) {
            c.leases.remove(&shard);
            if c.phase == Phase::Running {
                c.phase = Phase::Failed(format!("shard {shard}: {message}"));
                c.finished = Some(Instant::now());
            }
        }
    }

    /// Cancels a running campaign at the shard boundary: no further
    /// claims; completed shards stay checkpointed, so a later submit of
    /// the same spec resumes instead of restarting.
    ///
    /// Returns the progress body, or `None` for an unknown id.
    pub fn cancel(&self, id: &str) -> Option<String> {
        {
            let mut campaigns = self.campaigns.lock().expect("registry lock");
            let c = campaigns.get_mut(id)?;
            if c.phase == Phase::Running {
                c.phase = Phase::Cancelled;
                c.finished = Some(Instant::now());
                let _ = checkpoint::save(&self.ckpt_path(id), &c.aggregate);
            }
        }
        self.progress(id)
    }

    /// The progress body for `GET /campaigns/{id}`, or `None` for an
    /// unknown id.
    pub fn progress(&self, id: &str) -> Option<String> {
        let campaigns = self.campaigns.lock().expect("registry lock");
        let c = campaigns.get(id)?;
        Some(progress_json(id, c).render())
    }

    /// The campaign list for `GET /campaigns`.
    pub fn list(&self) -> String {
        let campaigns = self.campaigns.lock().expect("registry lock");
        Value::Arr(
            campaigns
                .iter()
                .map(|(id, c)| {
                    Value::Obj(vec![
                        ("id".into(), Value::str(id)),
                        ("name".into(), Value::str(&c.spec.name)),
                        ("phase".into(), Value::str(c.phase.name())),
                        ("shards_done".into(), Value::u64(c.aggregate.shards_done)),
                        ("shards_total".into(), Value::u64(c.total_shards)),
                    ])
                })
                .collect(),
        )
        .render()
    }

    /// The final result for `GET /campaigns/{id}/result`: the merged
    /// aggregate in `eavs-fleet-checkpoint/v1` text.
    ///
    /// # Errors
    ///
    /// `Err((status, message))`: 404 for an unknown id, 409 while the
    /// campaign is still running / cancelled / failed.
    pub fn result(&self, id: &str) -> Result<String, (u16, String)> {
        let campaigns = self.campaigns.lock().expect("registry lock");
        let c = campaigns
            .get(id)
            .ok_or((404, format!("unknown campaign {id}")))?;
        match &c.phase {
            Phase::Complete => Ok(checkpoint::encode(&c.aggregate)),
            Phase::Running => Err((
                409,
                format!(
                    "campaign {id} still running ({}/{} shards)",
                    c.aggregate.shards_done, c.total_shards
                ),
            )),
            Phase::Cancelled => Err((409, format!("campaign {id} was cancelled"))),
            Phase::Failed(e) => Err((409, format!("campaign {id} failed: {e}"))),
        }
    }

    /// The `/metrics` page: every campaign's fleet families (grouped so
    /// each family appears exactly once) plus daemon-level gauges.
    /// Scrape-conformant by construction — see
    /// [`eavs_obs::check_conformance`].
    pub fn metrics_page(&self) -> String {
        let campaigns = self.campaigns.lock().expect("registry lock");
        let mut w = eavs_obs::PromWriter::new();
        let pairs: Vec<(&FleetAggregate, &CampaignSpec)> = campaigns
            .values()
            .map(|c| (&c.aggregate, &*c.spec))
            .collect();
        eavs_fleet::prom::write_all_into(&mut w, &pairs);

        w.help("eavsd_campaigns", "Campaigns known to the daemon, by phase.")
            .type_("eavsd_campaigns", "gauge");
        for phase in ["running", "complete", "cancelled", "failed"] {
            let n = campaigns
                .values()
                .filter(|c| c.phase.name() == phase)
                .count();
            w.sample("eavsd_campaigns", &[("phase", phase)], n as f64);
        }
        w.help(
            "eavsd_session_runs_total",
            "Session-runs executed by this daemon (resumed shards excluded).",
        )
        .type_("eavsd_session_runs_total", "counter");
        let runs: u64 = campaigns.values().map(|c| c.session_runs).sum();
        w.sample("eavsd_session_runs_total", &[], runs as f64);
        drop(campaigns);
        w.help(
            "eavsd_prior_entries",
            "Catalog entries (title x content) in the resident fleet prior.",
        )
        .type_("eavsd_prior_entries", "gauge");
        let prior = self.prior.lock().expect("prior lock");
        w.sample("eavsd_prior_entries", &[], prior.len() as f64);
        w.finish()
    }

    /// The resident fleet prior as standalone `eavs-prior/v1` text —
    /// the `GET /priors` body. An empty store encodes (and serves) too,
    /// so a fresh daemon answers with a valid, mergeable document.
    pub fn prior_text(&self) -> String {
        eavs_fleet::prior::encode(&self.prior.lock().expect("prior lock"))
    }

    /// Merges an `eavs-prior/v1` document into the resident store and
    /// persists the result — the `POST /priors` body. Merging is the
    /// same order-free fixed-point fold campaigns use, so pushing the
    /// same document twice is *not* idempotent (evidence accumulates);
    /// it is the caller's contract to push each training run once.
    ///
    /// Returns `(catalog entries, total frames)` after the merge.
    ///
    /// # Errors
    ///
    /// Returns a message for a corrupt/incompatible document or a
    /// persistence failure.
    pub fn merge_prior(&self, text: &str) -> Result<(usize, u64), String> {
        let incoming = eavs_fleet::prior::decode(text)?;
        let mut prior = self.prior.lock().expect("prior lock");
        prior.merge(&incoming);
        eavs_fleet::prior::save(&self.prior_file(), &prior)?;
        Ok((prior.len(), prior.total_frames()))
    }

    /// True when any campaign still has claimable or in-flight work.
    pub fn has_open_work(&self) -> bool {
        let campaigns = self.campaigns.lock().expect("registry lock");
        campaigns.values().any(|c| c.phase == Phase::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eavs_fleet::campaign::{serial_runner, RunOptions};
    use eavs_fleet::{run_campaign, run_shard};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eavsd-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(tag: &str) -> RegistryConfig {
        RegistryConfig {
            state_dir: temp_dir(tag),
            checkpoint_every: 2,
            lease: Duration::from_secs(60),
            prior_path: None,
        }
    }

    fn smoke_json() -> String {
        crate::codec::encode_spec(&CampaignSpec::smoke())
    }

    /// Drains every claim through `run_shard`, completing out of order
    /// where possible, and returns the result text.
    fn drain(registry: &Registry) -> String {
        let mut claims = Vec::new();
        while let Some(claim) = registry.claim() {
            claims.push(claim);
        }
        claims.reverse(); // complete in descending shard order
        let id = claims[0].id.clone();
        for claim in claims {
            let out = run_shard(&claim.spec, claim.shard, &serial_runner).unwrap();
            registry.complete(&claim.id, claim.shard, out.partial).unwrap();
        }
        registry.result(&id).unwrap()
    }

    #[test]
    fn claimed_shards_fold_to_the_single_process_bytes() {
        let registry = Registry::open(config("fold")).unwrap();
        let submitted = registry.submit(&smoke_json()).unwrap();
        assert!(!submitted.resumed);
        assert_eq!(submitted.shards_done, 0);

        let served = drain(&registry);
        let spec = CampaignSpec::smoke();
        let direct =
            run_campaign(&spec, &RunOptions::default(), &serial_runner).unwrap();
        assert_eq!(served, checkpoint::encode(&direct.aggregate));
    }

    #[test]
    fn completed_campaigns_fold_into_the_resident_prior() {
        let cfg = config("prior");
        let registry = Registry::open(cfg.clone()).unwrap();
        assert!(eavs_fleet::prior::decode(&registry.prior_text())
            .unwrap()
            .is_empty());
        registry.submit(&smoke_json()).unwrap();
        drain(&registry);
        let spec = CampaignSpec::smoke();
        let direct = run_campaign(&spec, &RunOptions::default(), &serial_runner).unwrap();
        let served = eavs_fleet::prior::decode(&registry.prior_text()).unwrap();
        assert_eq!(served, direct.aggregate.prior);
        assert!(!served.is_empty());
        // It persisted: a restarted daemon serves the same bytes.
        drop(registry);
        let reopened = Registry::open(cfg).unwrap();
        assert_eq!(
            eavs_fleet::prior::decode(&reopened.prior_text()).unwrap(),
            served
        );
    }

    #[test]
    fn merge_prior_accumulates_and_rejects_garbage() {
        let registry = Registry::open(config("prior-merge")).unwrap();
        let spec = CampaignSpec::smoke();
        let out = run_shard(&spec, 0, &serial_runner).unwrap();
        let doc = eavs_fleet::prior::encode(&out.partial.prior);
        let (entries, frames) = registry.merge_prior(&doc).unwrap();
        assert_eq!(entries, out.partial.prior.len());
        assert_eq!(frames, out.partial.prior.total_frames());
        // Merging again accumulates evidence (documented non-idempotence).
        let (_, frames_again) = registry.merge_prior(&doc).unwrap();
        assert_eq!(frames_again, 2 * frames);
        assert!(registry.merge_prior("not a prior").is_err());
    }

    #[test]
    fn submit_is_idempotent_and_duplicates_fold_once() {
        let registry = Registry::open(config("idem")).unwrap();
        let first = registry.submit(&smoke_json()).unwrap();
        let again = registry.submit(&smoke_json()).unwrap();
        assert_eq!(first.id, again.id);
        assert!(again.resumed);

        let claim = registry.claim().unwrap();
        let out = run_shard(&claim.spec, claim.shard, &serial_runner).unwrap();
        let done_once = registry
            .complete(&claim.id, claim.shard, out.partial.clone())
            .unwrap();
        let done_twice = registry
            .complete(&claim.id, claim.shard, out.partial)
            .unwrap();
        assert_eq!(done_once, done_twice, "duplicate completion is a no-op");

        let progress = registry.progress(&claim.id).unwrap();
        assert!(progress.contains("\"shards_done\":1"), "{progress}");
    }

    #[test]
    fn expired_leases_are_reclaimed_before_fresh_shards() {
        let mut cfg = config("lease");
        cfg.lease = Duration::from_millis(0); // every claim expires at once
        let registry = Registry::open(cfg).unwrap();
        registry.submit(&smoke_json()).unwrap();
        let first = registry.claim().unwrap();
        let second = registry.claim().unwrap();
        assert_eq!(
            first.shard, second.shard,
            "an expired lease is re-handed before a new shard"
        );
    }

    #[test]
    fn wrong_campaign_partial_and_out_of_range_shard_are_rejected() {
        let registry = Registry::open(config("reject")).unwrap();
        let submitted = registry.submit(&smoke_json()).unwrap();

        let mut other = CampaignSpec::smoke();
        other.seed ^= 1;
        let foreign = FleetAggregate::new(&other);
        let (status, _) = registry.complete(&submitted.id, 0, foreign).unwrap_err();
        assert_eq!(status, 409);

        let own = FleetAggregate::new(&CampaignSpec::smoke());
        let (status, _) = registry
            .complete(&submitted.id, submitted.shards_total, own)
            .unwrap_err();
        assert_eq!(status, 409);

        let own = FleetAggregate::new(&CampaignSpec::smoke());
        let (status, _) = registry.complete("ffff", 0, own).unwrap_err();
        assert_eq!(status, 404);
    }

    #[test]
    fn a_restarted_registry_resumes_from_its_checkpoints() {
        let cfg = config("recover");
        let expected = {
            let registry = Registry::open(cfg.clone()).unwrap();
            registry.submit(&smoke_json()).unwrap();
            // Complete exactly the first two shards (one checkpoint
            // boundary with checkpoint_every=2), then drop the registry
            // as a simulated kill.
            for _ in 0..2 {
                let claim = registry.claim().unwrap();
                let out = run_shard(&claim.spec, claim.shard, &serial_runner).unwrap();
                registry.complete(&claim.id, claim.shard, out.partial).unwrap();
            }
            let spec = CampaignSpec::smoke();
            let direct =
                run_campaign(&spec, &RunOptions::default(), &serial_runner).unwrap();
            checkpoint::encode(&direct.aggregate)
        };

        let registry = Registry::open(cfg).unwrap();
        let resumed = registry.submit(&smoke_json()).unwrap();
        assert!(resumed.resumed);
        assert_eq!(resumed.shards_done, 2, "recovered at the checkpoint");
        assert_eq!(drain(&registry), expected, "resume is bit-exact");
    }

    #[test]
    fn a_foreign_checkpoint_is_refused_not_resumed() {
        let cfg = config("mismatch");
        let registry = Registry::open(cfg.clone()).unwrap();
        let submitted = registry.submit(&smoke_json()).unwrap();
        drop(registry);

        // Overwrite the checkpoint with one from a different campaign.
        let mut other = CampaignSpec::smoke();
        other.seed ^= 1;
        let foreign = FleetAggregate::new(&other);
        checkpoint::save(
            &cfg.state_dir.join(format!("{}.ckpt", submitted.id)),
            &foreign,
        )
        .unwrap();

        match Registry::open(cfg) {
            Err(message) => assert!(message.contains("CheckpointMismatch"), "{message}"),
            Ok(_) => panic!("foreign checkpoint must be refused"),
        }
    }

    #[test]
    fn cancel_stops_claims_and_keeps_the_checkpoint() {
        let registry = Registry::open(config("cancel")).unwrap();
        let submitted = registry.submit(&smoke_json()).unwrap();
        let claim = registry.claim().unwrap();
        let out = run_shard(&claim.spec, claim.shard, &serial_runner).unwrap();
        registry.complete(&claim.id, claim.shard, out.partial).unwrap();

        let progress = registry.cancel(&submitted.id).unwrap();
        assert!(progress.contains("\"phase\":\"cancelled\""), "{progress}");
        assert!(registry.claim().is_none(), "cancelled campaigns hand out nothing");
        let (status, _) = registry.result(&submitted.id).unwrap_err();
        assert_eq!(status, 409);
        assert!(!registry.has_open_work());
    }

    #[test]
    fn malformed_and_invalid_specs_are_bad_requests() {
        let registry = Registry::open(config("badspec")).unwrap();
        for body in ["{", "[]", "{\"name\":\"x\"}"] {
            match registry.submit(body) {
                Err(SubmitError::BadSpec(_)) => {}
                other => panic!("{body:?} should be BadSpec, got {other:?}"),
            }
        }
    }

    #[test]
    fn metrics_page_is_scrape_conformant_with_campaigns_resident() {
        let registry = Registry::open(config("metrics")).unwrap();
        registry.submit(&smoke_json()).unwrap();
        drain(&registry);
        let page = registry.metrics_page();
        eavs_obs::check_conformance(&page).unwrap();
        assert!(page.contains("eavsd_campaigns{phase=\"complete\"} 1"), "{page}");
        assert!(page.contains("eavsd_session_runs_total"), "{page}");
    }
}

fn progress_json(id: &str, c: &CampaignState) -> Value {
    let snapshot = ProgressSnapshot::capture(&c.spec, &c.aggregate);
    let elapsed = c.elapsed_s();
    let rate = if elapsed > 0.0 {
        c.session_runs as f64 / elapsed
    } else {
        0.0
    };
    let (phase, error) = match &c.phase {
        Phase::Failed(e) => ("failed", Value::str(e.as_str())),
        other => (other.name(), Value::Null),
    };
    Value::Obj(vec![
        ("id".into(), Value::str(id)),
        ("name".into(), Value::str(&c.spec.name)),
        ("phase".into(), Value::str(phase)),
        ("error".into(), error),
        ("shards_done".into(), Value::u64(snapshot.shards_done)),
        ("shards_total".into(), Value::u64(snapshot.shards_total)),
        ("sessions_done".into(), Value::u64(snapshot.sessions_done)),
        ("sessions_total".into(), Value::u64(snapshot.sessions_total)),
        ("resumed_shards".into(), Value::u64(c.resumed_shards)),
        ("session_runs".into(), Value::u64(c.session_runs)),
        ("elapsed_s".into(), Value::f64(elapsed)),
        ("sessions_per_sec".into(), Value::f64(rate)),
        (
            "govs".into(),
            Value::Arr(
                snapshot
                    .govs
                    .iter()
                    .map(|g| {
                        Value::Obj(vec![
                            ("governor".into(), Value::str(&g.governor)),
                            ("sessions".into(), Value::u64(g.sessions)),
                            ("mean_cpu_j".into(), Value::f64(g.mean_cpu_j)),
                            ("mean_device_j".into(), Value::f64(g.mean_device_j)),
                            ("mean_qoe".into(), Value::f64(g.mean_qoe)),
                            ("rebuffer_events".into(), Value::u64(g.rebuffer_events)),
                            ("miss_rate".into(), Value::f64(g.miss_rate)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
