//! Content-addressed session memoization.
//!
//! Sessions are deterministic: [`SessionBuilder::fingerprint`] digests
//! every input that influences the outcome, so a process-wide map from
//! fingerprint to `Arc<SessionReport>` lets every figure module (and a
//! second `run_all` pass) reuse sessions instead of re-simulating them.
//! Builders whose components carry learned state fingerprint as `None`
//! and always run.
//!
//! The session runs *outside* the lock: two workers racing on the same
//! fingerprint may both simulate, but determinism makes the results
//! identical, so whichever insert wins is indistinguishable.

use eavs_core::report::SessionReport;
use eavs_core::session::{ReplayCtl, SessionBuilder};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Counters of the session cache since process start.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct SessionCacheStats {
    /// Sessions served from the cache.
    pub hits: u64,
    /// Sessions that had to be simulated (and were then cached).
    pub misses: u64,
    /// Sessions that could not be fingerprinted (pre-warmed components)
    /// and ran uncached.
    pub uncacheable: u64,
    /// Approximate resident bytes of the cached reports.
    pub bytes: u64,
    /// Reports evicted to stay under the byte cap.
    pub evictions: u64,
}

impl SessionCacheStats {
    /// Fraction of cacheable lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static UNCACHEABLE: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// The bounded report store: insertion order doubles as eviction order.
#[derive(Default)]
struct CacheInner {
    map: HashMap<u128, Arc<SessionReport>>,
    /// Keys in insertion order; the front is next to evict.
    order: VecDeque<u128>,
    /// Approximate resident bytes of `map`.
    bytes: u64,
}

fn cache() -> &'static Mutex<CacheInner> {
    static MAP: OnceLock<Mutex<CacheInner>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(CacheInner::default()))
}

/// Resident-byte cap: `EAVS_SESSION_CACHE_MB` (default 64). Reports are
/// a few KB each (tens of KB with series), so the default holds every
/// figure of a full `run_all` with room to spare while bounding
/// pathological callers.
fn cap_bytes() -> u64 {
    static CAP: OnceLock<u64> = OnceLock::new();
    *CAP.get_or_init(|| {
        crate::executor::env_knob::<u64>("EAVS_SESSION_CACHE_MB").unwrap_or(64) << 20
    })
}

/// Inserts under the cap, evicting oldest-inserted entries first. The
/// just-inserted report is never evicted (the loop stops at one resident
/// entry), so an oversized report still gets returned and cached until
/// the next insert. No-op if the key is already present.
fn insert_bounded(inner: &mut CacheInner, cap: u64, key: u128, report: &Arc<SessionReport>) {
    if inner.map.contains_key(&key) {
        return;
    }
    inner.bytes += report.approx_bytes();
    inner.map.insert(key, Arc::clone(report));
    inner.order.push_back(key);
    while inner.bytes > cap && inner.order.len() > 1 {
        let oldest = inner.order.pop_front().expect("len checked");
        if let Some(evicted) = inner.map.remove(&oldest) {
            inner.bytes = inner.bytes.saturating_sub(evicted.approx_bytes());
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// `true` when `EAVS_EMPTY_FAULTS` is set: every session without a
/// fault plan gets an explicit *empty* [`FaultPlan`] attached. An empty
/// plan must be a perfect no-op, so this mode is CI's proof that the
/// fault-injection wiring leaves every committed figure byte-identical.
fn force_empty_faults() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var_os("EAVS_EMPTY_FAULTS").is_some())
}

/// `true` when `EAVS_NULL_POWER` is set: every session without a power
/// model gets an explicit zero-power [`DevicePowerModel::none`]
/// attached. The none() model must be a perfect no-op (its accounting
/// is post-hoc and all-zero), so this mode is CI's proof that the
/// whole-device power wiring leaves every committed figure
/// byte-identical.
///
/// [`DevicePowerModel::none`]: eavs_power::DevicePowerModel::none
fn force_null_power() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var_os("EAVS_NULL_POWER").is_some())
}

/// `true` when `EAVS_NULL_PRIOR` is set: every session without a
/// workload prior gets an explicit *empty*
/// [`SessionPrior`](eavs_core::predictor::SessionPrior) attached. An
/// empty prior carries no per-type evidence, so the builder never wraps
/// the predictor and the fingerprint keeps its tag-0 byte — this mode
/// is CI's proof that the fleet-prior wiring leaves every committed
/// figure byte-identical.
fn force_null_prior() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(crate::executor::null_prior)
}

/// A shared no-op trace sink attached to every session when
/// `EAVS_NULL_TRACE` is set — the observability mirror of
/// [`force_empty_faults`]. A [`NullSink`](eavs_obs::NullSink) must be a
/// perfect behavioral no-op, so this mode is CI's proof that the
/// tracing wiring leaves every committed figure byte-identical.
fn forced_null_trace() -> Option<eavs_obs::SharedSink> {
    static FORCE: OnceLock<Option<eavs_obs::SharedSink>> = OnceLock::new();
    FORCE
        .get_or_init(|| {
            std::env::var_os("EAVS_NULL_TRACE").map(|_| {
                let sink: eavs_obs::SharedSink = eavs_obs::shared(eavs_obs::NullSink);
                sink
            })
        })
        .clone()
}

/// Runs `builder` through the process-wide session cache: a hit returns
/// the shared report without simulating; a miss simulates, caches and
/// returns it; an unfingerprintable builder runs uncached.
///
/// Builders carrying an observer (trace sink or profiler) always run —
/// a cache hit would skip the observer's side effects. The forced
/// `EAVS_NULL_TRACE` sink is attached *after* that check: it is not a
/// caller observer, and sessions must stay cacheable under it so the CI
/// golden pass exercises the identical hit/miss pattern.
pub fn run_session(builder: SessionBuilder) -> Arc<SessionReport> {
    let builder = if force_empty_faults() && !builder.has_faults() {
        builder.faults(eavs_faults::FaultPlan::default())
    } else {
        builder
    };
    let builder = if force_null_power() && !builder.has_power() {
        builder.power(eavs_power::DevicePowerModel::none())
    } else {
        builder
    };
    let builder = if force_null_prior() && !builder.has_prior() {
        builder.prior(eavs_core::predictor::SessionPrior::default())
    } else {
        builder
    };
    if builder.has_observer() {
        UNCACHEABLE.fetch_add(1, Ordering::Relaxed);
        return Arc::new(builder.run());
    }
    let builder = match forced_null_trace() {
        Some(sink) => builder.trace(sink),
        None => builder,
    };
    run_session_inner(builder)
}

fn run_session_inner(builder: SessionBuilder) -> Arc<SessionReport> {
    let Some(fp) = builder.fingerprint() else {
        UNCACHEABLE.fetch_add(1, Ordering::Relaxed);
        return Arc::new(builder.run());
    };
    if let Some(r) = cache()
        .lock()
        .expect("session cache poisoned")
        .map
        .get(&fp.0)
    {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(r);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let report = Arc::new(builder.run());
    let mut inner = cache().lock().expect("session cache poisoned");
    if let Some(r) = inner.map.get(&fp.0) {
        return Arc::clone(r); // a racer inserted first; identical by determinism
    }
    insert_bounded(&mut inner, cap_bytes(), fp.0, &report);
    report
}

/// Runs a labeled batch of sessions through the cache, the differential
/// replay store and (under `EAVS_BATCH`) the struct-of-arrays kernel,
/// returning reports in input order.
///
/// This is the vectorized [`run_session`]: identical per-session
/// semantics (empty-faults decoration, observer bypass, forced null
/// trace, fingerprint caching), plus two batch-only optimizations that
/// are invisible in the results:
///
/// - **Differential replay.** Cache misses are grouped by
///   [`SessionBuilder::replay_prefix`]. The first miss of each prefix
///   runs in a leading wave — recording its decision timeline (or
///   injecting a previously stored one); the remaining misses run in a
///   trailing wave with the recorded timeline injected, paying full
///   decision cost only from their divergence point on.
/// - **Batched execution.** With `EAVS_BATCH` set, each wave runs
///   through [`eavs_core::batch::run_batch`] in width-sized lanes.
///
/// Every scheduling decision (wave membership, decoration, cache
/// insertion order) happens on the calling thread in input order, so
/// counters and eviction order are independent of `EAVS_JOBS`.
pub fn run_sessions(jobs: Vec<(String, SessionBuilder)>) -> Vec<Arc<SessionReport>> {
    enum Slot {
        Done(Arc<SessionReport>),
        /// Resolve from this call's miss results by fingerprint.
        Miss(u128),
        /// Resolve from the uncached run results by position.
        Uncached(usize),
    }
    let mut slots: Vec<Slot> = Vec::with_capacity(jobs.len());
    let mut misses: Vec<(String, SessionBuilder, u128)> = Vec::new();
    let mut claimed: HashSet<u128> = HashSet::new();
    let mut uncached: Vec<(String, SessionBuilder)> = Vec::new();

    for (label, builder) in jobs {
        let builder = if force_empty_faults() && !builder.has_faults() {
            builder.faults(eavs_faults::FaultPlan::default())
        } else {
            builder
        };
        let builder = if force_null_power() && !builder.has_power() {
            builder.power(eavs_power::DevicePowerModel::none())
        } else {
            builder
        };
        let builder = if force_null_prior() && !builder.has_prior() {
            builder.prior(eavs_core::predictor::SessionPrior::default())
        } else {
            builder
        };
        if builder.has_observer() {
            UNCACHEABLE.fetch_add(1, Ordering::Relaxed);
            slots.push(Slot::Uncached(uncached.len()));
            uncached.push((label, builder));
            continue;
        }
        let builder = match forced_null_trace() {
            Some(sink) => builder.trace(sink),
            None => builder,
        };
        let Some(fp) = builder.fingerprint() else {
            UNCACHEABLE.fetch_add(1, Ordering::Relaxed);
            slots.push(Slot::Uncached(uncached.len()));
            uncached.push((label, builder));
            continue;
        };
        if let Some(r) = cache()
            .lock()
            .expect("session cache poisoned")
            .map
            .get(&fp.0)
        {
            HITS.fetch_add(1, Ordering::Relaxed);
            slots.push(Slot::Done(Arc::clone(r)));
        } else if claimed.contains(&fp.0) {
            // Duplicate of an earlier miss in this very call.
            HITS.fetch_add(1, Ordering::Relaxed);
            slots.push(Slot::Miss(fp.0));
        } else {
            MISSES.fetch_add(1, Ordering::Relaxed);
            claimed.insert(fp.0);
            slots.push(Slot::Miss(fp.0));
            misses.push((label, builder, fp.0));
        }
    }

    // Wave split: the first miss of each replay prefix leads (recording
    // its timeline unless one is already stored); prefix siblings trail
    // and inject. Prefix-less builders (baselines, auto placement) join
    // the leading wave undecorated.
    let mut wave1: Vec<(String, SessionBuilder, u128)> = Vec::new();
    let mut wave2: Vec<(String, SessionBuilder, u128, u128)> = Vec::new();
    let mut leading: HashSet<u128> = HashSet::new();
    for (label, builder, fp) in misses {
        match builder.replay_prefix() {
            Some(key) if !leading.insert(key) => wave2.push((label, builder, fp, key)),
            Some(key) => {
                // Probe without counting: a leader that finds nothing is
                // the recorder, not a missed replay. Only when a timeline
                // already exists (an earlier figure shared the prefix) is
                // the counting lookup taken — that injection is a real
                // replay and lands in the hit rate.
                let decorated = match eavs_trace::memo::peek_decision_timeline(key) {
                    Some(_) => {
                        let timeline =
                            eavs_trace::memo::decision_timeline(key).expect("just peeked");
                        builder.replay(ReplayCtl::Inject(timeline))
                    }
                    None => builder.replay(ReplayCtl::Record(key)),
                };
                wave1.push((label, decorated, fp));
            }
            None => wave1.push((label, builder, fp)),
        }
    }

    let mut local: HashMap<u128, Arc<SessionReport>> = HashMap::new();
    let run_wave = |wave: Vec<(String, SessionBuilder, u128)>,
                    local: &mut HashMap<u128, Arc<SessionReport>>| {
        let fps: Vec<u128> = wave.iter().map(|(_, _, fp)| *fp).collect();
        let jobs: Vec<(String, SessionBuilder)> =
            wave.into_iter().map(|(l, b, _)| (l, b)).collect();
        let reports = execute_wave(jobs);
        let mut inner = cache().lock().expect("session cache poisoned");
        for (fp, report) in fps.into_iter().zip(reports) {
            let report = Arc::new(report);
            insert_bounded(&mut inner, cap_bytes(), fp, &report);
            local.insert(fp, report);
        }
    };
    run_wave(wave1, &mut local);
    let wave2: Vec<(String, SessionBuilder, u128)> = wave2
        .into_iter()
        .map(|(label, builder, fp, key)| {
            let decorated = match eavs_trace::memo::decision_timeline(key) {
                Some(timeline) => builder.replay(ReplayCtl::Inject(timeline)),
                None => builder, // recorder ran un-clean; pay full cost
            };
            (label, decorated, fp)
        })
        .collect();
    run_wave(wave2, &mut local);
    let uncached_reports: Vec<Arc<SessionReport>> =
        execute_wave(uncached).into_iter().map(Arc::new).collect();

    slots
        .into_iter()
        .map(|slot| match slot {
            Slot::Done(r) => r,
            Slot::Miss(fp) => Arc::clone(&local[&fp]),
            Slot::Uncached(i) => Arc::clone(&uncached_reports[i]),
        })
        .collect()
}

/// Runs one wave of builders: width-sized chunks through the
/// struct-of-arrays kernel when `EAVS_BATCH` asks for it, the scalar
/// work-stealing pool otherwise. Results in input order either way.
fn execute_wave(jobs: Vec<(String, SessionBuilder)>) -> Vec<SessionReport> {
    if jobs.is_empty() {
        return Vec::new();
    }
    match crate::executor::batch_width() {
        Some(width) => {
            let mut chunks: Vec<(String, Vec<SessionBuilder>)> = Vec::new();
            for (label, builder) in jobs {
                match chunks.last_mut() {
                    Some((_, chunk)) if chunk.len() < width => chunk.push(builder),
                    _ => chunks.push((format!("batch {label}"), vec![builder])),
                }
            }
            crate::executor::run_parallel_labeled(
                chunks
                    .into_iter()
                    .map(|(label, chunk)| {
                        let job = move || eavs_core::batch::run_batch(chunk, width);
                        (label, job)
                    })
                    .collect(),
            )
            .into_iter()
            .flatten()
            .collect()
        }
        None => crate::executor::run_parallel_labeled(
            jobs.into_iter()
                .map(|(label, builder)| {
                    let job = move || builder.run();
                    (label, job)
                })
                .collect(),
        ),
    }
}

/// Counters of the session cache.
pub fn stats() -> SessionCacheStats {
    SessionCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        uncacheable: UNCACHEABLE.load(Ordering::Relaxed),
        bytes: cache().lock().expect("session cache poisoned").bytes,
        evictions: EVICTIONS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{eavs_default, governor, manifest_1080p30};
    use eavs_core::session::StreamingSession;

    fn builder() -> SessionBuilder {
        StreamingSession::builder(eavs_default())
            .manifest(manifest_1080p30(4))
            .seed(7)
    }

    #[test]
    fn identical_builders_share_one_report() {
        // A seed no other test uses, so the first run is a genuine miss.
        let mk = || {
            StreamingSession::builder(eavs_default())
                .manifest(manifest_1080p30(4))
                .seed(777)
        };
        let before = stats();
        let a = run_session(mk());
        let b = run_session(mk());
        assert!(Arc::ptr_eq(&a, &b), "second run must be a cache hit");
        let after = stats();
        assert!(after.hits > before.hits);
        assert!(after.bytes > before.bytes);
    }

    #[test]
    fn different_seeds_do_not_collide() {
        let a = run_session(builder());
        let b = run_session(
            StreamingSession::builder(eavs_default())
                .manifest(manifest_1080p30(4))
                .seed(8),
        );
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.cpu_joules(), b.cpu_joules());
    }

    #[test]
    fn cached_report_matches_direct_run() {
        let cached = run_session(builder());
        let direct = builder().run();
        assert_eq!(cached.cpu_joules(), direct.cpu_joules());
        assert_eq!(cached.transitions, direct.transitions);
        assert_eq!(cached.events_processed, direct.events_processed);
    }

    #[test]
    fn observed_builders_bypass_the_cache() {
        use eavs_obs::{shared, RingSink};
        let mk = || {
            StreamingSession::builder(eavs_default())
                .manifest(manifest_1080p30(4))
                .seed(991)
                .trace(shared(RingSink::new(256)))
        };
        let before = stats();
        let a = run_session(mk());
        let b = run_session(mk());
        // Each run must actually simulate (the sink needs its events).
        assert!(!Arc::ptr_eq(&a, &b));
        let after = stats();
        assert!(after.uncacheable >= before.uncacheable + 2);
        // Determinism still holds between the uncached runs.
        assert_eq!(a.cpu_joules(), b.cpu_joules());
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn baseline_governors_are_cacheable() {
        let mk = || {
            StreamingSession::builder(governor("ondemand"))
                .manifest(manifest_1080p30(4))
                .seed(11)
        };
        let a = run_session(mk());
        let b = run_session(mk());
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn eviction_is_insertion_ordered_and_spares_the_newest() {
        // Drive the bounded store directly (not through env knobs, which
        // are process-wide OnceLocks) with a cap below one report.
        let mut inner = CacheInner::default();
        let report = Arc::new(builder().run());
        let before = EVICTIONS.load(Ordering::Relaxed);
        insert_bounded(&mut inner, 1, 0xA, &report);
        assert!(
            inner.map.contains_key(&0xA),
            "newest entry is never evicted"
        );
        insert_bounded(&mut inner, 1, 0xB, &report);
        insert_bounded(&mut inner, 1, 0xC, &report);
        assert_eq!(inner.order.len(), 1);
        assert!(inner.map.contains_key(&0xC));
        assert!(!inner.map.contains_key(&0xA) && !inner.map.contains_key(&0xB));
        assert_eq!(EVICTIONS.load(Ordering::Relaxed) - before, 2);
        assert_eq!(inner.bytes, report.approx_bytes());
        // A roomy cap evicts nothing.
        let mut roomy = CacheInner::default();
        insert_bounded(&mut roomy, u64::MAX, 0xA, &report);
        insert_bounded(&mut roomy, u64::MAX, 0xB, &report);
        assert_eq!(roomy.map.len(), 2);
    }

    #[test]
    fn run_sessions_matches_scalar_runs_and_replays_prefix_siblings() {
        use crate::harness::eavs_with;
        use eavs_core::governor::EavsConfig;
        // A margin sweep: one replay prefix, five variants. Seed unique
        // to this test so every lookup is a genuine miss.
        let margins = [0.0, 0.10, 0.15, 0.30, 0.50];
        let mk = |margin| {
            StreamingSession::builder(eavs_with(
                EavsConfig {
                    margin,
                    ..EavsConfig::default()
                },
                "hybrid",
            ))
            .manifest(manifest_1080p30(4))
            .seed(31_337)
        };
        let expected: Vec<String> = margins
            .iter()
            .map(|&m| format!("{:?}", mk(m).run()))
            .collect();
        let replayed_before = eavs_core::session::replayed_sessions();
        let got = run_sessions(
            margins
                .iter()
                .map(|&m| (format!("margin {m}"), mk(m)))
                .collect(),
        );
        for (i, r) in got.iter().enumerate() {
            assert_eq!(format!("{:?}", **r), expected[i], "margin {}", margins[i]);
        }
        assert!(
            eavs_core::session::replayed_sessions() > replayed_before,
            "prefix siblings must have injected the recorded timeline"
        );
        // A duplicate job in the same call shares the result.
        let twice = run_sessions(vec![("a".into(), mk(0.15)), ("b".into(), mk(0.15))]);
        assert!(Arc::ptr_eq(&twice[0], &twice[1]));
    }
}
