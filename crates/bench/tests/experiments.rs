//! Regression net over the whole experiment suite: every registered
//! experiment regenerates, produces rows, and round-trips through CSV.

use eavs_bench::all_experiments;

#[test]
fn every_experiment_produces_rows() {
    for (id, f) in all_experiments() {
        let table = f();
        assert!(table.num_rows() > 0, "{id}: empty table");
        let csv = table.to_csv();
        assert!(csv.lines().count() == table.num_rows() + 1, "{id}: csv mismatch");
        let rendered = table.render();
        assert!(rendered.contains("=="), "{id}: missing title");
    }
}

#[test]
fn experiment_ids_are_unique_and_well_formed() {
    let mut ids: Vec<&str> = all_experiments().into_iter().map(|(id, _)| id).collect();
    assert!(ids.iter().all(|id| id
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')));
    let before = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), before, "duplicate experiment ids");
    assert_eq!(before, 26, "experiment count drifted; update docs");
}

#[test]
fn experiments_are_deterministic() {
    // Representative fast experiments rerun bit-identically.
    for id in ["f5_energy_by_governor", "f13_ablations", "t4_soc_matrix"] {
        let f = all_experiments()
            .into_iter()
            .find(|(i, _)| *i == id)
            .map(|(_, f)| f)
            .expect("registered");
        assert_eq!(f().to_csv(), f().to_csv(), "{id} not deterministic");
    }
}
