//! Machine-readable performance report for the simulator.
//!
//! Measures three headline numbers and writes them as `BENCH_sim.json`
//! under the results directory (also printed to stdout):
//!
//! * `events_per_sec`   — raw engine throughput on a 100k self-rescheduling
//!   event chain (same kernel as the `event_chain_100k` criterion bench).
//! * `sessions_per_sec` — full 1080p30 streaming sessions simulated per
//!   wall-clock second, fanned out through the shared work-stealing pool.
//! * `run_all_wall_s`   — wall-clock seconds to regenerate the experiment
//!   suite (a fixed subset in `--smoke` mode so CI stays under ~10 s).
//!
//! Usage: `bench_report [--smoke]`. `EAVS_JOBS` sizes the pool as usual.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use eavs_bench::harness::{self, governor, manifest_1080p30, SEED};
use eavs_core::session::StreamingSession;
use eavs_sim::prelude::*;

struct PingPong {
    remaining: u64,
}

impl World for PingPong {
    type Event = ();
    fn handle(&mut self, sched: &mut Scheduler<()>, _: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(SimDuration::from_micros(10), ());
        }
    }
}

/// Events per second through the full Simulation/Scheduler kernel.
fn measure_events_per_sec(chain_len: u64, repeats: u32) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..repeats {
        let started = Instant::now();
        let mut sim = Simulation::new(PingPong {
            remaining: chain_len,
        });
        sim.scheduler().schedule_at(SimTime::ZERO, ());
        sim.run();
        std::hint::black_box(sim.now());
        best = best.min(started.elapsed().as_secs_f64());
    }
    // +1 for the kick-off event.
    (chain_len + 1) as f64 / best
}

/// Complete streaming sessions per second, run through the shared pool.
fn measure_sessions_per_sec(sessions: usize, secs_each: u64) -> f64 {
    let manifest = std::sync::Arc::new(manifest_1080p30(secs_each));
    let started = Instant::now();
    let reports = harness::run_parallel_labeled(
        (0..sessions)
            .map(|i| {
                let manifest = std::sync::Arc::clone(&manifest);
                let job = move || {
                    StreamingSession::builder(governor("eavs"))
                        .manifest(manifest)
                        .seed(SEED + i as u64)
                        .run()
                };
                (format!("bench session {i}"), job)
            })
            .collect(),
    );
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(reports.len(), sessions);
    sessions as f64 / elapsed
}

/// Wall-clock to regenerate experiments (all of them, or a smoke subset).
fn measure_run_all(smoke: bool) -> (f64, usize) {
    const SMOKE_IDS: &[&str] = &["t1_opp_table", "f1_power_curve", "f3_workload_variability"];
    let jobs: Vec<_> = eavs_bench::all_experiments()
        .into_iter()
        .filter(|(id, _)| !smoke || SMOKE_IDS.contains(id))
        .map(|(id, f)| {
            let job = move || {
                let table = f();
                std::hint::black_box(table.to_csv().len())
            };
            (format!("bench_report {id}"), job)
        })
        .collect();
    let count = jobs.len();
    let started = Instant::now();
    harness::run_parallel_labeled(jobs);
    (started.elapsed().as_secs_f64(), count)
}

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("error: unknown argument {other:?}\nusage: bench_report [--smoke]");
                std::process::exit(2);
            }
        }
    }
    let workers = eavs_bench::executor::pool().workers();

    let (chain, chain_reps, sessions, session_secs) = if smoke {
        (100_000u64, 2u32, workers.max(2), 10u64)
    } else {
        (100_000u64, 5u32, (workers * 4).max(8), 60u64)
    };

    eprintln!("bench_report: {workers} worker(s), smoke={smoke}");

    let events_per_sec = measure_events_per_sec(chain, chain_reps);
    eprintln!("  events/sec      {events_per_sec:.0}");

    let sessions_per_sec = measure_sessions_per_sec(sessions, session_secs);
    eprintln!("  sessions/sec    {sessions_per_sec:.2} ({sessions} x {session_secs} s sessions)");

    let (run_all_wall_s, experiments) = measure_run_all(smoke);
    eprintln!("  run_all wall    {run_all_wall_s:.2} s ({experiments} experiments)");

    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"events_per_sec\": {events_per_sec:.0},\n  \"sessions_per_sec\": {sessions_per_sec:.3},\n  \"run_all_wall_s\": {run_all_wall_s:.3},\n  \"experiments\": {experiments},\n  \"workers\": {workers},\n  \"smoke\": {smoke},\n  \"unix_time\": {unix_time}\n}}\n"
    );
    println!("{json}");

    let dir = harness::results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_sim.json");
    std::fs::write(&path, &json).expect("write BENCH_sim.json");
    eprintln!("wrote {}", path.display());
}
